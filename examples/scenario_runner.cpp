// Scenario runner: drive any facade from an INI scenario file — the
// "configuration over code" workflow a simulation user expects.
//
//   ./scenario_runner examples/scenarios/lhc_2.5gbps.ini
//
// See examples/scenarios/*.ini for the format. The [scenario] section picks
// the facade, seed and event-queue structure; the facade-named section
// holds its parameters (rates/sizes/durations accept units: 2.5Gbps, 20GB,
// 40s).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "middleware/failures.hpp"
#include "middleware/recovery.hpp"
#include "middleware/replication.hpp"
#include "sim/bricks/bricks.hpp"
#include "sim/chicsim/chicsim.hpp"
#include "sim/gridsim/gridsim.hpp"
#include "sim/monarc/monarc.hpp"
#include "sim/parallel/bag_model.hpp"
#include "sim/parallel/execution.hpp"
#include "sim/parallel/tier_model.hpp"
#include "sim/optorsim/optorsim.hpp"
#include "sim/simg/simg.hpp"
#include "util/flags.hpp"
#include "util/ini.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

using namespace lsds;

namespace {

core::QueueKind parse_queue(const std::string& s) {
  if (s == "sorted") return core::QueueKind::kSortedList;
  if (s == "heap") return core::QueueKind::kBinaryHeap;
  if (s == "splay") return core::QueueKind::kSplayTree;
  if (s == "calendar") return core::QueueKind::kCalendarQueue;
  if (s == "ladder") return core::QueueKind::kLadderQueue;
  throw util::ConfigError("unknown queue kind: " + s);
}

/// `[failures]` section: mtbf, mttr, semantics (resume|stop), weibull_shape,
/// horizon, links — plus policy knobs consumed by the chaos facade. The
/// section's presence (an `mtbf` key or `enabled = true`) turns chaos on.
middleware::FailureSpec parse_failures(const util::IniConfig& ini) {
  middleware::FailureSpec spec;
  spec.enabled = ini.get_bool("failures", "enabled", ini.has("failures", "mtbf"));
  spec.mtbf = ini.get_duration("failures", "mtbf", spec.mtbf);
  spec.mttr = ini.get_duration("failures", "mttr", spec.mttr);
  spec.horizon = ini.get_duration("failures", "horizon", spec.horizon);
  spec.weibull_shape = ini.get_double("failures", "weibull_shape", 0);
  spec.include_links = ini.get_bool("failures", "links", true);
  const std::string sem = ini.get_string("failures", "semantics", "resume");
  if (sem == "stop") {
    spec.semantics = core::FailureSemantics::kFailStop;
  } else if (sem != "resume") {
    throw util::ConfigError("unknown failure semantics: " + sem + " (resume|stop)");
  }
  return spec;
}

/// The data-grid facades model transparent outages only; fail-stop recovery
/// needs the chaos facade's FaultTolerantScheduler.
middleware::FailureSpec parse_resume_failures(const util::IniConfig& ini) {
  middleware::FailureSpec spec = parse_failures(ini);
  if (spec.enabled && spec.semantics == core::FailureSemantics::kFailStop) {
    throw util::ConfigError("semantics = stop requires facade = chaos");
  }
  return spec;
}

int run_bricks(core::Engine& eng, const util::IniConfig& ini) {
  sim::bricks::Config cfg;
  cfg.num_clients = static_cast<std::size_t>(ini.get_int("bricks", "clients", 8));
  cfg.jobs_per_client = static_cast<std::size_t>(ini.get_int("bricks", "jobs_per_client", 20));
  cfg.mean_interarrival = ini.get_duration("bricks", "interarrival", 10);
  cfg.mean_ops = ini.get_double("bricks", "mean_ops", 2000);
  cfg.input_bytes = ini.get_size("bricks", "input", 10e6);
  cfg.output_bytes = ini.get_size("bricks", "output", 1e6);
  cfg.server_cores = static_cast<unsigned>(ini.get_int("bricks", "server_cores", 4));
  cfg.client_bw = ini.get_rate("bricks", "client_bw", 12.5e6);
  cfg.failures = parse_resume_failures(ini);
  const auto res = sim::bricks::run(eng, cfg);
  std::printf("bricks: %llu jobs, mean response %.2f s, server util %.1f%%, makespan %.1f s\n",
              static_cast<unsigned long long>(res.jobs), res.response_times.mean(),
              res.server_utilization * 100, res.makespan);
  return 0;
}

int run_optorsim(core::Engine& eng, const util::IniConfig& ini) {
  sim::optorsim::Config cfg;
  cfg.num_sites = static_cast<std::size_t>(ini.get_int("optorsim", "sites", 6));
  cfg.cache_fraction = ini.get_double("optorsim", "cache_fraction", 0.2);
  const std::string policy = ini.get_string("optorsim", "policy", "lru");
  bool matched = false;
  for (auto p : middleware::kAllReplicationPolicies) {
    if (policy == middleware::to_string(p)) {
      cfg.policy = p;
      matched = true;
    }
  }
  if (!matched) throw util::ConfigError("unknown replication policy: " + policy);
  cfg.workload.num_jobs = static_cast<std::size_t>(ini.get_int("optorsim", "jobs", 300));
  cfg.workload.num_files = static_cast<std::size_t>(ini.get_int("optorsim", "files", 60));
  cfg.workload.zipf_exponent = ini.get_double("optorsim", "zipf", 1.0);
  cfg.workload.mean_interarrival = ini.get_duration("optorsim", "interarrival", 1.5);
  cfg.workload.file_bytes = {apps::SizeDist::kConstant,
                             ini.get_size("optorsim", "file_size", 50e6), 0};
  cfg.failures = parse_resume_failures(ini);
  const auto res = sim::optorsim::run(eng, cfg);
  std::printf(
      "optorsim(%s): %llu jobs, mean job time %.2f s, hit ratio %.2f, network %s, "
      "%llu replications\n",
      policy.c_str(), static_cast<unsigned long long>(res.jobs), res.mean_job_time(),
      res.local_hit_ratio(), util::format_size(res.network_bytes).c_str(),
      static_cast<unsigned long long>(res.replications));
  return 0;
}

/// Parse the [execution] section against the [scenario] determinism knobs.
hosts::ExecutionSpec parse_exec_spec(const util::IniConfig& ini) {
  return sim::parallel::parse_execution(
      ini, static_cast<std::uint64_t>(ini.get_int("scenario", "seed", 42)),
      parse_queue(ini.get_string("scenario", "queue", "heap")));
}

int run_monarc(core::Engine& eng, const util::IniConfig& ini) {
  sim::monarc::Config cfg;
  cfg.num_t1 = static_cast<std::size_t>(ini.get_int("monarc", "t1", 4));
  cfg.t0_t1_bandwidth = ini.get_rate("monarc", "link", util::gbps(2.5));
  cfg.num_files = static_cast<std::size_t>(ini.get_int("monarc", "files", 60));
  cfg.file_bytes = ini.get_size("monarc", "file_size", 20e9);
  cfg.production_interval = ini.get_duration("monarc", "interval", 40);
  cfg.run_analysis = ini.get_bool("monarc", "analysis", true);
  cfg.t2_per_t1 = static_cast<std::size_t>(ini.get_int("monarc", "t2_per_t1", 0));
  cfg.t2_fraction = ini.get_double("monarc", "t2_fraction", 0.3);
  cfg.archive_to_tape = ini.get_bool("monarc", "archive", false);
  cfg.failures = parse_resume_failures(ini);

  const auto exec = parse_exec_spec(ini);
  if (exec.parallel) {
    const auto res = sim::monarc::run_parallel(cfg, exec);
    std::printf(
        "monarc: link %s, %llu files -> %llu replicas (%llu archived), "
        "backlog@prod-end %s, mean lag %.1f s, %llu jobs, makespan %.1f s\n",
        util::format_rate(cfg.t0_t1_bandwidth).c_str(),
        static_cast<unsigned long long>(res.files_produced),
        static_cast<unsigned long long>(res.replicas_delivered),
        static_cast<unsigned long long>(res.files_archived),
        util::format_size(res.backlog_at_production_end).c_str(), res.replication_lag.mean(),
        static_cast<unsigned long long>(res.jobs.size()), res.makespan);
    std::printf("%s", sim::parallel::describe(res.exec).c_str());
    return 0;
  }
  const auto res = sim::monarc::run(eng, cfg);
  std::printf(
      "monarc: link %s, util %.0f%%, backlog@prod-end %s, mean lag %.1f s -> %s\n",
      util::format_rate(cfg.t0_t1_bandwidth).c_str(), res.link_utilization * 100,
      util::format_size(res.backlog_at_production_end).c_str(), res.replication_lag.mean(),
      res.sustainable() ? "keeps up" : "INSUFFICIENT");
  return 0;
}

int run_gridsim(core::Engine& eng, const util::IniConfig& ini) {
  sim::gridsim::Config cfg;
  cfg.num_jobs = static_cast<std::size_t>(ini.get_int("gridsim", "jobs", 60));
  cfg.budget = ini.get_double("gridsim", "budget", 1e18);
  cfg.deadline = ini.get_duration("gridsim", "deadline", 1e18);
  cfg.strategy = ini.get_string("gridsim", "strategy", "cost") == "time"
                     ? middleware::DbcStrategy::kTimeOptimization
                     : middleware::DbcStrategy::kCostOptimization;

  const auto exec = parse_exec_spec(ini);
  if (exec.parallel) {
    const auto res = sim::gridsim::run_parallel(cfg, exec);
    std::printf("gridsim(%s): accepted %llu rejected %llu, spend %.1f, makespan %.2f s\n",
                middleware::to_string(cfg.strategy),
                static_cast<unsigned long long>(res.accepted),
                static_cast<unsigned long long>(res.rejected), res.cost, res.makespan);
    std::printf("%s", sim::parallel::describe(res.exec).c_str());
    return 0;
  }
  const auto res = sim::gridsim::run(eng, cfg);
  std::printf("gridsim(%s): accepted %llu rejected %llu, spend %.1f, makespan %.2f s\n",
              middleware::to_string(cfg.strategy),
              static_cast<unsigned long long>(res.accepted),
              static_cast<unsigned long long>(res.rejected), res.cost, res.makespan);
  return 0;
}

int run_chicsim(core::Engine& eng, const util::IniConfig& ini) {
  sim::chicsim::Config cfg;
  cfg.num_sites = static_cast<std::size_t>(ini.get_int("chicsim", "sites", 6));
  const std::string jp = ini.get_string("chicsim", "job_policy", "job-data-present");
  for (auto p : sim::chicsim::kAllJobPolicies) {
    if (jp == to_string(p)) cfg.job_policy = p;
  }
  const std::string dp = ini.get_string("chicsim", "data_policy", "data-cache");
  for (auto p : sim::chicsim::kAllDataPolicies) {
    if (dp == to_string(p)) cfg.data_policy = p;
  }
  cfg.workload.num_jobs = static_cast<std::size_t>(ini.get_int("chicsim", "jobs", 400));
  cfg.workload.zipf_exponent = ini.get_double("chicsim", "zipf", 0.9);
  cfg.failures = parse_resume_failures(ini);
  const auto res = sim::chicsim::run(eng, cfg);
  std::printf("chicsim(%s,%s): %llu jobs, mean response %.2f s, locality %.2f, network %s\n",
              jp.c_str(), dp.c_str(), static_cast<unsigned long long>(res.jobs),
              res.response_times.mean(), res.locality(),
              util::format_size(res.network_bytes).c_str());
  return 0;
}

int run_simg(core::Engine& eng, const util::IniConfig& ini) {
  sim::simg::Config cfg;
  cfg.num_workers = static_cast<std::size_t>(ini.get_int("simg", "workers", 4));
  cfg.num_tasks = static_cast<std::size_t>(ini.get_int("simg", "tasks", 64));
  cfg.estimate_error = ini.get_double("simg", "estimate_error", 0.3);
  cfg.mode = ini.get_string("simg", "mode", "runtime") == "compile-time"
                 ? sim::simg::SchedulingMode::kCompileTime
                 : sim::simg::SchedulingMode::kRuntime;
  const auto res = sim::simg::run(eng, cfg);
  std::printf("simg(%s): %llu tasks, makespan %.2f s\n", to_string(cfg.mode),
              static_cast<unsigned long long>(res.tasks), res.makespan);
  return 0;
}

/// Fail-stop bag-of-tasks under a recovery policy: the dependability layer
/// end-to-end. `[chaos]` sizes the farm and the bag, `[failures]` drives the
/// injector (semantics defaults to stop here) and picks the policy.
int run_chaos(core::Engine& eng, const util::IniConfig& ini) {
  const auto hosts = static_cast<std::size_t>(ini.get_int("chaos", "hosts", 8));
  const auto cores = static_cast<unsigned>(ini.get_int("chaos", "cores", 1));
  const double speed = ini.get_double("chaos", "cpu_speed", 1000);
  const auto num_jobs = static_cast<std::size_t>(ini.get_int("chaos", "jobs", 1000));
  const double mean_ops = ini.get_double("chaos", "mean_ops", 2000);

  middleware::Heuristic heuristic = middleware::Heuristic::kFifo;
  const std::string h = ini.get_string("chaos", "heuristic", "fifo");
  bool matched = false;
  for (auto cand : middleware::kAllHeuristics) {
    if (h == middleware::to_string(cand)) {
      heuristic = cand;
      matched = true;
    }
  }
  if (!matched) throw util::ConfigError("unknown heuristic: " + h);

  middleware::RecoveryConfig rcfg;
  const std::string policy = ini.get_string("failures", "policy", "retry");
  matched = false;
  for (auto cand : middleware::kAllRecoveryPolicies) {
    if (policy == middleware::to_string(cand)) {
      rcfg.policy = cand;
      matched = true;
    }
  }
  if (!matched) throw util::ConfigError("unknown recovery policy: " + policy);
  rcfg.backoff_base = ini.get_duration("failures", "backoff", rcfg.backoff_base);
  rcfg.max_attempts =
      static_cast<std::size_t>(ini.get_int("failures", "max_attempts", 0));
  rcfg.blacklist_duration =
      ini.get_duration("failures", "blacklist", rcfg.blacklist_duration);
  rcfg.checkpoint_interval_ops =
      ini.get_double("failures", "checkpoint_interval_ops", mean_ops / 4);
  rcfg.checkpoint_overhead_ops =
      ini.get_double("failures", "checkpoint_overhead_ops", mean_ops / 50);
  rcfg.replicas = static_cast<std::size_t>(ini.get_int("failures", "replicas", 2));

  std::vector<std::unique_ptr<hosts::CpuResource>> farm;
  std::vector<hosts::CpuResource*> cpus;
  for (std::size_t i = 0; i < hosts; ++i) {
    farm.push_back(std::make_unique<hosts::CpuResource>(eng, "host" + std::to_string(i), cores,
                                                        speed, hosts::SharingPolicy::kSpaceShared));
    cpus.push_back(farm.back().get());
  }

  middleware::FailureSpec spec = parse_failures(ini);
  spec.enabled = true;  // facade = chaos implies chaos
  if (spec.horizon <= 0) spec.horizon = 1e6;
  middleware::FailureInjector inject(eng);
  for (auto* cpu : cpus) inject.add_cpu(*cpu);
  if (spec.weibull_shape > 0) {
    inject.start_weibull(spec.weibull_shape, spec.mtbf, spec.mttr, spec.horizon);
  } else {
    inject.start(spec.mtbf, spec.mttr, spec.horizon);
  }

  // The scheduler flips every resource to kFailStop and owns recovery.
  middleware::FaultTolerantScheduler sched(eng, cpus, heuristic, rcfg);
  auto& rng = eng.rng("chaos-workload");
  for (std::size_t j = 0; j < num_jobs; ++j) {
    hosts::Job job;
    job.id = j + 1;
    job.ops = rng.exponential(mean_ops);
    sched.submit(std::move(job));
  }
  // Stop the clock when the bag is fully accounted for — otherwise the
  // injector keeps the engine alive until its horizon and the post-bag
  // outages would pollute the availability window.
  std::size_t settled = 0;
  const auto on_settled = [&](const hosts::Job&) {
    if (++settled == num_jobs) eng.stop();
  };
  sched.run(on_settled, on_settled);
  eng.run();

  const double t_end = sched.makespan();
  sched.finalize_availability(t_end);
  std::printf("chaos(%s/%s): %llu done, %llu lost, %llu kills, makespan %.1f s\n",
              middleware::to_string(heuristic), policy.c_str(),
              static_cast<unsigned long long>(sched.completed()),
              static_cast<unsigned long long>(sched.lost()),
              static_cast<unsigned long long>(sched.kills()), t_end);
  std::printf("%s", sched.dependability().report(t_end).c_str());
  return sched.lost() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (flags.positional().empty()) {
    std::fprintf(stderr, "usage: scenario_runner <scenario.ini>\n");
    return 2;
  }
  try {
    const auto ini = util::IniConfig::load(flags.positional()[0]);
    const std::string facade = ini.get_string("scenario", "facade", "");
    core::Engine::Config ecfg;
    ecfg.seed = static_cast<std::uint64_t>(ini.get_int("scenario", "seed", 42));
    ecfg.queue = parse_queue(ini.get_string("scenario", "queue", "heap"));
    core::Engine engine(ecfg);

    if (facade == "bricks") return run_bricks(engine, ini);
    if (facade == "optorsim") return run_optorsim(engine, ini);
    if (facade == "monarc") return run_monarc(engine, ini);
    if (facade == "gridsim") return run_gridsim(engine, ini);
    if (facade == "chicsim") return run_chicsim(engine, ini);
    if (facade == "simg") return run_simg(engine, ini);
    if (facade == "chaos") return run_chaos(engine, ini);
    std::fprintf(stderr, "unknown facade '%s' in [scenario]\n", facade.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenario error: %s\n", e.what());
    return 1;
  }
}
