// Quickstart: the LSDS-Sim public API in ~80 lines.
//
// Builds a two-site mini-grid, runs compute jobs as coroutine processes
// that fetch input over the simulated network, and prints the statistics.
//
//   ./quickstart [--jobs=20] [--seed=42]
#include <cstdio>

#include "core/engine.hpp"
#include "core/process.hpp"
#include "hosts/site.hpp"
#include "sim/common.hpp"
#include "stats/summary.hpp"
#include "util/flags.hpp"
#include "util/units.hpp"

using namespace lsds;

namespace {

struct World {
  hosts::Grid* grid;
  stats::SampleSet* response_times;
  int jobs_left;
};

// One job: pull 100 MB of input from the data site, compute, report.
core::Process job(core::Engine& eng, World& w, hosts::JobId id, double ops) {
  const double t0 = eng.now();
  auto& data_site = w.grid->site(0);
  auto& compute_site = w.grid->site(1);

  co_await sim::transfer(w.grid->net(), data_site.node(), compute_site.node(), 100e6);
  co_await sim::compute(compute_site.cpu(), id, ops);

  w.response_times->add(eng.now() - t0);
  if (--w.jobs_left == 0) {
    std::printf("last job done at t=%s\n", util::format_duration(eng.now()).c_str());
  }
}

// A user submitting jobs with exponential think times.
core::Process user(core::Engine& eng, World& w, int n_jobs) {
  auto& rng = eng.rng("user");
  for (int i = 1; i <= n_jobs; ++i) {
    co_await core::delay(eng, rng.exponential(5.0));
    job(eng, w, static_cast<hosts::JobId>(i), rng.exponential(2000.0));
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int n_jobs = static_cast<int>(flags.get_int("jobs", 20));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  // 1. An engine: the clock + pending event set (pluggable structure).
  core::Engine engine({.queue = core::QueueKind::kCalendarQueue, .seed = seed});

  // 2. A grid: sites (CPU farm + storage) wired by a network.
  hosts::Grid grid(engine);
  hosts::SiteSpec data;
  data.name = "data-site";
  grid.add_site(data);
  hosts::SiteSpec compute;
  compute.name = "compute-site";
  compute.cores = 4;
  compute.cpu_speed = 1000;
  grid.add_site(compute);
  grid.topology().add_link(grid.site(0).node(), grid.site(1).node(), util::gbps(1), 0.01);
  grid.finalize();

  // 3. Model behavior as coroutine processes, then run.
  stats::SampleSet response_times;
  World world{&grid, &response_times, n_jobs};
  user(engine, world, n_jobs);
  engine.run();

  std::printf("jobs: %zu  mean response: %s  p95: %s  events executed: %llu\n",
              response_times.count(), util::format_duration(response_times.mean()).c_str(),
              util::format_duration(response_times.p95()).c_str(),
              static_cast<unsigned long long>(engine.stats().executed));
  return 0;
}
