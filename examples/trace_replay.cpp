// Trace replay example: the taxonomy's two input classes end to end.
//
// 1. Generate a synthetic bag-of-tasks workload (input-data: generators).
// 2. Serialize it to the trace format and parse it back (input-data:
//    monitoring-style data sets).
// 3. Drive a simulation from the parsed trace with TraceDriver and verify
//    both paths produce the same makespan.
//
//   ./trace_replay [--jobs=50] [--out=workload.trace]
#include <cstdio>
#include <fstream>

#include "apps/trace_io.hpp"
#include "apps/workload.hpp"
#include "core/engine.hpp"
#include "core/trace.hpp"
#include "hosts/cpu.hpp"
#include "util/flags.hpp"

using namespace lsds;

namespace {

// Run the workload on a 4-core space-shared node; return the makespan.
double run_jobs(core::Engine& eng, const std::vector<apps::TimedJob>& jobs) {
  hosts::CpuResource cpu(eng, "node", 4, 100.0, hosts::SharingPolicy::kSpaceShared);
  double makespan = 0;
  for (const auto& tj : jobs) {
    eng.schedule_at(tj.arrival, [&, id = tj.job.id, ops = tj.job.ops] {
      cpu.submit(id, ops, [&](hosts::JobId) { makespan = eng.now(); });
    });
  }
  eng.run();
  return makespan;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  // 1. Generator path.
  core::RngStream rng(static_cast<std::uint64_t>(flags.get_int("seed", 7)));
  apps::BagWorkloadSpec spec;
  spec.num_jobs = static_cast<std::size_t>(flags.get_int("jobs", 50));
  spec.mean_interarrival = 2.0;
  spec.ops = {apps::SizeDist::kExponential, 500, 0};
  const auto generated = apps::generate_bag(rng, spec);

  core::Engine eng_gen;
  const double makespan_gen = run_jobs(eng_gen, generated);
  std::printf("generator path:   %zu jobs, makespan %.3f s, %llu events\n", generated.size(),
              makespan_gen, static_cast<unsigned long long>(eng_gen.stats().executed));

  // 2. Trace round trip.
  const std::string text = apps::workload_to_trace(generated);
  const std::string path = flags.get_string("out", "");
  if (!path.empty()) {
    std::ofstream f(path);
    f << text;
    std::printf("trace written to %s (%zu bytes)\n", path.c_str(), text.size());
  }
  const auto parsed = apps::workload_from_trace(text);

  // 3. Trace-driven path (via TraceDriver on the raw trace events).
  core::Engine eng_trace;
  hosts::CpuResource cpu(eng_trace, "node", 4, 100.0, hosts::SharingPolicy::kSpaceShared);
  double makespan_trace = 0;
  const auto events = core::TraceReader::parse_text(text);
  core::TraceDriver driver(eng_trace, events, [&](const core::TraceEvent& ev) {
    if (ev.kind != "job") return;
    cpu.submit(static_cast<hosts::JobId>(ev.num("id", 0)), ev.num("ops", 0),
               [&](hosts::JobId) { makespan_trace = eng_trace.now(); });
  });
  driver.arm();
  eng_trace.run();
  std::printf("trace-driven run: %zu jobs, makespan %.3f s\n", parsed.jobs.size(),
              makespan_trace);

  const double err = std::abs(makespan_trace - makespan_gen);
  std::printf("paths agree within %.2e s: %s\n", err, err < 1e-6 ? "OK" : "MISMATCH");
  return err < 1e-6 ? 0 : 1;
}
