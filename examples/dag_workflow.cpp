// Workflow (DAG) scheduling example: map a task graph onto heterogeneous
// resources with HEFT and compare against round-robin.
//
//   ./dag_workflow --layers=6 --width=6 --edge-data=1MB [--seed=1]
#include <cstdio>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "hosts/cpu.hpp"
#include "middleware/dag.hpp"
#include "net/flow.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"
#include "util/units.hpp"

using namespace lsds;

namespace {

struct Pool {
  core::Engine eng;
  net::Topology topo;
  std::unique_ptr<net::Routing> routing;
  std::unique_ptr<net::FlowNetwork> fnet;
  std::vector<std::unique_ptr<hosts::CpuResource>> cpus;
  std::vector<middleware::DagScheduler::Resource> resources;

  explicit Pool(std::uint64_t seed) : eng({.queue = core::QueueKind::kBinaryHeap, .seed = seed}) {
    const double speeds[] = {100, 200, 400, 800};
    for (int i = 0; i < 4; ++i) topo.add_node("host" + std::to_string(i));
    const auto hub = topo.add_node("hub", net::NodeKind::kRouter);
    for (int i = 0; i < 4; ++i) {
      topo.add_link(static_cast<net::NodeId>(i), hub, util::mbps(100), 0.002);
    }
    routing = std::make_unique<net::Routing>(topo);
    fnet = std::make_unique<net::FlowNetwork>(eng, *routing);
    for (int i = 0; i < 4; ++i) {
      cpus.push_back(std::make_unique<hosts::CpuResource>(
          eng, "cpu" + std::to_string(i), 1, speeds[i], hosts::SharingPolicy::kSpaceShared));
      resources.push_back({cpus.back().get(), static_cast<net::NodeId>(i)});
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto layers = static_cast<std::size_t>(flags.get_int("layers", 6));
  const auto width = static_cast<std::size_t>(flags.get_int("width", 6));
  const double edge_data = flags.get_size("edge-data", 1e6);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  std::printf("workflow: %zu layers x %zu tasks, ~%s per edge, 4 hosts (100..800 ops/s)\n\n",
              layers, width, util::format_size(edge_data).c_str());

  stats::AsciiTable t({"algorithm", "makespan [s]", "cross-host edges", "bytes moved",
                       "tasks on fastest host"});
  for (auto algo : {middleware::DagAlgorithm::kHeft, middleware::DagAlgorithm::kRoundRobin}) {
    Pool pool(seed);
    core::RngStream drng(seed * 3 + 1);
    const auto dag =
        middleware::Dag::random_layered(layers, width, 0.35, 1500, edge_data, drng);
    middleware::DagScheduler sched(pool.eng, dag, pool.resources, pool.fnet.get(), algo);
    sched.start();
    pool.eng.run();
    const auto& r = sched.result();
    std::uint64_t on_fastest = 0;
    for (auto p : r.placement) {
      if (p == 3) ++on_fastest;  // host3 is the 800 ops/s machine
    }
    t.row()
        .cell(std::string(middleware::to_string(algo)))
        .cell(r.makespan)
        .cell(r.transfers)
        .cell(util::format_size(r.bytes_moved))
        .cell(on_fastest);
  }
  std::printf("%s", t.render().c_str());
  std::printf("HEFT piles work onto fast hosts and co-locates heavy edges; round-robin\n"
              "spreads blindly and pays for it in both makespan and traffic.\n");
  return 0;
}
