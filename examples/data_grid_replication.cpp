// Data-grid replication example (OptorSim facade): compare replica
// optimization strategies on one workload.
//
//   ./data_grid_replication --sites=6 --jobs=300 --zipf=1.0
//                           [--policy=lru|lfu|economic|none|all]
#include <cstdio>

#include "core/engine.hpp"
#include "middleware/replication.hpp"
#include "sim/optorsim/optorsim.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

using namespace lsds;

namespace {

sim::optorsim::Result run_policy(middleware::ReplicationPolicy policy,
                                 const util::Flags& flags) {
  core::Engine engine({.queue = core::QueueKind::kCalendarQueue,
                      .seed = static_cast<std::uint64_t>(flags.get_int("seed", 4242))});
  sim::optorsim::Config cfg;
  cfg.num_sites = static_cast<std::size_t>(flags.get_int("sites", 6));
  cfg.cache_fraction = flags.get_double("cache", 0.2);
  cfg.policy = policy;
  cfg.workload.num_jobs = static_cast<std::size_t>(flags.get_int("jobs", 300));
  cfg.workload.num_files = static_cast<std::size_t>(flags.get_int("files", 60));
  cfg.workload.files_per_job = 2;
  cfg.workload.mean_interarrival = flags.get_double("interarrival", 1.5);
  cfg.workload.zipf_exponent = flags.get_double("zipf", 1.0);
  cfg.workload.file_bytes = {apps::SizeDist::kConstant, flags.get_size("file-size", 50e6), 0};
  return sim::optorsim::run(engine, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string which = util::to_lower(flags.get_string("policy", "all"));

  stats::AsciiTable t({"strategy", "mean job time [s]", "hit ratio", "network", "replications",
                       "evictions", "makespan [s]"});
  for (auto policy : middleware::kAllReplicationPolicies) {
    if (which != "all" && which != middleware::to_string(policy)) continue;
    const auto r = run_policy(policy, flags);
    t.row()
        .cell(std::string(middleware::to_string(policy)))
        .cell(r.mean_job_time())
        .cell(r.local_hit_ratio())
        .cell(util::format_size(r.network_bytes))
        .cell(r.replications)
        .cell(r.evictions)
        .cell(r.makespan);
  }
  if (t.num_rows() == 0) {
    std::fprintf(stderr, "unknown --policy=%s (use none|lru|lfu|economic|all)\n", which.c_str());
    return 1;
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
