// Cluster batch scheduling example: FCFS vs EASY backfilling on an
// SWF-shaped workload.
//
//   ./cluster_backfill --cores=64 --jobs=300 [--swf=trace.swf] [--export=out.swf]
//
// With --swf, replays a Standard Workload Format trace (Parallel Workloads
// Archive); otherwise generates a synthetic SWF-like workload (and can
// export it with --export for reuse).
#include <cstdio>
#include <fstream>

#include "apps/swf.hpp"
#include "core/engine.hpp"
#include "middleware/batch_queue.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"

using namespace lsds;

namespace {

struct Outcome {
  double makespan;
  double mean_wait;
  double p95_wait;
  double utilization;
  std::uint64_t backfilled;
};

Outcome replay(const std::vector<apps::SwfJob>& jobs, unsigned cores,
               middleware::BatchPolicy policy, std::uint64_t seed) {
  core::Engine eng({.queue = core::QueueKind::kCalendarQueue, .seed = seed});
  middleware::BatchQueue q(eng, cores, policy);
  for (const auto& j : jobs) {
    eng.schedule_at(j.submit_time, [&q, job = j.job] { q.submit(job); });
  }
  eng.run();
  Outcome o;
  o.makespan = eng.now();
  o.mean_wait = q.waits().mean();
  o.p95_wait = q.waits().p95();
  o.utilization = q.utilization(eng.now());
  o.backfilled = q.backfilled();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto cores = static_cast<unsigned>(flags.get_int("cores", 64));
  const auto n_jobs = static_cast<std::size_t>(flags.get_int("jobs", 300));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 17));

  std::vector<apps::SwfJob> jobs;
  const std::string swf_path = flags.get_string("swf", "");
  if (!swf_path.empty()) {
    jobs = apps::load_swf(swf_path);
    std::printf("replaying %zu jobs from %s\n\n", jobs.size(), swf_path.c_str());
  } else {
    core::RngStream rng(seed);
    jobs = apps::generate_swf_like(rng, n_jobs, /*mean_interarrival=*/8.0,
                                   /*mean_runtime=*/120.0, cores);
    std::printf("synthetic SWF-like workload: %zu jobs on %u cores\n\n", jobs.size(), cores);
  }
  const std::string export_path = flags.get_string("export", "");
  if (!export_path.empty()) {
    std::ofstream f(export_path);
    f << apps::to_swf(jobs);
    std::printf("exported workload to %s\n\n", export_path.c_str());
  }

  stats::AsciiTable t({"policy", "makespan [s]", "mean wait [s]", "p95 wait [s]",
                       "utilization", "backfilled"});
  for (auto policy : {middleware::BatchPolicy::kFcfs, middleware::BatchPolicy::kEasyBackfill}) {
    const auto o = replay(jobs, cores, policy, seed);
    t.row()
        .cell(std::string(middleware::to_string(policy)))
        .cell(o.makespan)
        .cell(o.mean_wait)
        .cell(o.p95_wait)
        .cell(o.utilization)
        .cell(o.backfilled);
  }
  std::printf("%s", t.render().c_str());
  std::printf("EASY fills the holes FCFS leaves in front of wide jobs — higher\n"
              "utilization and shorter queue waits from the identical workload.\n");
  return 0;
}
