// Chaos on a grid: the dependability layer end-to-end.
//
// Four sites around a hub. The failure injector drives *correlated*
// site-wide outages (a site's CPU and its uplink fail together, Weibull
// lifetimes with infant mortality) under fail-stop semantics: an outage
// kills the jobs on the site. The fault-tolerant scheduler re-drives them
// under the chosen recovery policy and prints the dependability ledger.
//
//   ./chaos_grid [--policy=resubmit] [--jobs=500] [--mtbf=20] [--seed=42]
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "hosts/site.hpp"
#include "middleware/failures.hpp"
#include "middleware/recovery.hpp"
#include "util/flags.hpp"

using namespace lsds;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto n_jobs = static_cast<std::size_t>(flags.get_int("jobs", 500));
  const double mtbf = flags.get_double("mtbf", 20.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const std::string policy_name = flags.get_string("policy", "resubmit");

  middleware::RecoveryConfig rcfg;
  bool matched = false;
  for (auto p : middleware::kAllRecoveryPolicies) {
    if (policy_name == middleware::to_string(p)) {
      rcfg.policy = p;
      matched = true;
    }
  }
  if (!matched) {
    std::fprintf(stderr, "unknown policy '%s' (retry|resubmit|checkpoint|replicate)\n",
                 policy_name.c_str());
    return 2;
  }
  rcfg.checkpoint_interval_ops = 500;
  rcfg.checkpoint_overhead_ops = 25;
  rcfg.replicas = 2;

  core::Engine engine({.queue = core::QueueKind::kBinaryHeap, .seed = seed});

  // Four compute sites around a hub.
  hosts::Grid grid(engine);
  for (int s = 0; s < 4; ++s) {
    hosts::SiteSpec spec;
    spec.name = "site" + std::to_string(s);
    spec.cores = 2;
    spec.cpu_speed = 1000;
    grid.add_site(spec);
  }
  auto& topo = grid.topology();
  const net::NodeId hub = topo.add_node("hub", net::NodeKind::kRouter);
  std::vector<net::LinkId> uplinks;
  for (std::size_t s = 0; s < grid.site_count(); ++s) {
    uplinks.push_back(
        topo.add_link(grid.site(static_cast<hosts::SiteId>(s)).node(), hub, 125e6, 0.01));
  }
  grid.finalize();

  // Correlated chaos: each site is one failure target — its CPU and its
  // uplink die and come back together. Weibull shape < 1: young nodes die
  // disproportionately often (the empirical grid-node lifetime shape).
  middleware::FailureInjector chaos(engine);
  for (std::size_t s = 0; s < grid.site_count(); ++s) {
    chaos.add_site({&grid.site(static_cast<hosts::SiteId>(s)).cpu()}, &grid.net(),
                   {uplinks[s]});
  }
  chaos.start_weibull(/*shape=*/0.7, mtbf, /*mttr=*/2.0, /*t_end=*/1e6);

  // Fail-stop + recovery: the scheduler flips every CPU to kFailStop.
  std::vector<hosts::CpuResource*> cpus;
  for (std::size_t s = 0; s < grid.site_count(); ++s) {
    cpus.push_back(&grid.site(static_cast<hosts::SiteId>(s)).cpu());
  }
  middleware::FaultTolerantScheduler sched(engine, cpus, middleware::Heuristic::kSjf, rcfg);
  auto& rng = engine.rng("bag");
  for (std::size_t j = 0; j < n_jobs; ++j) {
    hosts::Job job;
    job.id = j + 1;
    job.ops = rng.exponential(2000.0);
    sched.submit(std::move(job));
  }
  std::size_t settled = 0;
  const auto on_settled = [&](const hosts::Job&) {
    if (++settled == n_jobs) engine.stop();
  };
  sched.run(on_settled, on_settled);
  engine.run();

  const double t_end = sched.makespan();
  sched.finalize_availability(t_end);
  std::printf("policy %s, %zu jobs, MTBF %.0f s: makespan %.1f s, %llu kills, %llu lost\n",
              middleware::to_string(rcfg.policy), n_jobs, mtbf, t_end,
              static_cast<unsigned long long>(sched.kills()),
              static_cast<unsigned long long>(sched.lost()));
  std::printf("%llu site outages injected, %.1f s total downtime\n",
              static_cast<unsigned long long>(chaos.outages_started()),
              chaos.total_downtime());
  std::printf("%s", sched.dependability().report(t_end).c_str());
  return 0;
}
