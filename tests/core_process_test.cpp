// Process-oriented layer: coroutine delays, resources, channels, conditions.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/process.hpp"

namespace core = lsds::core;
using core::Channel;
using core::Condition;
using core::Engine;
using core::Process;
using core::Resource;
using core::delay;

namespace {

Process sleeper(Engine& eng, double dt, std::vector<double>& out) {
  co_await delay(eng, dt);
  out.push_back(eng.now());
}

Process multi_sleeper(Engine& eng, std::vector<double>& out) {
  co_await delay(eng, 1.0);
  out.push_back(eng.now());
  co_await delay(eng, 2.0);
  out.push_back(eng.now());
  co_await delay(eng, 0.5);
  out.push_back(eng.now());
}

}  // namespace

TEST(Process, DelayResumesAtRightTime) {
  Engine eng;
  std::vector<double> out;
  sleeper(eng, 2.5, out);
  eng.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 2.5);
  EXPECT_EQ(eng.live_processes(), 0u);  // frame self-destroyed
}

TEST(Process, SequentialDelaysAccumulate) {
  Engine eng;
  std::vector<double> out;
  multi_sleeper(eng, out);
  eng.run();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
  EXPECT_DOUBLE_EQ(out[2], 3.5);
}

TEST(Process, ManyConcurrentProcesses) {
  Engine eng;
  std::vector<double> out;
  for (int i = 1; i <= 100; ++i) sleeper(eng, static_cast<double>(i), out);
  EXPECT_EQ(eng.live_processes(), 100u);
  eng.run();
  EXPECT_EQ(out.size(), 100u);
  EXPECT_DOUBLE_EQ(out.back(), 100.0);
  EXPECT_EQ(eng.live_processes(), 0u);
}

TEST(Process, EngineDestructionReclaimsSuspendedFrames) {
  std::vector<double> out;
  {
    Engine eng;
    for (int i = 0; i < 10; ++i) sleeper(eng, 100.0, out);
    eng.run_until(1.0);  // processes still suspended
    EXPECT_EQ(eng.live_processes(), 10u);
  }  // engine destructor must destroy the frames (asan would catch leaks)
  EXPECT_TRUE(out.empty());
}

// --- Resource ---------------------------------------------------------

namespace {

Process resource_user(Engine& eng, Resource& res, double hold, std::vector<double>& done) {
  co_await res.acquire(1);
  co_await delay(eng, hold);
  res.release(1);
  done.push_back(eng.now());
}

Process big_then_small_observer(Engine& eng, Resource& res, int id, double amount,
                                std::vector<int>& order) {
  co_await res.acquire(amount);
  order.push_back(id);
  co_await delay(eng, 1.0);
  res.release(amount);
}

}  // namespace

TEST(Resource, CapacityLimitsConcurrency) {
  Engine eng;
  Resource res(eng, 2);
  std::vector<double> done;
  for (int i = 0; i < 6; ++i) resource_user(eng, res, 10.0, done);
  eng.run();
  // 6 jobs, 2 at a time, 10s each -> completions at 10, 10, 20, 20, 30, 30.
  ASSERT_EQ(done.size(), 6u);
  EXPECT_DOUBLE_EQ(done[0], 10.0);
  EXPECT_DOUBLE_EQ(done[1], 10.0);
  EXPECT_DOUBLE_EQ(done[2], 20.0);
  EXPECT_DOUBLE_EQ(done[3], 20.0);
  EXPECT_DOUBLE_EQ(done[4], 30.0);
  EXPECT_DOUBLE_EQ(done[5], 30.0);
}

TEST(Resource, FifoNoOvertaking) {
  // A large request at the head must not be starved by small ones behind it.
  Engine eng;
  Resource res(eng, 4);
  std::vector<int> order;
  big_then_small_observer(eng, res, 0, 3, order);  // takes 3 of 4 immediately
  big_then_small_observer(eng, res, 1, 4, order);  // needs all 4: waits
  big_then_small_observer(eng, res, 2, 1, order);  // would fit, but must queue behind
  eng.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(Resource, AccountingIsExact) {
  Engine eng;
  Resource res(eng, 5);
  std::vector<double> done;
  for (int i = 0; i < 20; ++i) resource_user(eng, res, 1.0, done);
  eng.schedule_at(0.5, [&] {
    EXPECT_DOUBLE_EQ(res.in_use(), 5.0);
    EXPECT_EQ(res.queue_length(), 15u);
  });
  eng.run();
  EXPECT_DOUBLE_EQ(res.in_use(), 0.0);
  EXPECT_EQ(res.queue_length(), 0u);
  EXPECT_EQ(done.size(), 20u);
}

// --- Channel ----------------------------------------------------------

namespace {

Process producer(Engine& eng, Channel<int>& ch, int n, double gap) {
  for (int i = 0; i < n; ++i) {
    co_await delay(eng, gap);
    ch.send(i);
  }
}

Process consumer(Engine& eng, Channel<int>& ch, int n, std::vector<std::pair<double, int>>& out) {
  for (int i = 0; i < n; ++i) {
    const int v = co_await ch.receive();
    out.emplace_back(eng.now(), v);
  }
}

}  // namespace

TEST(Channel, DeliversInOrder) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<std::pair<double, int>> out;
  consumer(eng, ch, 5, out);
  producer(eng, ch, 5, 1.0);
  eng.run();
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].second, i);
    EXPECT_DOUBLE_EQ(out[i].first, static_cast<double>(i + 1));
  }
}

TEST(Channel, BufferedSendsConsumeImmediately) {
  Engine eng;
  Channel<int> ch(eng);
  ch.send(1);
  ch.send(2);
  std::vector<std::pair<double, int>> out;
  consumer(eng, ch, 2, out);
  eng.run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].second, 1);
  EXPECT_EQ(out[1].second, 2);
  EXPECT_DOUBLE_EQ(out[1].first, 0.0);
}

TEST(Channel, MultipleReceiversFifo) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<std::pair<double, int>> out_a, out_b;
  consumer(eng, ch, 1, out_a);  // first waiter
  consumer(eng, ch, 1, out_b);  // second waiter
  eng.schedule_at(1.0, [&] { ch.send(10); });
  eng.schedule_at(2.0, [&] { ch.send(20); });
  eng.run();
  ASSERT_EQ(out_a.size(), 1u);
  ASSERT_EQ(out_b.size(), 1u);
  EXPECT_EQ(out_a[0].second, 10);  // first waiter gets first item
  EXPECT_EQ(out_b[0].second, 20);
}

TEST(Channel, MixedBufferAndWaiters) {
  // Regression for the reserved-item race: a buffered item must not be
  // stolen from an already-scheduled receiver by a fast-path receive.
  Engine eng;
  Channel<int> ch(eng);
  std::vector<std::pair<double, int>> out_a, out_b;
  consumer(eng, ch, 1, out_a);  // waits
  ch.send(1);                   // reserves for A (resume scheduled)
  ch.send(2);                   // buffered
  consumer(eng, ch, 1, out_b);  // must get 2, not 1
  eng.run();
  ASSERT_EQ(out_a.size(), 1u);
  ASSERT_EQ(out_b.size(), 1u);
  EXPECT_EQ(out_a[0].second, 1);
  EXPECT_EQ(out_b[0].second, 2);
}

TEST(Channel, MoveOnlyPayload) {
  Engine eng;
  Channel<std::unique_ptr<std::string>> ch(eng);
  std::string got;
  [](Engine& e, Channel<std::unique_ptr<std::string>>& c, std::string& out) -> Process {
    auto p = co_await c.receive();
    out = *p;
    (void)e;
  }(eng, ch, got);
  ch.send(std::make_unique<std::string>("payload"));
  eng.run();
  EXPECT_EQ(got, "payload");
}

// --- Condition --------------------------------------------------------

namespace {

Process waiter_proc(Engine& eng, Condition& cond, std::vector<double>& out) {
  co_await cond.wait();
  out.push_back(eng.now());
}

}  // namespace

TEST(Condition, NotifyAllWakesEveryone) {
  Engine eng;
  Condition cond(eng);
  std::vector<double> out;
  for (int i = 0; i < 5; ++i) waiter_proc(eng, cond, out);
  eng.schedule_at(3.0, [&] { cond.notify_all(); });
  eng.run();
  ASSERT_EQ(out.size(), 5u);
  for (double t : out) EXPECT_DOUBLE_EQ(t, 3.0);
  EXPECT_EQ(cond.waiting(), 0u);
}

TEST(Condition, NotifyOneWakesOne) {
  Engine eng;
  Condition cond(eng);
  std::vector<double> out;
  for (int i = 0; i < 3; ++i) waiter_proc(eng, cond, out);
  eng.schedule_at(1.0, [&] { cond.notify_one(); });
  eng.schedule_at(2.0, [&] { cond.notify_one(); });
  eng.run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_EQ(cond.waiting(), 1u);
}

TEST(Condition, NotifyWithNoWaitersIsNoop) {
  Engine eng;
  Condition cond(eng);
  cond.notify_one();
  cond.notify_all();
  eng.run();
  EXPECT_EQ(eng.stats().executed, 0u);
}

// --- integration: M/M/1-style pipeline built from primitives --------------

namespace {

Process pipeline_stage(Engine& eng, Channel<double>& in, Channel<double>& out, Resource& cpu) {
  for (;;) {
    const double work = co_await in.receive();
    co_await cpu.acquire(1);
    co_await delay(eng, work);
    cpu.release(1);
    out.send(eng.now());
  }
}

}  // namespace

TEST(ProcessIntegration, TwoStagePipeline) {
  Engine eng;
  Channel<double> stage1_in(eng), stage2_in(eng), done(eng);
  Resource cpu1(eng, 1), cpu2(eng, 1);
  // stage1 forwards into stage2.
  pipeline_stage(eng, stage1_in, stage2_in, cpu1);
  [](Engine& e, Channel<double>& in, Channel<double>& out, Resource& cpu) -> Process {
    for (;;) {
      co_await in.receive();
      co_await cpu.acquire(1);
      co_await delay(e, 2.0);
      cpu.release(1);
      out.send(e.now());
    }
  }(eng, stage2_in, done, cpu2);

  std::vector<double> finish;
  [](Engine& e, Channel<double>& done_ch, std::vector<double>& fin) -> Process {
    for (int i = 0; i < 3; ++i) fin.push_back(co_await done_ch.receive());
    e.stop();
  }(eng, done, finish);

  for (int i = 0; i < 3; ++i) stage1_in.send(1.0);
  eng.run();
  ASSERT_EQ(finish.size(), 3u);
  // Stage1 serializes at 1s each; stage2 at 2s each: completions 3,5,7.
  EXPECT_DOUBLE_EQ(finish[0], 3.0);
  EXPECT_DOUBLE_EQ(finish[1], 5.0);
  EXPECT_DOUBLE_EQ(finish[2], 7.0);
}
