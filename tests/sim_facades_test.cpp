// Integration tests: the six simulator facades run whole scenarios
// deterministically and reproduce their papers' qualitative behaviors.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "sim/bricks/bricks.hpp"
#include "sim/chicsim/chicsim.hpp"
#include "sim/gridsim/gridsim.hpp"
#include "sim/monarc/monarc.hpp"
#include "sim/optorsim/optorsim.hpp"
#include "sim/simg/simg.hpp"
#include "util/units.hpp"

namespace core = lsds::core;
namespace u = lsds::util;
using core::Engine;

// --- Bricks ---------------------------------------------------------------

TEST(Bricks, CentralModelCompletesAllJobs) {
  Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 11});
  lsds::sim::bricks::Config cfg;
  cfg.num_clients = 4;
  cfg.jobs_per_client = 10;
  const auto res = lsds::sim::bricks::run(eng, cfg);
  EXPECT_EQ(res.jobs, 40u);
  EXPECT_GT(res.makespan, 0);
  EXPECT_EQ(res.response_times.count(), 40u);
  EXPECT_GT(res.server_utilization, 0);
  EXPECT_LE(res.server_utilization, 1.0 + 1e-9);
  EXPECT_NEAR(res.network_bytes, 40 * (cfg.input_bytes + cfg.output_bytes), 1.0);
}

TEST(Bricks, DeterministicForSeed) {
  lsds::sim::bricks::Config cfg;
  cfg.num_clients = 3;
  cfg.jobs_per_client = 5;
  Engine a({.queue = core::QueueKind::kBinaryHeap, .seed = 5}), b({.queue = core::QueueKind::kBinaryHeap, .seed = 5});
  const auto ra = lsds::sim::bricks::run(a, cfg);
  const auto rb = lsds::sim::bricks::run(b, cfg);
  EXPECT_DOUBLE_EQ(ra.makespan, rb.makespan);
  EXPECT_DOUBLE_EQ(ra.response_times.mean(), rb.response_times.mean());
}

TEST(Bricks, MoreServersReduceQueueing) {
  lsds::sim::bricks::Config slow;
  slow.num_clients = 6;
  slow.jobs_per_client = 10;
  slow.mean_interarrival = 4.0;  // load the server
  slow.server_cores = 1;
  lsds::sim::bricks::Config fast = slow;
  fast.server_cores = 8;
  Engine a({.queue = core::QueueKind::kBinaryHeap, .seed = 7}), b({.queue = core::QueueKind::kBinaryHeap, .seed = 7});
  const auto r_slow = lsds::sim::bricks::run(a, slow);
  const auto r_fast = lsds::sim::bricks::run(b, fast);
  EXPECT_GT(r_slow.queue_waits.mean(), r_fast.queue_waits.mean());
  EXPECT_GT(r_slow.response_times.mean(), r_fast.response_times.mean());
}

// --- OptorSim --------------------------------------------------------

namespace {

lsds::sim::optorsim::Config optor_config() {
  lsds::sim::optorsim::Config cfg;
  cfg.num_sites = 4;
  cfg.workload.num_jobs = 120;
  cfg.workload.num_files = 40;
  cfg.workload.files_per_job = 2;
  cfg.workload.mean_interarrival = 2.0;
  cfg.workload.file_bytes = {lsds::apps::SizeDist::kConstant, 50e6, 0};
  cfg.cache_fraction = 0.25;
  return cfg;
}

}  // namespace

TEST(OptorSim, AllJobsComplete) {
  Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 21});
  auto cfg = optor_config();
  const auto res = lsds::sim::optorsim::run(eng, cfg);
  EXPECT_EQ(res.jobs, 120u);
  EXPECT_EQ(res.local_reads + res.remote_reads, 240u);  // 2 files per job
  EXPECT_GT(res.makespan, 0);
}

TEST(OptorSim, NoReplicationNeverReplicates) {
  Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 21});
  auto cfg = optor_config();
  cfg.policy = lsds::middleware::ReplicationPolicy::kNone;
  const auto res = lsds::sim::optorsim::run(eng, cfg);
  EXPECT_EQ(res.replications, 0u);
  EXPECT_EQ(res.local_reads, 0u);  // nothing is ever cached
}

TEST(OptorSim, LruCachingImprovesLocalityAndJobTimes) {
  auto cfg = optor_config();
  cfg.policy = lsds::middleware::ReplicationPolicy::kNone;
  Engine a({.queue = core::QueueKind::kBinaryHeap, .seed = 21});
  const auto none = lsds::sim::optorsim::run(a, cfg);

  cfg.policy = lsds::middleware::ReplicationPolicy::kLru;
  Engine b({.queue = core::QueueKind::kBinaryHeap, .seed = 21});
  const auto lru = lsds::sim::optorsim::run(b, cfg);

  EXPECT_GT(lru.replications, 0u);
  EXPECT_GT(lru.local_hit_ratio(), none.local_hit_ratio());
  EXPECT_LT(lru.mean_job_time(), none.mean_job_time());
  EXPECT_LT(lru.network_bytes, none.network_bytes);
}

TEST(OptorSim, CacheNeverExceedsCapacity) {
  Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 33});
  auto cfg = optor_config();
  cfg.cache_fraction = 0.1;  // tight caches force constant eviction
  const auto res = lsds::sim::optorsim::run(eng, cfg);
  EXPECT_EQ(res.jobs, 120u);
  EXPECT_GT(res.evictions, 0u);
}

TEST(OptorSim, EconomicDeclinesColdFiles) {
  auto cfg = optor_config();
  cfg.cache_fraction = 0.1;
  cfg.workload.zipf_exponent = 1.2;  // strong skew: hot files exist
  Engine a({.queue = core::QueueKind::kBinaryHeap, .seed = 9});
  cfg.policy = lsds::middleware::ReplicationPolicy::kLru;
  const auto lru = lsds::sim::optorsim::run(a, cfg);
  Engine b({.queue = core::QueueKind::kBinaryHeap, .seed = 9});
  cfg.policy = lsds::middleware::ReplicationPolicy::kEconomic;
  const auto eco = lsds::sim::optorsim::run(b, cfg);
  // Economic replicates more selectively than always-replicate LRU.
  EXPECT_LT(eco.replications, lru.replications);
  EXPECT_GT(eco.replications, 0u);
}

// --- SimGrid -----------------------------------------------------------

TEST(SimG, BothModesCompleteAllTasks) {
  for (auto mode :
       {lsds::sim::simg::SchedulingMode::kCompileTime, lsds::sim::simg::SchedulingMode::kRuntime}) {
    Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 3});
    lsds::sim::simg::Config cfg;
    cfg.mode = mode;
    cfg.num_tasks = 40;
    const auto res = lsds::sim::simg::run(eng, cfg);
    EXPECT_EQ(res.tasks, 40u) << to_string(mode);
    EXPECT_GT(res.makespan, 0) << to_string(mode);
    std::uint64_t total = 0;
    for (auto c : res.per_worker) total += c;
    EXPECT_EQ(total, 40u);
  }
}

TEST(SimG, RuntimeAdaptsBetterUnderEstimateError) {
  // With very noisy estimates, self-scheduling (runtime) should beat the
  // static compile-time plan; with perfect estimates they should be close.
  auto makespan = [](lsds::sim::simg::SchedulingMode mode, double err, std::uint64_t seed) {
    Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = seed});
    lsds::sim::simg::Config cfg;
    cfg.mode = mode;
    cfg.num_tasks = 100;
    cfg.estimate_error = err;
    return lsds::sim::simg::run(eng, cfg).makespan;
  };
  double rt_wins = 0, trials = 5;
  for (std::uint64_t s = 1; s <= 5; ++s) {
    const double rt = makespan(lsds::sim::simg::SchedulingMode::kRuntime, 0.9, s);
    const double ct = makespan(lsds::sim::simg::SchedulingMode::kCompileTime, 0.9, s);
    if (rt <= ct) rt_wins += 1;
  }
  EXPECT_GE(rt_wins / trials, 0.6);
}

TEST(SimG, FasterWorkersDoMoreTasks) {
  Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 8});
  lsds::sim::simg::Config cfg;
  cfg.mode = lsds::sim::simg::SchedulingMode::kRuntime;
  cfg.num_tasks = 80;
  cfg.speed_min = 200;
  cfg.speed_max = 2000;
  const auto res = lsds::sim::simg::run(eng, cfg);
  // Worker 0 is the fastest (speed_max), the last is the slowest.
  EXPECT_GT(res.per_worker.front(), res.per_worker.back());
}

// --- GridSim ----------------------------------------------------------

TEST(GridSim, CostOptCheaperTimeOptFaster) {
  lsds::sim::gridsim::Config cfg;
  cfg.num_jobs = 40;
  cfg.strategy = lsds::middleware::DbcStrategy::kCostOptimization;
  Engine a({.queue = core::QueueKind::kBinaryHeap, .seed = 2});
  const auto cost_opt = lsds::sim::gridsim::run(a, cfg);
  cfg.strategy = lsds::middleware::DbcStrategy::kTimeOptimization;
  Engine b({.queue = core::QueueKind::kBinaryHeap, .seed = 2});
  const auto time_opt = lsds::sim::gridsim::run(b, cfg);

  EXPECT_EQ(cost_opt.completed, 40u);
  EXPECT_EQ(time_opt.completed, 40u);
  EXPECT_LT(cost_opt.cost, time_opt.cost);
  EXPECT_LT(time_opt.makespan, cost_opt.makespan);
}

TEST(GridSim, TightBudgetRejectsJobs) {
  lsds::sim::gridsim::Config cfg;
  cfg.num_jobs = 30;
  cfg.budget = 20.0;  // far below unconstrained spend
  cfg.strategy = lsds::middleware::DbcStrategy::kCostOptimization;
  Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 4});
  const auto res = lsds::sim::gridsim::run(eng, cfg);
  EXPECT_GT(res.rejected, 0u);
  EXPECT_LE(res.cost, cfg.budget + 1e-9);
  EXPECT_EQ(res.completed, res.accepted);
}

TEST(GridSim, DeadlinePushesCostUp) {
  lsds::sim::gridsim::Config cfg;
  cfg.num_jobs = 30;
  cfg.strategy = lsds::middleware::DbcStrategy::kCostOptimization;
  Engine a({.queue = core::QueueKind::kBinaryHeap, .seed = 6});
  const auto loose = lsds::sim::gridsim::run(a, cfg);
  cfg.deadline = loose.makespan / 3.0;  // force faster placement
  Engine b({.queue = core::QueueKind::kBinaryHeap, .seed = 6});
  const auto tight = lsds::sim::gridsim::run(b, cfg);
  EXPECT_GE(tight.cost, loose.cost);
  EXPECT_TRUE(tight.deadline_met);
}

// --- ChicagoSim -----------------------------------------------------------

namespace {

lsds::sim::chicsim::Config chic_config() {
  lsds::sim::chicsim::Config cfg;
  cfg.num_sites = 5;
  cfg.workload.num_jobs = 150;
  cfg.workload.num_files = 30;
  cfg.workload.files_per_job = 1;
  cfg.workload.mean_interarrival = 1.0;
  cfg.workload.file_bytes = {lsds::apps::SizeDist::kConstant, 40e6, 0};
  return cfg;
}

}  // namespace

TEST(ChicSim, AllPolicyCombinationsComplete) {
  for (auto jp : lsds::sim::chicsim::kAllJobPolicies) {
    for (auto dp : lsds::sim::chicsim::kAllDataPolicies) {
      Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 17});
      auto cfg = chic_config();
      cfg.job_policy = jp;
      cfg.data_policy = dp;
      const auto res = lsds::sim::chicsim::run(eng, cfg);
      EXPECT_EQ(res.jobs, 150u) << to_string(jp) << "/" << to_string(dp);
    }
  }
}

TEST(ChicSim, DataPresentSchedulingMaximizesLocality) {
  auto run_policy = [](lsds::sim::chicsim::JobPolicy jp) {
    Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 23});
    auto cfg = chic_config();
    cfg.job_policy = jp;
    cfg.data_policy = lsds::sim::chicsim::DataPolicy::kNone;
    return lsds::sim::chicsim::run(eng, cfg);
  };
  const auto data_present = run_policy(lsds::sim::chicsim::JobPolicy::kDataPresent);
  const auto random = run_policy(lsds::sim::chicsim::JobPolicy::kRandom);
  EXPECT_GT(data_present.locality(), random.locality());
  EXPECT_LT(data_present.network_bytes, random.network_bytes);
}

TEST(ChicSim, PushReplicationSpreadsPopularFiles) {
  Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 29});
  auto cfg = chic_config();
  cfg.workload.zipf_exponent = 1.2;
  cfg.job_policy = lsds::sim::chicsim::JobPolicy::kRandom;
  cfg.data_policy = lsds::sim::chicsim::DataPolicy::kPush;
  const auto res = lsds::sim::chicsim::run(eng, cfg);
  EXPECT_GT(res.pushes, 0u);
  // Push raises locality above the no-replication baseline.
  Engine eng2({.queue = core::QueueKind::kBinaryHeap, .seed = 29});
  cfg.data_policy = lsds::sim::chicsim::DataPolicy::kNone;
  const auto none = lsds::sim::chicsim::run(eng2, cfg);
  EXPECT_GT(res.locality(), none.locality());
}

TEST(ChicSim, MultipleSchedulersComplete) {
  for (std::size_t k : {1u, 2u, 3u}) {
    Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 41});
    auto cfg = chic_config();
    cfg.num_schedulers = k;
    cfg.job_policy = lsds::sim::chicsim::JobPolicy::kLeastLoaded;
    const auto res = lsds::sim::chicsim::run(eng, cfg);
    EXPECT_EQ(res.jobs, 150u) << k << " schedulers";
  }
}

TEST(ChicSim, SchedulerFragmentationHurtsDataPresentLocality) {
  // With one global scheduler, data-present placement always reaches the
  // data; schedulers restricted to partitions sometimes cannot.
  auto run_k = [](std::size_t k) {
    Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 43});
    auto cfg = chic_config();
    cfg.num_schedulers = k;
    cfg.job_policy = lsds::sim::chicsim::JobPolicy::kDataPresent;
    cfg.data_policy = lsds::sim::chicsim::DataPolicy::kNone;
    return lsds::sim::chicsim::run(eng, cfg);
  };
  const auto one = run_k(1);
  const auto three = run_k(3);
  EXPECT_GT(one.locality(), 0.99);
  EXPECT_LT(three.locality(), one.locality());
  EXPECT_GT(three.network_bytes, one.network_bytes);
}

TEST(ChicSim, CachingImprovesLocality) {
  auto cfg = chic_config();
  cfg.job_policy = lsds::sim::chicsim::JobPolicy::kRandom;
  Engine a({.queue = core::QueueKind::kBinaryHeap, .seed = 31});
  cfg.data_policy = lsds::sim::chicsim::DataPolicy::kNone;
  const auto none = lsds::sim::chicsim::run(a, cfg);
  Engine b({.queue = core::QueueKind::kBinaryHeap, .seed = 31});
  cfg.data_policy = lsds::sim::chicsim::DataPolicy::kCache;
  const auto cache = lsds::sim::chicsim::run(b, cfg);
  EXPECT_GT(cache.locality(), none.locality());
  EXPECT_GT(cache.replications, 0u);
}

// --- MONARC -----------------------------------------------------------

namespace {

lsds::sim::monarc::Config monarc_config(double gbps) {
  lsds::sim::monarc::Config cfg;
  cfg.num_t1 = 2;
  cfg.num_files = 20;
  cfg.file_bytes = 10e9;
  cfg.production_interval = 20.0;  // offered rate per link: 0.5 GB/s = 4 Gbps
  cfg.t0_t1_bandwidth = u::gbps(gbps);
  cfg.run_analysis = false;
  return cfg;
}

}  // namespace

TEST(Monarc, AllReplicasDelivered) {
  Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 1});
  auto cfg = monarc_config(10.0);
  cfg.run_analysis = true;
  const auto res = lsds::sim::monarc::run(eng, cfg);
  EXPECT_EQ(res.files_produced, 20u);
  EXPECT_EQ(res.replicas_delivered, 40u);  // 20 files x 2 T1s
  EXPECT_EQ(res.analysis_jobs, 40u);
  EXPECT_GT(res.link_utilization, 0);
  EXPECT_LE(res.link_utilization, 1.0 + 1e-9);
}

TEST(Monarc, InsufficientLinkDivergesSufficientKeepsUp) {
  // Offered rate is 4 Gbps per link: 2.5 Gbps must fall behind (growing
  // backlog, unsustainable), 10 Gbps must keep up — the paper's LHC story.
  Engine low({.queue = core::QueueKind::kBinaryHeap, .seed = 1});
  const auto r_low = lsds::sim::monarc::run(low, monarc_config(2.5));
  Engine high({.queue = core::QueueKind::kBinaryHeap, .seed = 1});
  const auto r_high = lsds::sim::monarc::run(high, monarc_config(10.0));

  EXPECT_FALSE(r_low.sustainable());
  EXPECT_TRUE(r_high.sustainable());
  EXPECT_GT(r_low.backlog_at_production_end, 4 * r_high.backlog_at_production_end);
  EXPECT_GT(r_low.replication_lag.mean(), r_high.replication_lag.mean());
  EXPECT_GT(r_low.drain_time, r_high.drain_time);
  // The starved link saturates; the comfortable one has headroom.
  EXPECT_GT(r_low.link_utilization, 0.95);
  EXPECT_LT(r_high.link_utilization, 0.75);
}

TEST(Monarc, BacklogSeriesMonotoneUnderStarvation) {
  Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 1});
  const auto res = lsds::sim::monarc::run(eng, monarc_config(1.0));
  // Peak backlog equals backlog at production end when the link can't keep
  // up at all.
  EXPECT_NEAR(res.peak_backlog_bytes, res.backlog_at_production_end,
              2 * res.file_bytes * static_cast<double>(res.num_t1));
}

TEST(Monarc, TapeArchiveKeepsUpWhenFastEnough) {
  // Production: 10 GB / 20 s = 0.5 GB/s offered to the tape robots.
  Engine fast({.queue = core::QueueKind::kBinaryHeap, .seed = 1});
  auto cfg = monarc_config(10.0);
  cfg.archive_to_tape = true;
  cfg.tape_bandwidth = 2e9;  // 4x headroom
  cfg.tape_mount_latency = 1.0;
  const auto r_fast = lsds::sim::monarc::run(fast, cfg);
  EXPECT_EQ(r_fast.files_archived, 20u);
  // Starved robots: archive lag grows far beyond the fast case.
  Engine slow({.queue = core::QueueKind::kBinaryHeap, .seed = 1});
  cfg.tape_bandwidth = 0.25e9;  // half the offered rate
  const auto r_slow = lsds::sim::monarc::run(slow, cfg);
  EXPECT_EQ(r_slow.files_archived, 20u);
  EXPECT_GT(r_slow.archive_lag.max(), 4 * r_fast.archive_lag.max());
}

TEST(Monarc, ThreeTierHierarchyRuns) {
  Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 1});
  auto cfg = monarc_config(10.0);
  cfg.run_analysis = true;
  cfg.t2_per_t1 = 2;
  cfg.t2_fraction = 0.5;
  const auto res = lsds::sim::monarc::run(eng, cfg);
  EXPECT_EQ(res.replicas_delivered, 40u);
  EXPECT_GT(res.t2_jobs, 0u);
  // ~2 T1s x 2 T2s x 20 files x 0.5 = ~40 expected T2 jobs.
  EXPECT_NEAR(static_cast<double>(res.t2_jobs), 40.0, 20.0);
  // T2 work rides on T1 replication + an extra network hop: slower than T1
  // analysis on average.
  EXPECT_GT(res.t2_delays.mean(), res.analysis_delays.mean());
}

TEST(Monarc, AnalysisWaitsForReplicas) {
  Engine slow({.queue = core::QueueKind::kBinaryHeap, .seed = 1});
  auto cfg = monarc_config(2.5);
  cfg.run_analysis = true;
  const auto r_slow = lsds::sim::monarc::run(slow, cfg);
  Engine fast({.queue = core::QueueKind::kBinaryHeap, .seed = 1});
  auto cfg2 = monarc_config(20.0);
  cfg2.run_analysis = true;
  const auto r_fast = lsds::sim::monarc::run(fast, cfg2);
  // Starved replication delays the physics analysis downstream.
  EXPECT_GT(r_slow.analysis_delays.mean(), 2 * r_fast.analysis_delays.mean());
}
