// Unit tests for the util library: strings, units, ini, flags, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "util/flags.hpp"
#include "util/ini.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace u = lsds::util;

// --- strings -----------------------------------------------------------

TEST(Strings, FormatBasic) {
  EXPECT_EQ(u::strformat("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(u::strformat("plain"), "plain");
  EXPECT_EQ(u::strformat("%s!", "hi"), "hi!");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = u::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = u::split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(u::trim("  x  "), "x");
  EXPECT_EQ(u::trim(""), "");
  EXPECT_EQ(u::trim(" \t\n "), "");
  EXPECT_EQ(u::trim("abc"), "abc");
}

TEST(Strings, Join) {
  EXPECT_EQ(u::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(u::join({}, ","), "");
  EXPECT_EQ(u::join({"x"}, ","), "x");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(u::starts_with("--flag", "--"));
  EXPECT_FALSE(u::starts_with("-", "--"));
  EXPECT_TRUE(u::ends_with("file.csv", ".csv"));
  EXPECT_FALSE(u::ends_with("csv", ".csv"));
}

TEST(Strings, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(u::parse_double("3.25", v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(u::parse_double(" 1e3 ", v));
  EXPECT_DOUBLE_EQ(v, 1000.0);
  EXPECT_FALSE(u::parse_double("abc", v));
  EXPECT_FALSE(u::parse_double("1.5x", v));
  EXPECT_FALSE(u::parse_double("", v));
}

TEST(Strings, ParseLong) {
  long long v = 0;
  EXPECT_TRUE(u::parse_long("-42", v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(u::parse_long("4.2", v));
}

TEST(Strings, ParseBool) {
  bool b = false;
  EXPECT_TRUE(u::parse_bool("true", b));
  EXPECT_TRUE(b);
  EXPECT_TRUE(u::parse_bool("Off", b));
  EXPECT_FALSE(b);
  EXPECT_FALSE(u::parse_bool("maybe", b));
}

// --- units -------------------------------------------------------------

TEST(Units, ParseSize) {
  double v = 0;
  EXPECT_TRUE(u::parse_size("512MB", v));
  EXPECT_DOUBLE_EQ(v, 512e6);
  EXPECT_TRUE(u::parse_size("1.5GiB", v));
  EXPECT_DOUBLE_EQ(v, 1.5 * 1024 * 1024 * 1024);
  EXPECT_TRUE(u::parse_size("1024", v));
  EXPECT_DOUBLE_EQ(v, 1024.0);
  EXPECT_FALSE(u::parse_size("12 parsecs", v));
}

TEST(Units, ParseRate) {
  double v = 0;
  EXPECT_TRUE(u::parse_rate("2.5Gbps", v));
  EXPECT_DOUBLE_EQ(v, 2.5e9 / 8.0);
  EXPECT_TRUE(u::parse_rate("100MB/s", v));
  EXPECT_DOUBLE_EQ(v, 100e6);
  EXPECT_FALSE(u::parse_rate("100", v));  // rate needs an explicit unit
}

TEST(Units, ParseDuration) {
  double v = 0;
  EXPECT_TRUE(u::parse_duration("15ms", v));
  EXPECT_DOUBLE_EQ(v, 0.015);
  EXPECT_TRUE(u::parse_duration("2h", v));
  EXPECT_DOUBLE_EQ(v, 7200.0);
  EXPECT_TRUE(u::parse_duration("10", v));
  EXPECT_DOUBLE_EQ(v, 10.0);
  EXPECT_TRUE(u::parse_duration("250us", v));
  EXPECT_DOUBLE_EQ(v, 250e-6);
}

TEST(Units, RateConstantsRoundTrip) {
  EXPECT_DOUBLE_EQ(u::gbps(2.5), 2.5e9 / 8);
  EXPECT_EQ(u::format_rate(u::gbps(2.5)), "2.50 Gbps");
  EXPECT_EQ(u::format_size(1.54e6), "1.54 MB");
  EXPECT_EQ(u::format_duration(0.0042), "4.20 ms");
}

// --- ini ---------------------------------------------------------------

TEST(Ini, ParseSectionsAndTypes) {
  const auto cfg = u::IniConfig::parse(R"(
; experiment config
[network]
t0_t1_link = 2.5Gbps
latency = 15ms       ; propagation
packet = 1500

[workload]
jobs = 1000
mean_size = 2GB
enabled = yes
name = "LHC production"
)");
  EXPECT_DOUBLE_EQ(cfg.get_rate("network", "t0_t1_link", 0), 2.5e9 / 8);
  EXPECT_DOUBLE_EQ(cfg.get_duration("network", "latency", 0), 0.015);
  EXPECT_EQ(cfg.get_int("network", "packet", 0), 1500);
  EXPECT_EQ(cfg.get_int("workload", "jobs", 0), 1000);
  EXPECT_DOUBLE_EQ(cfg.get_size("workload", "mean_size", 0), 2e9);
  EXPECT_TRUE(cfg.get_bool("workload", "enabled", false));
  EXPECT_EQ(cfg.get_string("workload", "name"), "LHC production");
}

TEST(Ini, DefaultsAndPresence) {
  const auto cfg = u::IniConfig::parse("[a]\nx = 1\n");
  EXPECT_TRUE(cfg.has("a", "x"));
  EXPECT_FALSE(cfg.has("a", "y"));
  EXPECT_FALSE(cfg.has("b", "x"));
  EXPECT_EQ(cfg.get_int("a", "y", 7), 7);
}

TEST(Ini, MalformedValueThrows) {
  const auto cfg = u::IniConfig::parse("[a]\nrate = 2.5Gbsp\n");
  EXPECT_THROW(cfg.get_rate("a", "rate", 0), u::ConfigError);
}

TEST(Ini, SyntaxErrors) {
  EXPECT_THROW(u::IniConfig::parse("[unterminated\n"), u::ConfigError);
  EXPECT_THROW(u::IniConfig::parse("[a]\nno_equals_sign\n"), u::ConfigError);
  EXPECT_THROW(u::IniConfig::parse("[]\n"), u::ConfigError);
}

TEST(Ini, DumpRoundTripsSectionsKeysAndValues) {
  // The distributed campaign ships the base scenario to workers via
  // dump()/save(); parse(dump(cfg)) must reproduce every value, order and
  // quoting the original had.
  const auto cfg = u::IniConfig::parse(
      "global_key = 1\n"
      "[network]\n"
      "link = 2.5Gbps\n"
      "name = \"LHC production\"   ; quoted: embedded spaces survive\n"
      "note = \"has ; semicolon\"\n"
      "[b]\n"
      "z = last\n");
  const auto back = u::IniConfig::parse(cfg.dump());
  EXPECT_EQ(back.get_int("", "global_key", 0), 1);
  EXPECT_EQ(back.get_string("network", "link"), "2.5Gbps");
  EXPECT_EQ(back.get_string("network", "name"), "LHC production");
  EXPECT_EQ(back.get_string("network", "note"), "has ; semicolon");
  EXPECT_EQ(back.sections(), cfg.sections());
  EXPECT_EQ(back.keys("network"), cfg.keys("network"));
  // Fixpoint: a second dump is byte-identical to the first.
  EXPECT_EQ(back.dump(), cfg.dump());
}

TEST(Ini, DumpQuotesTabWrappedValuesAndRejectsLineBreaks) {
  // A programmatically set() value with surrounding tabs must survive the
  // dump/parse round trip (quoted), and a value with an embedded line break
  // — which the line-based format cannot represent — must throw rather than
  // silently desync the coordinator's and a worker's scenarios.
  u::IniConfig cfg;
  cfg.set("a", "padded", "\tkeep me\t");
  EXPECT_EQ(u::IniConfig::parse(cfg.dump()).get_string("a", "padded"), "\tkeep me\t");

  u::IniConfig newline;
  newline.set("a", "multiline", "first\nsecond");
  EXPECT_THROW(newline.dump(), u::ConfigError);
  u::IniConfig carriage;
  carriage.set("a", "cr", "ends badly\r");
  EXPECT_THROW(carriage.dump(), u::ConfigError);
}

TEST(Ini, OrderPreserved) {
  const auto cfg = u::IniConfig::parse("[b]\nz=1\na=2\n[a]\nq=3\n");
  const auto secs = cfg.sections();
  ASSERT_EQ(secs.size(), 2u);
  EXPECT_EQ(secs[0], "b");
  EXPECT_EQ(secs[1], "a");
  const auto keys = cfg.keys("b");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "z");
  EXPECT_EQ(keys[1], "a");
}

// --- flags -------------------------------------------------------------

TEST(Flags, ParseStyles) {
  const char* argv[] = {"prog", "--jobs=100", "--rate=1Gbps", "--verbose", "input.ini"};
  u::Flags f(5, argv);
  EXPECT_EQ(f.get_int("jobs", 0), 100);
  EXPECT_DOUBLE_EQ(f.get_rate("rate", 0), 1e9 / 8);
  EXPECT_TRUE(f.get_bool("verbose", false));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "input.ini");
}

TEST(Flags, Defaults) {
  const char* argv[] = {"prog"};
  u::Flags f(1, argv);
  EXPECT_EQ(f.get_int("missing", 42), 42);
  EXPECT_FALSE(f.has("missing"));
}

TEST(Flags, MalformedThrows) {
  const char* argv[] = {"prog", "--jobs=abc"};
  u::Flags f(2, argv);
  EXPECT_THROW(f.get_int("jobs", 0), std::runtime_error);
}

// --- thread pool ---------------------------------------------------------

TEST(ThreadPool, RunsAllTasks) {
  u::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  u::ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, SubmitFromWorker) {
  u::ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] {
    count.fetch_add(1);
    pool.submit([&] { count.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}
