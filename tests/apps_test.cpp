// Apps layer: workload generators, activities, trace round-trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "apps/activity.hpp"
#include "apps/trace_io.hpp"
#include "apps/workload.hpp"
#include "core/engine.hpp"

namespace apps = lsds::apps;
namespace core = lsds::core;
namespace hosts = lsds::hosts;

TEST(Workload, BagSizesAndArrivals) {
  core::RngStream rng(1);
  apps::BagWorkloadSpec spec;
  spec.num_jobs = 500;
  spec.mean_interarrival = 2.0;
  spec.ops = {apps::SizeDist::kExponential, 1000, 0};
  const auto jobs = apps::generate_bag(rng, spec);
  ASSERT_EQ(jobs.size(), 500u);
  EXPECT_TRUE(std::is_sorted(jobs.begin(), jobs.end(), [](const auto& a, const auto& b) {
    return a.arrival < b.arrival;
  }));
  double mean_ops = 0, last = 0;
  for (const auto& tj : jobs) {
    mean_ops += tj.job.ops;
    last = tj.arrival;
  }
  mean_ops /= 500;
  EXPECT_NEAR(mean_ops, 1000, 150);
  EXPECT_NEAR(last / 500, 2.0, 0.5);  // mean gap ~ 2
  // Unique sequential ids.
  EXPECT_EQ(jobs.front().job.id, 1u);
  EXPECT_EQ(jobs.back().job.id, 500u);
}

TEST(Workload, ZeroInterarrivalMeansSimultaneous) {
  core::RngStream rng(2);
  apps::BagWorkloadSpec spec;
  spec.num_jobs = 10;
  spec.mean_interarrival = 0;
  const auto jobs = apps::generate_bag(rng, spec);
  for (const auto& tj : jobs) EXPECT_DOUBLE_EQ(tj.arrival, 0.0);
}

TEST(Workload, DrawSizeDistributionMeans) {
  core::RngStream rng(3);
  const int n = 200000;
  for (auto dist : {apps::SizeDist::kConstant, apps::SizeDist::kExponential,
                    apps::SizeDist::kLognormal, apps::SizeDist::kWeibull,
                    apps::SizeDist::kPareto}) {
    apps::SizeSpec spec;
    spec.dist = dist;
    spec.mean = 500;
    spec.shape = dist == apps::SizeDist::kPareto ? 2.5 : 1.2;
    double sum = 0;
    for (int i = 0; i < n; ++i) sum += apps::draw_size(rng, spec);
    EXPECT_NEAR(sum / n, 500, 25) << apps::to_string(dist);
  }
}

TEST(Workload, DataGridZipfSkew) {
  core::RngStream rng(4);
  apps::DataGridWorkloadSpec spec;
  spec.num_jobs = 5000;
  spec.num_files = 50;
  spec.files_per_job = 1;
  spec.zipf_exponent = 1.0;
  const auto wl = apps::generate_data_grid(rng, spec);
  ASSERT_EQ(wl.files.size(), 50u);
  ASSERT_EQ(wl.jobs.size(), 5000u);
  std::map<std::string, int> counts;
  for (const auto& tj : wl.jobs) {
    ASSERT_EQ(tj.job.input_files.size(), 1u);
    ++counts[tj.job.input_files[0]];
  }
  // file0 must dominate file10 heavily under zipf(1.0).
  EXPECT_GT(counts[apps::file_lfn(0)], 3 * counts[apps::file_lfn(10)]);
}

TEST(Workload, UniformWhenZipfZero) {
  core::RngStream rng(5);
  apps::DataGridWorkloadSpec spec;
  spec.num_jobs = 6000;
  spec.num_files = 30;
  spec.zipf_exponent = 0;
  const auto wl = apps::generate_data_grid(rng, spec);
  std::map<std::string, int> counts;
  for (const auto& tj : wl.jobs) ++counts[tj.job.input_files[0]];
  for (const auto& [lfn, c] : counts) EXPECT_NEAR(c, 200, 80) << lfn;
}

TEST(Workload, ReproducibleForSeed) {
  apps::DataGridWorkloadSpec spec;
  core::RngStream a(42), b(42);
  const auto wa = apps::generate_data_grid(a, spec);
  const auto wb = apps::generate_data_grid(b, spec);
  ASSERT_EQ(wa.jobs.size(), wb.jobs.size());
  for (std::size_t i = 0; i < wa.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(wa.jobs[i].arrival, wb.jobs[i].arrival);
    EXPECT_DOUBLE_EQ(wa.jobs[i].job.ops, wb.jobs[i].job.ops);
    EXPECT_EQ(wa.jobs[i].job.input_files, wb.jobs[i].job.input_files);
  }
}

// --- activities --------------------------------------------------------

TEST(Activity, GeneratesRequestedJobs) {
  core::Engine eng;
  std::vector<hosts::Job> jobs;
  apps::ActivitySpec spec = apps::default_activity(apps::ActivityKind::kAnalysis, 25, 1.0);
  apps::run_activity(eng, spec, 3, 100, "act.test",
                     [&](hosts::SiteId origin, hosts::Job job) {
                       EXPECT_EQ(origin, 3u);
                       jobs.push_back(std::move(job));
                     });
  eng.run();
  ASSERT_EQ(jobs.size(), 25u);
  EXPECT_EQ(jobs.front().id, 100u);
  EXPECT_EQ(jobs.back().id, 124u);
  // Think times accumulate: submissions strictly increase.
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GT(jobs[i].submit_time, jobs[i - 1].submit_time);
  }
}

TEST(Activity, ProductionProducesOutput) {
  core::Engine eng;
  double output = 0;
  apps::ActivitySpec spec = apps::default_activity(apps::ActivityKind::kProduction, 5, 1.0);
  apps::run_activity(eng, spec, 0, 1, "act.prod",
                     [&](hosts::SiteId, hosts::Job job) { output += job.output_bytes; });
  eng.run();
  EXPECT_DOUBLE_EQ(output, 5 * 2e9);
}

TEST(Activity, KindsHaveDistinctScales) {
  const auto prod = apps::default_activity(apps::ActivityKind::kProduction, 1, 1.0);
  const auto ana = apps::default_activity(apps::ActivityKind::kAnalysis, 1, 1.0);
  const auto inter = apps::default_activity(apps::ActivityKind::kInteractive, 1, 1.0);
  EXPECT_GT(prod.mean_ops, ana.mean_ops);
  EXPECT_GT(ana.mean_ops, inter.mean_ops);
  EXPECT_GT(prod.output_bytes, 0);
  EXPECT_DOUBLE_EQ(inter.output_bytes, 0);
}

// --- trace round-trip ---------------------------------------------------

TEST(TraceIo, RoundTripPreservesWorkload) {
  core::RngStream rng(7);
  apps::DataGridWorkloadSpec spec;
  spec.num_jobs = 40;
  spec.num_files = 10;
  spec.files_per_job = 2;
  const auto wl = apps::generate_data_grid(rng, spec);

  const auto text = apps::workload_to_trace(wl.jobs, wl.files);
  const auto back = apps::workload_from_trace(text);

  ASSERT_EQ(back.files.size(), wl.files.size());
  for (std::size_t i = 0; i < wl.files.size(); ++i) {
    EXPECT_EQ(back.files[i].first, wl.files[i].first);
    EXPECT_NEAR(back.files[i].second, wl.files[i].second, wl.files[i].second * 1e-6);
  }
  ASSERT_EQ(back.jobs.size(), wl.jobs.size());
  for (std::size_t i = 0; i < wl.jobs.size(); ++i) {
    EXPECT_NEAR(back.jobs[i].arrival, wl.jobs[i].arrival, 1e-6);
    EXPECT_EQ(back.jobs[i].job.id, wl.jobs[i].job.id);
    EXPECT_NEAR(back.jobs[i].job.ops, wl.jobs[i].job.ops, wl.jobs[i].job.ops * 1e-6);
    EXPECT_EQ(back.jobs[i].job.input_files, wl.jobs[i].job.input_files);
  }
}

TEST(TraceIo, SkipsUnknownKinds) {
  const auto parsed = apps::workload_from_trace(
      "0 file lfn=a bytes=10\n"
      "1 monitor site=x running=1\n"
      "2 job id=1 ops=100\n");
  EXPECT_EQ(parsed.files.size(), 1u);
  EXPECT_EQ(parsed.jobs.size(), 1u);
}

TEST(TraceIo, MalformedJobThrows) {
  EXPECT_THROW(apps::workload_from_trace("1 job ops=100\n"), std::runtime_error);
  EXPECT_THROW(apps::workload_from_trace("0 file bytes=10\n"), std::runtime_error);
}
