// Pending-event-set tests: each of the five implementations must be a
// drop-in replacement for the others. The parameterized suites run every
// structure through the same workloads (the DES contract: timestamps pushed
// are never below the last popped timestamp) and compare against a
// reference ordering.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/event_queue.hpp"
#include "core/rng.hpp"

namespace core = lsds::core;

namespace {

struct PopRecord {
  double time;
  core::EventId seq;
};

std::vector<PopRecord> drain(core::EventQueue& q) {
  std::vector<PopRecord> out;
  while (!q.empty()) {
    auto ev = q.pop();
    out.push_back({ev.time, ev.seq});
  }
  return out;
}

}  // namespace

class QueueTest : public ::testing::TestWithParam<core::QueueKind> {
 protected:
  std::unique_ptr<core::EventQueue> make() { return core::make_event_queue(GetParam()); }
};

TEST_P(QueueTest, EmptyInitially) {
  auto q = make();
  EXPECT_TRUE(q->empty());
  EXPECT_EQ(q->size(), 0u);
  EXPECT_EQ(q->min_time(), core::kInfTime);
}

TEST_P(QueueTest, SingleElement) {
  auto q = make();
  q->push({3.5, 1, nullptr});
  EXPECT_EQ(q->size(), 1u);
  EXPECT_DOUBLE_EQ(q->min_time(), 3.5);
  auto ev = q->pop();
  EXPECT_DOUBLE_EQ(ev.time, 3.5);
  EXPECT_EQ(ev.seq, 1u);
  EXPECT_TRUE(q->empty());
}

TEST_P(QueueTest, PushThenPopAllSorted) {
  auto q = make();
  core::RngStream rng(12345);
  std::vector<PopRecord> expected;
  for (core::EventId i = 1; i <= 1000; ++i) {
    const double t = rng.uniform(0, 1e6);
    q->push({t, i, nullptr});
    expected.push_back({t, i});
  }
  std::sort(expected.begin(), expected.end(), [](const PopRecord& a, const PopRecord& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  });
  const auto got = drain(*q);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i].time, expected[i].time) << "at index " << i;
    EXPECT_EQ(got[i].seq, expected[i].seq) << "at index " << i;
  }
}

TEST_P(QueueTest, FifoAmongSimultaneous) {
  auto q = make();
  for (core::EventId i = 1; i <= 100; ++i) q->push({7.0, i, nullptr});
  for (core::EventId i = 1; i <= 100; ++i) {
    auto ev = q->pop();
    EXPECT_EQ(ev.seq, i);
  }
}

TEST_P(QueueTest, HoldModelNeverDecreases) {
  // Classic hold model: pop one, push one at popped_time + increment.
  auto q = make();
  core::RngStream rng(777);
  core::EventId seq = 1;
  for (int i = 0; i < 64; ++i) q->push({rng.exponential(10.0), seq++, nullptr});
  double last = -1;
  for (int i = 0; i < 20000; ++i) {
    auto ev = q->pop();
    EXPECT_GE(ev.time, last) << "non-monotonic pop at step " << i;
    last = ev.time;
    q->push({ev.time + rng.exponential(10.0), seq++, nullptr});
  }
  EXPECT_EQ(q->size(), 64u);
}

TEST_P(QueueTest, HoldModelSkewedIncrements) {
  // Heavy-tailed (Pareto) increments stress calendar bucket-width tuning
  // and ladder rung spawning.
  auto q = make();
  core::RngStream rng(4242);
  core::EventId seq = 1;
  for (int i = 0; i < 128; ++i) q->push({rng.pareto(0.01, 1.2), seq++, nullptr});
  double last = -1;
  for (int i = 0; i < 20000; ++i) {
    auto ev = q->pop();
    ASSERT_GE(ev.time, last);
    last = ev.time;
    q->push({ev.time + rng.pareto(0.01, 1.2), seq++, nullptr});
  }
}

TEST_P(QueueTest, GrowShrinkCycles) {
  auto q = make();
  core::RngStream rng(9);
  core::EventId seq = 1;
  double clock = 0;
  for (int cycle = 0; cycle < 5; ++cycle) {
    // Grow to 2000 pending, then drain to 10, always pushing >= clock.
    while (q->size() < 2000) q->push({clock + rng.exponential(1.0), seq++, nullptr});
    while (q->size() > 10) {
      auto ev = q->pop();
      ASSERT_GE(ev.time, clock);
      clock = ev.time;
    }
  }
}

TEST_P(QueueTest, SimultaneousBurstsMixedWithSpread) {
  // Many equal timestamps interleaved with spread ones (barrier-like models).
  auto q = make();
  core::RngStream rng(31337);
  core::EventId seq = 1;
  double clock = 0;
  for (int round = 0; round < 50; ++round) {
    const double barrier = clock + 1.0;
    for (int i = 0; i < 40; ++i) q->push({barrier, seq++, nullptr});
    for (int i = 0; i < 10; ++i) q->push({clock + rng.uniform(0.0, 1.0), seq++, nullptr});
    // Drain half.
    for (int i = 0; i < 25; ++i) {
      auto ev = q->pop();
      ASSERT_GE(ev.time, clock);
      clock = ev.time;
    }
  }
  // Drain rest; monotonicity holds throughout.
  double last = clock;
  while (!q->empty()) {
    auto ev = q->pop();
    ASSERT_GE(ev.time, last);
    last = ev.time;
  }
}

TEST_P(QueueTest, MinTimeMatchesPop) {
  auto q = make();
  core::RngStream rng(5150);
  core::EventId seq = 1;
  for (int i = 0; i < 300; ++i) q->push({rng.uniform(0, 100), seq++, nullptr});
  while (!q->empty()) {
    const double mt = q->min_time();
    auto ev = q->pop();
    EXPECT_DOUBLE_EQ(ev.time, mt);
  }
}

TEST_P(QueueTest, CrossImplementationEquivalence) {
  // Every structure must produce the identical pop sequence as the binary
  // heap on a randomized hold-model workload.
  auto q = make();
  auto ref = core::make_event_queue(core::QueueKind::kBinaryHeap);
  core::RngStream rng_a(2024), rng_b(2024);
  core::EventId seq = 1;
  for (int i = 0; i < 97; ++i) {
    const double t = rng_a.uniform(0, 50);
    rng_b.uniform(0, 50);
    q->push({t, seq, nullptr});
    ref->push({t, seq, nullptr});
    ++seq;
  }
  for (int i = 0; i < 5000; ++i) {
    auto a = q->pop();
    auto b = ref->pop();
    ASSERT_DOUBLE_EQ(a.time, b.time) << "step " << i;
    ASSERT_EQ(a.seq, b.seq) << "step " << i;
    const double nt = a.time + rng_a.exponential(3.0);
    rng_b.exponential(3.0);
    q->push({nt, seq, nullptr});
    ref->push({nt, seq, nullptr});
    ++seq;
  }
}

TEST_P(QueueTest, NonMonotonePushAfterPop) {
  // The windowed-run idiom: pop an event past a horizon, requeue it, then
  // schedule events EARLIER than the requeued one (e.g. cross-LP deliveries
  // at the next window boundary). The calendar queue's dequeue cursor used
  // to stay anchored on the far-future day and return events in bucket
  // order instead of time order.
  auto q = make();
  q->push({100.0, 0, nullptr});
  auto far = q->pop();
  q->push(std::move(far));      // requeue beyond the horizon
  q->push({30.0, 2, nullptr});  // earlier than the last popped priority
  q->push({21.0, 3, nullptr});
  EXPECT_DOUBLE_EQ(q->min_time(), 21.0);
  EXPECT_DOUBLE_EQ(q->pop().time, 21.0);
  EXPECT_DOUBLE_EQ(q->pop().time, 30.0);
  EXPECT_DOUBLE_EQ(q->pop().time, 100.0);
  EXPECT_TRUE(q->empty());
}

TEST_P(QueueTest, NameIsStable) {
  auto q = make();
  EXPECT_STREQ(q->name(), core::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllStructures, QueueTest, ::testing::ValuesIn(core::kAllQueueKinds),
                         [](const ::testing::TestParamInfo<core::QueueKind>& info) {
                           std::string n = core::to_string(info.param);
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });
