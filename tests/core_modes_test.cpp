// Time-driven and trace-driven DES modes, and the parallel engine.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/engine.hpp"
#include "core/parallel.hpp"
#include "core/time_driven.hpp"
#include "core/trace.hpp"

namespace core = lsds::core;

// --- time-driven ------------------------------------------------------

TEST(TimeDriven, CountsEmptyTicks) {
  core::Engine eng;
  int fired = 0;
  eng.schedule_at(2.5, [&] { ++fired; });
  eng.schedule_at(7.1, [&] { ++fired; });
  core::TimeDrivenRunner runner(eng, 1.0);
  const auto res = runner.run(10.0);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(res.ticks, 10u);
  EXPECT_EQ(res.events, 2u);
  EXPECT_EQ(res.empty_ticks, 8u);  // only ticks 3 and 8 contain events
}

TEST(TimeDriven, RejectsNonPositiveTick) {
  // Regression: tick <= 0 never advanced `t += tick_` and run() spun forever.
  core::Engine eng;
  EXPECT_THROW(core::TimeDrivenRunner(eng, 0.0), std::invalid_argument);
  EXPECT_THROW(core::TimeDrivenRunner(eng, -1.0), std::invalid_argument);
  EXPECT_THROW(core::TimeDrivenRunner(eng, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(core::TimeDrivenRunner(eng, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_NO_THROW(core::TimeDrivenRunner(eng, 1e-9));
}

TEST(TimeDriven, TickHandlersRunEveryTick) {
  core::Engine eng;
  std::vector<double> tick_times;
  core::TimeDrivenRunner runner(eng, 0.5);
  runner.add_tick_handler([&](double t) { tick_times.push_back(t); });
  runner.run(2.0);
  ASSERT_EQ(tick_times.size(), 4u);
  EXPECT_DOUBLE_EQ(tick_times[0], 0.5);
  EXPECT_DOUBLE_EQ(tick_times[3], 2.0);
}

TEST(TimeDriven, PartialFinalTick) {
  core::Engine eng;
  core::TimeDrivenRunner runner(eng, 3.0);
  const auto res = runner.run(7.0);  // ticks at 3, 6, 7(partial)
  EXPECT_EQ(res.ticks, 3u);
  EXPECT_DOUBLE_EQ(eng.now(), 7.0);
}

TEST(TimeDriven, EventDrivenDoesSameWorkWithoutTicks) {
  // The paper's efficiency claim in miniature: same model, the event-driven
  // run touches exactly 2 events while the time-driven run steps 1000 ticks.
  core::Engine ed;
  int n1 = 0;
  ed.schedule_at(2.5, [&] { ++n1; });
  ed.schedule_at(999.5, [&] { ++n1; });
  ed.run();
  EXPECT_EQ(ed.stats().executed, 2u);

  core::Engine td;
  int n2 = 0;
  td.schedule_at(2.5, [&] { ++n2; });
  td.schedule_at(999.5, [&] { ++n2; });
  core::TimeDrivenRunner runner(td, 1.0);
  const auto res = runner.run(1000.0);
  EXPECT_EQ(n2, n1);
  EXPECT_EQ(res.ticks, 1000u);
  EXPECT_GE(res.empty_ticks, 998u);
}

// --- trace-driven ---------------------------------------------------------

TEST(Trace, ParseBasic) {
  const auto events = core::TraceReader::parse_text(
      "# header comment\n"
      "0.5 job_arrival site=T1_FR cpu=1500 input=2GB\n"
      "1.25 transfer_start rate=1Gbps\n");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].time, 0.5);
  EXPECT_EQ(events[0].kind, "job_arrival");
  EXPECT_EQ(*events[0].attr("site"), "T1_FR");
  EXPECT_DOUBLE_EQ(events[0].num("cpu", 0), 1500.0);
  EXPECT_DOUBLE_EQ(events[0].size("input", 0), 2e9);
  EXPECT_DOUBLE_EQ(events[1].rate("rate", 0), 1e9 / 8);
}

TEST(Trace, MissingAttrsUseDefaults) {
  const auto events = core::TraceReader::parse_text("1 x\n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].attr("nope").has_value());
  EXPECT_DOUBLE_EQ(events[0].num("nope", 3.5), 3.5);
}

TEST(Trace, MalformedLinesThrow) {
  EXPECT_THROW(core::TraceReader::parse_text("notatime x\n"), std::runtime_error);
  EXPECT_THROW(core::TraceReader::parse_text("1.0\n"), std::runtime_error);
  EXPECT_THROW(core::TraceReader::parse_text("1.0 kind badattr\n"), std::runtime_error);
}

TEST(Trace, WriterReaderRoundTrip) {
  std::ostringstream out;
  core::TraceWriter w(out);
  w.write_comment("round trip");
  core::TraceEvent ev;
  ev.time = 12.5;
  ev.kind = "sample";
  ev.attrs = {{"site", "T0"}, {"util", "0.85"}};
  w.write(ev);
  const auto back = core::TraceReader::parse_text(out.str());
  ASSERT_EQ(back.size(), 1u);
  EXPECT_DOUBLE_EQ(back[0].time, 12.5);
  EXPECT_EQ(back[0].kind, "sample");
  EXPECT_EQ(*back[0].attr("site"), "T0");
  EXPECT_DOUBLE_EQ(back[0].num("util", 0), 0.85);
}

TEST(Trace, DriverDispatchesAtTraceTimes) {
  core::Engine eng;
  const auto events = core::TraceReader::parse_text(
      "1 a\n"
      "2 b\n"
      "5 c\n");
  std::vector<std::pair<double, std::string>> seen;
  core::TraceDriver driver(eng, events, [&](const core::TraceEvent& ev) {
    seen.emplace_back(eng.now(), ev.kind);
  });
  driver.arm();
  eng.run();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<double, std::string>{1.0, "a"}));
  EXPECT_EQ(seen[2], (std::pair<double, std::string>{5.0, "c"}));
}

TEST(Trace, UnsortedTraceRejected) {
  core::Engine eng;
  const auto events = core::TraceReader::parse_text("2 a\n1 b\n");
  EXPECT_THROW(core::TraceDriver(eng, events, [](const core::TraceEvent&) {}),
               std::runtime_error);
}

// --- parallel engine -------------------------------------------------------

namespace {

// PHOLD-like workload: each LP starts `pop` messages; every message hop picks
// a destination LP from the LP's own RNG and reschedules at
// now + lookahead + exp(mean). Returns total events executed per LP.
std::vector<std::uint64_t> run_phold(unsigned num_lps, unsigned num_threads, double t_end,
                                     std::uint64_t seed) {
  core::ParallelEngine::Config cfg;
  cfg.num_lps = num_lps;
  cfg.num_threads = num_threads;
  cfg.lookahead = 1.0;
  cfg.seed = seed;
  core::ParallelEngine eng(cfg);

  // Hop closure: must be copyable and self-scheduling.
  std::function<void(unsigned)> hop = [&](unsigned lp_idx) {
    auto& lp = eng.lp(lp_idx);
    const auto dst = static_cast<unsigned>(lp.rng().uniform_int(0, num_lps - 1));
    const double t = lp.now() + cfg.lookahead + lp.rng().exponential(0.5);
    if (dst == lp_idx) {
      lp.schedule_at(t, [&hop, dst] { hop(dst); });
    } else {
      lp.send(dst, t, [&hop, dst] { hop(dst); });
    }
  };
  for (unsigned i = 0; i < num_lps; ++i) {
    for (int m = 0; m < 4; ++m) {
      eng.lp(i).schedule_at(0.0, [&hop, i] { hop(i); });
    }
  }
  eng.run_until(t_end);
  std::vector<std::uint64_t> out;
  for (unsigned i = 0; i < num_lps; ++i) out.push_back(eng.lp(i).events_executed());
  return out;
}

}  // namespace

TEST(ParallelEngine, RunsToHorizon) {
  const auto counts = run_phold(4, 2, 100.0, 7);
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  // 16 messages, one hop per ~1.5s each, 100s horizon: ~1000 events.
  EXPECT_GT(total, 500u);
  EXPECT_LT(total, 2000u);
}

TEST(ParallelEngine, DeterministicAcrossThreadCounts) {
  // The whole point of the deterministic merge: thread count must not change
  // the simulation outcome.
  const auto a = run_phold(4, 1, 50.0, 99);
  const auto b = run_phold(4, 2, 50.0, 99);
  const auto c = run_phold(4, 4, 50.0, 99);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(ParallelEngine, SeedChangesOutcome) {
  const auto a = run_phold(4, 2, 50.0, 1);
  const auto b = run_phold(4, 2, 50.0, 2);
  EXPECT_NE(a, b);
}

TEST(ParallelEngine, LookaheadViolationsClampedAndCounted) {
  core::ParallelEngine::Config cfg;
  cfg.num_lps = 2;
  cfg.num_threads = 1;
  cfg.lookahead = 5.0;
  core::ParallelEngine eng(cfg);
  double delivered_at = -1;
  eng.lp(0).schedule_at(0.0, [&] {
    // Attempt to deliver "immediately": violates the 5s lookahead.
    eng.lp(0).send(1, 0.1, [&] { delivered_at = eng.lp(1).now(); });
  });
  const auto stats = eng.run_until(20.0);
  EXPECT_EQ(stats.lookahead_violations, 1u);
  EXPECT_GE(delivered_at, 5.0);  // clamped to the window boundary
  EXPECT_EQ(stats.past_clamped, 0u);
}

TEST(ParallelEngine, StopsWhenDrained) {
  core::ParallelEngine::Config cfg;
  cfg.num_lps = 2;
  cfg.num_threads = 2;
  cfg.lookahead = 1.0;
  core::ParallelEngine eng(cfg);
  int count = 0;
  eng.lp(0).schedule_at(0.5, [&] { ++count; });
  eng.lp(1).schedule_at(1.5, [&] { ++count; });
  const auto stats = eng.run_until(1e9);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(stats.events, 2u);
  EXPECT_LT(stats.windows, 10u);  // terminates early, not at the horizon
  EXPECT_EQ(stats.past_clamped, 0u);
}

TEST(ParallelEngine, CrossMessagesCounted) {
  core::ParallelEngine::Config cfg;
  cfg.num_lps = 2;
  cfg.num_threads = 1;
  cfg.lookahead = 1.0;
  core::ParallelEngine eng(cfg);
  int received = 0;
  eng.lp(0).schedule_at(0.0, [&] {
    for (int i = 0; i < 5; ++i) {
      eng.lp(0).send(1, 2.0 + i, [&] { ++received; });
    }
  });
  const auto stats = eng.run_until(100.0);
  EXPECT_EQ(received, 5);
  EXPECT_EQ(stats.cross_messages, 5u);
  EXPECT_EQ(stats.past_clamped, 0u);
}

TEST(ParallelEngine, PastSchedulesClampedAndCounted) {
  core::ParallelEngine::Config cfg;
  cfg.num_lps = 2;
  cfg.num_threads = 1;
  cfg.lookahead = 1.0;
  core::ParallelEngine eng(cfg);
  double ran_at = -1;
  eng.lp(0).schedule_at(5.0, [&] {
    // Schedule into the LP's own past: clamped to now, counted in stats.
    eng.lp(0).schedule_at(2.0, [&] { ran_at = eng.lp(0).now(); });
  });
  const auto stats = eng.run_until(10.0);
  EXPECT_EQ(stats.past_clamped, 1u);
  EXPECT_DOUBLE_EQ(ran_at, 5.0);
}

TEST(ParallelEngine, HostedEnginesCountPastClamps) {
  core::ParallelEngine::Config cfg;
  cfg.num_lps = 2;
  cfg.num_threads = 2;
  cfg.lookahead = 1.0;
  cfg.hosted_engines = true;
  core::ParallelEngine eng(cfg);
  ASSERT_NE(eng.lp(0).engine(), nullptr);
  int ran = 0;
  eng.lp(0).schedule_at(3.0, [&] {
    eng.lp(0).schedule_at(1.0, [&] { ++ran; });  // past: clamped by the engine
    eng.lp(0).send(1, 10.0, [&] { ++ran; });
  });
  const auto stats = eng.run_until(20.0);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(stats.past_clamped, 1u);
  EXPECT_EQ(stats.cross_messages, 1u);
  EXPECT_EQ(stats.events, 3u);
}

TEST(ParallelEngine, PerLpEventCountsSumToTotal) {
  core::ParallelEngine::Config cfg;
  cfg.num_lps = 3;
  cfg.num_threads = 2;
  cfg.lookahead = 1.0;
  core::ParallelEngine eng(cfg);
  for (unsigned i = 0; i < 3; ++i) {
    for (int k = 0; k <= static_cast<int>(i); ++k) {
      eng.lp(i).schedule_at(0.5 + k, [] {});
    }
  }
  const auto stats = eng.run_until(10.0);
  ASSERT_EQ(stats.per_lp_events.size(), 3u);
  EXPECT_EQ(stats.per_lp_events[0], 1u);
  EXPECT_EQ(stats.per_lp_events[1], 2u);
  EXPECT_EQ(stats.per_lp_events[2], 3u);
  EXPECT_EQ(stats.events, 6u);
}

// --- cross-LP message path property test ------------------------------------
//
// Randomized sends fuzzed across window boundaries. Invariants:
//   1. a message intended for time t executes at exactly t when t clears the
//      current window, and strictly later (the clamp) when it does not —
//      lookahead_violations counts EXACTLY the clamped sends;
//   2. same-timestamp deliveries at one LP execute in (src_lp, src_seq)
//      order — the deterministic merge;
//   3. the whole observation log is invariant across worker thread counts.

namespace {

struct Delivery {
  double exec_time;
  double intended;
  unsigned src;
  int seq;
  bool operator==(const Delivery& o) const {
    return exec_time == o.exec_time && intended == o.intended && src == o.src && seq == o.seq;
  }
};

std::vector<Delivery> run_fuzzed_cross_sends(unsigned num_threads, std::uint64_t seed) {
  constexpr unsigned kSenders = 3;
  constexpr int kSendsEach = 50;
  core::ParallelEngine::Config cfg;
  cfg.num_lps = kSenders + 1;  // LP 0 receives, LPs 1..kSenders send
  cfg.num_threads = num_threads;
  cfg.lookahead = 2.0;
  core::ParallelEngine eng(cfg);

  // Pre-drawn plan (identical for every thread count): each sender fires at
  // a random time and targets a random intended delivery time around its own
  // clock — before, inside and beyond the 2.0 s window, all three cases.
  struct Planned {
    double fire_at;
    double intended;
  };
  core::RngStream rng(seed);
  std::vector<std::vector<Planned>> plan(kSenders);
  for (auto& sends : plan) {
    for (int i = 0; i < kSendsEach; ++i) {
      const double fire = rng.uniform(0.0, 40.0);
      sends.push_back({fire, fire + rng.uniform(-1.0, 6.0)});
    }
  }

  std::vector<Delivery> log;
  // Per-sender send counter, stamped when the send is issued — this mirrors
  // the src_seq the deterministic merge orders by. Each slot is only ever
  // touched by its own LP.
  std::vector<int> sends_issued(kSenders + 1, 0);
  for (unsigned s = 0; s < kSenders; ++s) {
    for (int i = 0; i < kSendsEach; ++i) {
      const Planned& p = plan[s][i];
      const unsigned src_lp = s + 1;
      eng.lp(src_lp).schedule_at(p.fire_at, [&eng, &log, &sends_issued, p, src_lp] {
        const int seq = sends_issued[src_lp]++;
        eng.lp(src_lp).send(0, p.intended, [&eng, &log, p, src_lp, seq] {
          log.push_back({eng.lp(0).now(), p.intended, src_lp, seq});
        });
      });
    }
  }
  const auto stats = eng.run_until(100.0);
  EXPECT_EQ(log.size(), static_cast<std::size_t>(kSenders) * kSendsEach);
  EXPECT_EQ(stats.past_clamped, 0u);

  // Invariant 1: violations == exactly the sends observed later than asked.
  std::uint64_t clamped = 0;
  for (const auto& d : log) {
    EXPECT_GE(d.exec_time, d.intended);
    if (d.exec_time > d.intended) ++clamped;
  }
  EXPECT_EQ(stats.lookahead_violations, clamped);
  EXPECT_GT(clamped, 0u) << "fuzz plan never crossed a window boundary";
  EXPECT_LT(clamped, static_cast<std::uint64_t>(kSenders) * kSendsEach)
      << "fuzz plan never cleared a window boundary";

  // Invariant 2: equal-time deliveries are merged in (src_lp, src_seq)
  // order. Equal execution times only arise within one delivery batch (a
  // later window's boundary is strictly larger, and unclamped intended
  // times are continuous draws), so the full lexicographic order applies.
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].exec_time, log[i].exec_time);
    if (log[i - 1].exec_time == log[i].exec_time) {
      EXPECT_TRUE(log[i - 1].src < log[i].src ||
                  (log[i - 1].src == log[i].src && log[i - 1].seq < log[i].seq))
          << "merge order violated at log index " << i << ": prev(t=" << log[i - 1].exec_time
          << " intended=" << log[i - 1].intended << " src=" << log[i - 1].src
          << " seq=" << log[i - 1].seq << ") cur(t=" << log[i].exec_time
          << " intended=" << log[i].intended << " src=" << log[i].src
          << " seq=" << log[i].seq << ")";
    }
  }
  return log;
}

}  // namespace

TEST(ParallelEngine, FuzzedCrossSendsClampedSortedAndThreadInvariant) {
  for (std::uint64_t seed : {11u, 23u, 47u}) {
    const auto one = run_fuzzed_cross_sends(1, seed);
    const auto two = run_fuzzed_cross_sends(2, seed);
    const auto four = run_fuzzed_cross_sends(4, seed);
    EXPECT_EQ(one, two) << "seed " << seed;
    EXPECT_EQ(one, four) << "seed " << seed;
  }
}

TEST(ParallelEngine, EventBudgetThrowsInRawMode) {
  core::ParallelEngine::Config cfg;
  cfg.num_lps = 2;
  cfg.num_threads = 2;
  cfg.lookahead = 1.0;
  cfg.max_events = 50;
  core::ParallelEngine eng(cfg);
  // LP 1 spins on zero-delay self-rescheduling (the model bug the watchdog
  // exists for); LP 0 stays honest.
  std::function<void()> spin = [&] { eng.lp(1).schedule_in(0, spin); };
  eng.lp(1).schedule_at(0, spin);
  eng.lp(0).schedule_at(0.5, [] {});
  EXPECT_THROW(eng.run_until(10.0), core::EventBudgetExceeded);
}

TEST(ParallelEngine, EventBudgetThrowsInHostedMode) {
  core::ParallelEngine::Config cfg;
  cfg.num_lps = 2;
  cfg.num_threads = 2;
  cfg.lookahead = 1.0;
  cfg.hosted_engines = true;
  cfg.max_events = 50;
  core::ParallelEngine eng(cfg);
  core::Engine* lp1 = eng.lp(1).engine();
  std::function<void()> spin = [&, lp1] { lp1->schedule_in(0, spin); };
  lp1->schedule_at(0, spin);
  eng.lp(0).engine()->schedule_at(0.5, [] {});
  EXPECT_THROW(eng.run_until(10.0), core::EventBudgetExceeded);
}

TEST(ParallelEngine, EventBudgetZeroMeansUnlimited) {
  core::ParallelEngine::Config cfg;
  cfg.num_lps = 2;
  cfg.num_threads = 2;
  cfg.lookahead = 1.0;
  core::ParallelEngine eng(cfg);
  int n = 0;
  for (int i = 0; i < 200; ++i) eng.lp(i % 2).schedule_at(0.1 * i, [&n] { ++n; });
  EXPECT_NO_THROW(eng.run_until(100.0));
  EXPECT_EQ(n, 200);
}

TEST(ParallelEngine, HonestModelsUnderBudgetUnaffected) {
  core::ParallelEngine::Config cfg;
  cfg.num_lps = 2;
  cfg.num_threads = 2;
  cfg.lookahead = 1.0;
  cfg.max_events = 1000;
  core::ParallelEngine eng(cfg);
  int n = 0;
  for (int i = 0; i < 100; ++i) eng.lp(i % 2).schedule_at(0.1 * i, [&n] { ++n; });
  const auto stats = eng.run_until(100.0);
  EXPECT_EQ(n, 100);
  EXPECT_EQ(stats.events, 100u);
}
