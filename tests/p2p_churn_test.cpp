// Million-peer-scale P2P machinery at unit-test scale: the RingIndex
// ordered-ring structure against a std::map reference, slot reuse and
// generation counters under churn, lookup failure when peers die with
// lookups in flight, the lifetime churn drivers, the bounded Gnutella
// query table, and cross-queue-kind determinism (trace + state digest) of
// the whole protocol+churn+traffic stack.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "core/engine.hpp"
#include "core/hash.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "net/zone.hpp"
#include "p2p/chord.hpp"
#include "p2p/churn.hpp"
#include "p2p/gnutella.hpp"
#include "p2p/ring_index.hpp"

namespace core = lsds::core;
namespace net = lsds::net;
namespace p2p = lsds::p2p;

namespace {

struct P2pWorld {
  core::Engine eng;
  net::Topology topo;
  std::unique_ptr<net::Routing> routing;

  explicit P2pWorld(std::size_t n, core::QueueKind q = core::QueueKind::kBinaryHeap) : eng({.queue = q, .seed = 5}) {
    core::RngStream rng(17);
    topo = net::Topology::random_connected(n, n / 2, 1e8, 0.005, rng);
    routing = std::make_unique<net::Routing>(topo);
  }
};

}  // namespace

// --- RingIndex ------------------------------------------------------------

TEST(RingIndex, MatchesMapReferenceUnderChurn) {
  const std::uint32_t m = 16;  // small id space: plenty of wrap cases
  const std::uint64_t mask = (1ull << m) - 1;
  p2p::RingIndex ring(m);
  std::map<std::uint64_t, std::uint32_t> ref;
  core::RngStream rng(123);

  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t id = rng.next_u64() & mask;
    if (rng.uniform() < 0.6) {
      if (!ref.count(id)) {
        const auto slot = static_cast<std::uint32_t>(step);
        ring.insert(id, slot);
        ref[id] = slot;
      }
      EXPECT_TRUE(ring.contains(id));
    } else {
      EXPECT_EQ(ring.erase(id), ref.erase(id) > 0);
    }
    ASSERT_EQ(ring.size(), ref.size());
    if (ref.empty()) continue;

    // successor(key) == lower_bound with wrap, on a random probe.
    const std::uint64_t key = rng.next_u64() & mask;
    auto it = ref.lower_bound(key);
    if (it == ref.end()) it = ref.begin();
    const auto got = ring.successor(key);
    EXPECT_EQ(got.id, it->first);
    EXPECT_EQ(got.slot, it->second);
  }

  // Iteration order must equal std::map's (ascending id) — protocol-mode
  // rng draw order rides on this.
  std::vector<std::uint64_t> order;
  ring.for_each([&](std::uint64_t id, std::uint32_t) { order.push_back(id); });
  std::vector<std::uint64_t> expect;
  for (const auto& [id, slot] : ref) expect.push_back(id);
  EXPECT_EQ(order, expect);
}

// --- slot reuse & generations ----------------------------------------------

TEST(ChordChurnState, SlotsAreRecycledAndIdsStayUnique) {
  P2pWorld w(64);
  p2p::ChordNetwork chord(w.eng, *w.routing);
  std::vector<p2p::PeerIndex> peers;
  for (std::size_t i = 0; i < 64; ++i) peers.push_back(chord.add_peer(static_cast<net::NodeId>(i)));

  // Kill every odd peer, then add the same number back: the table must not
  // grow — all newcomers land in recycled slots with fresh generations.
  std::vector<std::uint32_t> old_gen;
  for (std::size_t i = 1; i < 64; i += 2) {
    old_gen.push_back(chord.generation(peers[i]));
    chord.remove_peer(peers[i]);
  }
  EXPECT_EQ(chord.size(), 32u);
  const std::size_t slots_before = chord.slot_count();
  for (std::size_t i = 0; i < 32; ++i) chord.add_peer(static_cast<net::NodeId>(i));
  EXPECT_EQ(chord.slot_count(), slots_before);  // pure reuse, no growth
  EXPECT_EQ(chord.size(), 64u);

  // Ids unique across the live ring; generations bumped on the dead slots.
  std::set<p2p::ChordId> ids;
  chord.for_each_live([&](p2p::PeerIndex p) { ids.insert(chord.id_of(p)); });
  EXPECT_EQ(ids.size(), 64u);

  chord.build();
  bool done = false;
  chord.lookup(0, chord.hash_key("after-reuse"), [&](const auto& r) {
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.home, chord.responsible_peer(chord.hash_key("after-reuse")));
    done = true;
  });
  w.eng.run();
  EXPECT_TRUE(done);
}

TEST(ChordChurnState, RemoveDeadPeerThrows) {
  P2pWorld w(4);
  p2p::ChordNetwork chord(w.eng, *w.routing);
  const auto p0 = chord.add_peer(0);
  chord.add_peer(1);
  chord.remove_peer(p0);
  EXPECT_THROW(chord.remove_peer(p0), std::invalid_argument);
  EXPECT_THROW(chord.fail_peer(p0), std::invalid_argument);
  EXPECT_THROW(chord.remove_peer(999), std::invalid_argument);
}

TEST(ChordChurnState, ConstructorRejectsBadWidth) {
  P2pWorld w(2);
  EXPECT_THROW(p2p::ChordNetwork(w.eng, *w.routing, 0), std::invalid_argument);
  EXPECT_THROW(p2p::ChordNetwork(w.eng, *w.routing, 64), std::invalid_argument);
}

// --- satellite: protocol-mode argument validation ---------------------------

TEST(ChordProtocolValidation, RejectsBadStabilizePeriodAndHorizon) {
  P2pWorld w(8);
  p2p::ChordNetwork chord(w.eng, *w.routing);
  for (std::size_t i = 0; i < 8; ++i) chord.add_peer(static_cast<net::NodeId>(i));
  chord.build();
  EXPECT_THROW(chord.enable_protocol_mode(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(chord.enable_protocol_mode(-1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(chord.enable_protocol_mode(std::nan(""), 10.0), std::invalid_argument);
  EXPECT_THROW(chord.enable_protocol_mode(std::numeric_limits<double>::infinity(), 10.0),
               std::invalid_argument);
  EXPECT_THROW(chord.enable_protocol_mode(1.0, std::nan("")), std::invalid_argument);
  EXPECT_THROW(chord.enable_protocol_mode(1.0, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  // Valid arguments still work afterwards.
  chord.enable_protocol_mode(1.0, 5.0);
  w.eng.run();
  EXPECT_GT(chord.stabilize_rounds(), 0u);
}

TEST(ChurnSpecValidation, RejectsBadParameters) {
  p2p::ChurnSpec s;
  s.horizon = 10;
  s.validate();  // baseline OK
  p2p::ChurnSpec bad = s;
  bad.mean_lifetime = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = s;
  bad.mean_downtime = -1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = s;
  bad.lifetime_model = p2p::ChurnSpec::Lifetime::kWeibull;
  bad.weibull_shape = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = s;
  bad.horizon = std::numeric_limits<double>::infinity();
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  p2p::TrafficSpec t;
  t.horizon = 10;
  t.validate();
  t.rate = 0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(ChurnSpecValidation, WeibullScaleMatchesMean) {
  p2p::ChurnSpec s;
  s.lifetime_model = p2p::ChurnSpec::Lifetime::kWeibull;
  s.mean_lifetime = 120;
  s.weibull_shape = 1.5;
  // scale * Gamma(1 + 1/shape) == mean.
  EXPECT_NEAR(s.weibull_scale() * std::tgamma(1.0 + 1.0 / 1.5), 120.0, 1e-9);
}

// --- satellite: churn during in-flight lookups ------------------------------

// A peer on the forwarding path dies while lookups are in flight: the
// documented behavior is no crash and ok=false for affected lookups — and
// the outcome must be identical under every queue kind.
TEST(ChordInFlightChurn, LookupsFailCleanlyAndDeterministically) {
  std::vector<std::uint64_t> outcomes;
  for (core::QueueKind q : core::kAllQueueKinds) {
    P2pWorld w(64, q);
    p2p::ChordNetwork chord(w.eng, *w.routing);
    std::vector<p2p::PeerIndex> peers;
    for (std::size_t i = 0; i < 64; ++i)
      peers.push_back(chord.add_peer(static_cast<net::NodeId>(i)));
    chord.build();

    // Issue lookups from a spread of surviving origins, then kill a swath
    // of the ring at a time when all of them are still being forwarded
    // (every route latency exceeds 0.004).
    int ok = 0, fail = 0, total = 0;
    auto& rng = w.eng.rng("keys");
    for (int i = 0; i < 200; ++i) {
      const p2p::ChordId key = rng.next_u64() & chord.id_mask();
      ++total;
      chord.lookup(static_cast<std::size_t>(i) % 8, key,
                   [&](const p2p::ChordNetwork::LookupResult& r) { r.ok ? ++ok : ++fail; });
    }
    w.eng.schedule_at(0.004, [&] {
      for (std::size_t i = 8; i < 24; ++i) chord.fail_peer(peers[i]);
    });
    w.eng.run();

    EXPECT_EQ(ok + fail, total);  // every lookup resolved exactly once
    EXPECT_GT(fail, 0);           // the churn actually bit
    EXPECT_GT(ok, 0);             // and didn't take everything down
    EXPECT_EQ(chord.lookups_in_flight(), 0u);
    outcomes.push_back((static_cast<std::uint64_t>(ok) << 32) |
                       static_cast<std::uint64_t>(fail));
  }
  for (std::size_t i = 1; i < outcomes.size(); ++i) EXPECT_EQ(outcomes[i], outcomes[0]);
}

TEST(ChordInFlightChurn, LookupFromDeadPeerFailsImmediately) {
  P2pWorld w(8);
  p2p::ChordNetwork chord(w.eng, *w.routing);
  std::vector<p2p::PeerIndex> peers;
  for (std::size_t i = 0; i < 8; ++i) peers.push_back(chord.add_peer(static_cast<net::NodeId>(i)));
  chord.build();
  chord.remove_peer(peers[3]);
  bool done = false;
  chord.lookup(peers[3], 42, [&](const auto& r) {
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.hops, 0u);
    done = true;
  });
  EXPECT_TRUE(done);  // resolved synchronously
}

// --- cross-queue-kind determinism of the full churn stack -------------------

namespace {

struct ChurnRunResult {
  std::uint64_t trace_hash = 0;
  std::uint64_t digest = 0;
  std::uint64_t issued = 0;
  std::uint64_t failed = 0;
  std::uint64_t deaths = 0;
  std::uint64_t rebirths = 0;
};

ChurnRunResult run_chord_churn_scenario(core::QueueKind q) {
  core::Engine eng({.queue = q, .seed = 42});
  net::ZoneTree tree;
  for (int s = 0; s < 4; ++s) {
    net::ClusterSpec spec;
    spec.hosts = 64;
    spec.host_bandwidth = 1e8;
    spec.host_latency = 0.002;
    spec.backbone_bandwidth = 1e10;
    spec.backbone_latency = 0.01;
    tree.add_child(std::make_unique<net::ClusterZone>(spec), 1e10, 0.01);
  }
  net::ZoneRouting routing(tree);

  core::StateHash trace;
  eng.set_trace_hook([&](double t, core::EventId id) {
    trace.mix(t);
    trace.mix(std::uint64_t{id});
  });

  p2p::ChordNetwork chord(eng, routing, 32);
  for (std::size_t i = 0; i < 256; ++i) chord.add_peer(tree.host(i));
  chord.build();
  chord.enable_protocol_mode(2.0, 30.0);

  p2p::ChurnSpec cs;
  cs.lifetime_model = p2p::ChurnSpec::Lifetime::kWeibull;
  cs.mean_lifetime = 40;
  cs.weibull_shape = 1.5;
  cs.mean_downtime = 5;
  cs.horizon = 30.0;
  p2p::ChordChurn churn(eng, chord, cs);

  p2p::TrafficSpec ts;
  ts.rate = 50;
  ts.horizon = 30.0;
  p2p::ChordLookupTraffic traffic(eng, chord, ts);

  churn.start();
  traffic.start();
  eng.run();

  ChurnRunResult r;
  r.trace_hash = trace.value();
  r.digest = chord.state_digest();
  r.issued = traffic.issued();
  r.failed = traffic.failed();
  r.deaths = churn.deaths();
  r.rebirths = churn.rebirths();
  return r;
}

}  // namespace

TEST(ChurnDeterminism, ChordStackIdenticalAcrossAllQueueKinds) {
  const ChurnRunResult ref = run_chord_churn_scenario(core::QueueKind::kSortedList);
  EXPECT_GT(ref.issued, 0u);
  EXPECT_GT(ref.deaths, 0u);
  EXPECT_GT(ref.rebirths, 0u);
  for (core::QueueKind q : core::kAllQueueKinds) {
    if (q == core::QueueKind::kSortedList) continue;
    const ChurnRunResult r = run_chord_churn_scenario(q);
    EXPECT_EQ(r.trace_hash, ref.trace_hash) << "queue kind " << static_cast<int>(q);
    EXPECT_EQ(r.digest, ref.digest) << "queue kind " << static_cast<int>(q);
    EXPECT_EQ(r.issued, ref.issued);
    EXPECT_EQ(r.failed, ref.failed);
    EXPECT_EQ(r.deaths, ref.deaths);
    EXPECT_EQ(r.rebirths, ref.rebirths);
  }
}

// --- satellite: bounded Gnutella query table --------------------------------

TEST(GnutellaQueryTable, StaysBoundedUnderSustainedTraffic) {
  P2pWorld w(64);
  p2p::GnutellaNetwork g(w.eng, *w.routing);
  for (std::size_t i = 0; i < 64; ++i) g.add_peer(static_cast<net::NodeId>(i));
  g.build_random_overlay(4, w.eng.rng("overlay"));
  g.place_object(40, "needle");

  // 500 searches staggered so a bounded number overlap: the slot pool must
  // top out near the overlap width, far below the cumulative count.
  const int kSearches = 500;
  int done = 0;
  for (int i = 0; i < kSearches; ++i) {
    w.eng.schedule_at(0.01 * i, [&, i] {
      g.search(static_cast<std::size_t>(i) % 64, "needle", 5, [&](const auto&) { ++done; });
    });
  }
  w.eng.run();

  EXPECT_EQ(done, kSearches);                      // every flood drained + reported
  EXPECT_EQ(g.searches_in_flight(), 0u);           // nothing leaked in flight
  EXPECT_LT(g.query_table_capacity(), 64u);        // bounded by peak overlap,
  EXPECT_GE(g.query_table_capacity(), 1u);         // not by cumulative traffic
}

TEST(GnutellaChurnState, RemoveUnlinksNeighborsAndRecyclesSlots) {
  P2pWorld w(32);
  p2p::GnutellaNetwork g(w.eng, *w.routing);
  for (std::size_t i = 0; i < 32; ++i) g.add_peer(static_cast<net::NodeId>(i));
  g.build_random_overlay(4, w.eng.rng("overlay"));

  const std::size_t victim = 7;
  g.remove_peer(victim);
  EXPECT_FALSE(g.is_live(victim));
  EXPECT_THROW(g.remove_peer(victim), std::invalid_argument);
  for (std::size_t i = 0; i < 32; ++i) {
    if (!g.is_live(i)) continue;
    // no live peer may still point at the corpse
    for (std::size_t k = 0; k < g.degree_of(i); ++k) EXPECT_NE(g.neighbor(i, k), victim);
  }
  const std::size_t slots = g.slot_count();
  const auto back = g.add_peer(static_cast<net::NodeId>(victim));  // rebirth on the vacated node
  EXPECT_EQ(back, victim);          // slot recycled
  EXPECT_EQ(g.slot_count(), slots); // no growth
  g.connect_random(back, 4, w.eng.rng("rewire"));
  EXPECT_GE(g.degree_of(back), 1u);

  // A search started after the rewire floods the whole overlay again.
  g.place_object(back, "obj");
  bool found = false;
  g.search(0, "obj", 10, [&](const auto& r) { found = r.found; });
  w.eng.run();
  EXPECT_TRUE(found);
}

TEST(GnutellaChurnState, FloodSurvivesMidFlightDeaths) {
  std::vector<std::uint64_t> outcomes;
  for (core::QueueKind q : core::kAllQueueKinds) {
    P2pWorld w(64, q);
    p2p::GnutellaNetwork g(w.eng, *w.routing);
    for (std::size_t i = 0; i < 64; ++i) g.add_peer(static_cast<net::NodeId>(i));
    g.build_random_overlay(4, w.eng.rng("overlay"));
    g.place_object(60, "needle");

    int done = 0, found = 0;
    g.search(0, "needle", 12, [&](const auto& r) {
      ++done;
      found += r.found ? 1 : 0;
    });
    w.eng.schedule_at(0.003, [&] {
      for (std::size_t i = 10; i < 30; ++i) {
        if (g.is_live(i)) g.remove_peer(i);
      }
    });
    w.eng.run();
    EXPECT_EQ(done, 1);  // the flood drained despite losing frontier
    EXPECT_EQ(g.searches_in_flight(), 0u);
    outcomes.push_back(static_cast<std::uint64_t>(found) ^ (g.state_digest() << 1));
  }
  for (std::size_t i = 1; i < outcomes.size(); ++i) EXPECT_EQ(outcomes[i], outcomes[0]);
}

// --- Gnutella churn driver --------------------------------------------------

TEST(GnutellaChurnDriver, DrivesDeathsAndRebirthsDeterministically) {
  auto run = [](core::QueueKind q) {
    core::Engine eng({.queue = q, .seed = 9});
    net::ZoneTree tree;
    net::ClusterSpec spec;
    spec.hosts = 128;
    spec.host_bandwidth = 1e8;
    spec.host_latency = 0.002;
    spec.backbone_bandwidth = 1e10;
    spec.backbone_latency = 0.01;
    tree.add_child(std::make_unique<net::ClusterZone>(spec), 1e10, 0.01);
    net::ZoneRouting routing(tree);

    p2p::GnutellaNetwork g(eng, routing);
    for (std::size_t i = 0; i < 128; ++i) g.add_peer(tree.host(i));
    g.build_random_overlay(4, eng.rng("overlay"));

    std::vector<std::uint64_t> catalog;
    for (int i = 0; i < 8; ++i) {
      const std::string name = "obj-" + std::to_string(i);
      g.place_object(static_cast<std::size_t>(i) * 16, name);
      catalog.push_back(p2p::GnutellaNetwork::hash_name(name));
    }

    p2p::ChurnSpec cs;
    cs.mean_lifetime = 20;
    cs.mean_downtime = 4;
    cs.horizon = 20.0;
    p2p::GnutellaChurn churn(eng, g, cs, 4);
    p2p::TrafficSpec ts;
    ts.rate = 20;
    ts.ttl = 6;
    ts.horizon = 20.0;
    p2p::GnutellaSearchTraffic traffic(eng, g, ts, catalog);

    churn.start();
    traffic.start();
    eng.run();

    EXPECT_GT(churn.deaths(), 0u);
    EXPECT_GT(traffic.issued(), 0u);
    EXPECT_EQ(g.searches_in_flight(), 0u);
    core::StateHash h;
    h.mix(g.state_digest());
    h.mix(churn.deaths());
    h.mix(churn.rebirths());
    h.mix(traffic.issued());
    h.mix(traffic.found());
    return h.value();
  };
  const std::uint64_t ref = run(core::QueueKind::kSortedList);
  for (core::QueueKind q : core::kAllQueueKinds) {
    if (q == core::QueueKind::kSortedList) continue;
    EXPECT_EQ(run(q), ref) << "queue kind " << static_cast<int>(q);
  }
}
