// Differential suite for storage as a first-class shared resource.
//
// Contract under test, three layers deep:
//   1. FIFO mode is the pre-resource-API model, locked byte-identical:
//      busy-until closed forms, no solver registration, no endpoint binder
//      — a pure-FIFO grid leaves its FlowNetwork untouched.
//   2. MaxMin mode registers disk heads as solver capacity resources: N
//      concurrent readers max-min share the head; a network transfer whose
//      endpoints are max-min devices is jointly constrained by `source read
//      head + route links + destination write head` in ONE solve, and the
//      incremental (dirty-component) solver must stay byte-identical to the
//      full reference solver under disk+link churn — fuzzed across all five
//      event-queue kinds, including runtime set_resource_capacity changes.
//   3. The layers above see it: ParallelGrid attaches each site's heads to
//      its owner LP's network only; the replica catalog prefers same-zone
//      sources (rank before cost) with ascending-site-id tie-break; the
//      MONARC facade's fifo-vs-maxmin A/B shows staging contention.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "core/engine.hpp"
#include "core/rng.hpp"
#include "hosts/parallel_grid.hpp"
#include "hosts/site.hpp"
#include "hosts/storage.hpp"
#include "middleware/replica_catalog.hpp"
#include "net/flow.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "net/zone.hpp"
#include "sim/monarc/monarc.hpp"

namespace core = lsds::core;
namespace net = lsds::net;
namespace hosts = lsds::hosts;
namespace mw = lsds::middleware;

using hosts::StorageSharing;

namespace {

std::uint64_t bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// A one-node world: enough routing for pure-device I/O (start_io never
// routes).
struct DeviceWorld {
  DeviceWorld() {
    topo.add_node("h");
    routing = std::make_unique<net::Routing>(topo);
    fnet = std::make_unique<net::FlowNetwork>(eng, *routing);
  }
  core::Engine eng;
  net::Topology topo;
  std::unique_ptr<net::Routing> routing;
  std::unique_ptr<net::FlowNetwork> fnet;
};

}  // namespace

// --- 1. FIFO mode: the pre-resource-API model, byte-locked -----------------

TEST(StorageFifo, TimedReadSerializesClosedForm) {
  core::Engine eng;
  hosts::StorageDevice disk(eng, "d", {1e9, 100.0, 100.0, 0.5});
  EXPECT_EQ(disk.sharing(), StorageSharing::kFifo);
  EXPECT_FALSE(disk.solver_attached());
  disk.store("f1", 100);  // 1s read + 0.5s latency
  disk.store("f2", 200);  // 2s read + 0.5s latency
  std::vector<double> done;
  disk.read("f1", [&] { done.push_back(eng.now()); });
  disk.read("f2", [&] { done.push_back(eng.now()); });
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(bits(done[0]), bits(1.5));
  EXPECT_EQ(bits(done[1]), bits(4.0));  // serialized behind f1's head time
}

TEST(StorageFifo, MassStorageMountLatencyClosedForm) {
  core::Engine eng;
  hosts::StorageDevice tape(eng, "t", hosts::mass_storage_spec(1e15, 30e6, 30.0));
  EXPECT_EQ(tape.sharing(), StorageSharing::kFifo);
  tape.store("dataset", 30e6);
  double done_at = -1;
  tape.read("dataset", [&] { done_at = eng.now(); });
  eng.run();
  EXPECT_EQ(bits(done_at), bits(31.0));  // 30s mount + 1s transfer
}

// A pure-FIFO grid must leave the flow network exactly as it was before
// this API existed: zero registered resources, no endpoint binder. That is
// the structural half of the byte-identity guarantee.
TEST(StorageFifo, GridRegistersNothingWithTheSolver) {
  core::Engine eng;
  hosts::Grid grid(eng);
  hosts::SiteSpec s;
  s.name = "a";
  s.has_mass_storage = true;
  s.has_ssd = true;
  auto& a = grid.add_site(s);
  s.name = "b";
  auto& b = grid.add_site(s);
  grid.topology().add_link(a.node(), b.node(), 1e8, 0.001);
  grid.finalize();
  EXPECT_EQ(grid.net().resource_count(), 0u);
  EXPECT_FALSE(grid.net().has_endpoint_binder());
  EXPECT_FALSE(a.disk().solver_attached());
  EXPECT_FALSE(a.tape().solver_attached());
  EXPECT_FALSE(a.ssd().solver_attached());
}

TEST(StorageFifo, EstimatedAccessDelayIsQueueWaitPlusLatency) {
  core::Engine eng;
  hosts::StorageDevice disk(eng, "d", {1e9, 100.0, 100.0, 0.5});
  disk.store("f", 100);
  EXPECT_DOUBLE_EQ(disk.estimated_access_delay(), 0.5);  // idle: latency only
  disk.read("f", nullptr);                               // head busy until 1.5
  EXPECT_DOUBLE_EQ(disk.estimated_access_delay(), 2.0);  // 1.5 wait + 0.5
  eng.run();
  EXPECT_DOUBLE_EQ(disk.estimated_access_delay(), 0.5);
}

// --- 2. MaxMin mode: heads are solver capacity resources -------------------

TEST(StorageMaxMin, ConcurrentReadersShareTheHead) {
  DeviceWorld w;
  hosts::StorageDevice disk(w.eng, "d", {1e9, 100.0, 100.0, 0.0, StorageSharing::kMaxMin});
  disk.attach_solver(*w.fnet);
  EXPECT_TRUE(disk.solver_attached());
  EXPECT_EQ(w.fnet->resource_count(), 2u);  // read head + write head
  EXPECT_DOUBLE_EQ(w.fnet->resource_capacity(disk.read_resource()), 100.0);
  disk.store("f1", 100);
  disk.store("f2", 100);
  std::vector<double> done;
  w.eng.schedule_at(0.0, [&] {
    disk.read("f1", [&] { done.push_back(w.eng.now()); });
    disk.read("f2", [&] { done.push_back(w.eng.now()); });
  });
  w.eng.schedule_at(1.0, [&] { EXPECT_EQ(disk.active_ios(), 2u); });
  w.eng.run();
  ASSERT_EQ(done.size(), 2u);
  // Fair share 50 B/s each: both finish at 2.0 — NOT serialized at 1.0/2.0.
  EXPECT_EQ(bits(done[0]), bits(2.0));
  EXPECT_EQ(bits(done[1]), bits(2.0));
  EXPECT_EQ(disk.active_ios(), 0u);
}

TEST(StorageMaxMin, TapeMountsOverlapWhileHeadsContend) {
  DeviceWorld w;
  hosts::StorageDevice tape(
      w.eng, "t", hosts::mass_storage_spec(1e15, 30e6, 30.0, StorageSharing::kMaxMin));
  tape.attach_solver(*w.fnet);
  tape.store("d1", 30e6);
  tape.store("d2", 30e6);
  std::vector<double> done;
  w.eng.schedule_at(0.0, [&] {
    tape.read("d1", [&] { done.push_back(w.eng.now()); });
    tape.read("d2", [&] { done.push_back(w.eng.now()); });
  });
  w.eng.run();
  ASSERT_EQ(done.size(), 2u);
  // Both robot mounts run in parallel (latency phase holds no capacity);
  // the heads then share 30 MB/s: 15 MB/s each, 2s drain. FIFO would give
  // 31.0 and 62.0.
  EXPECT_EQ(bits(done[0]), bits(32.0));
  EXPECT_EQ(bits(done[1]), bits(32.0));
}

TEST(StorageMaxMin, ReadsAndWritesUseIndependentHeads) {
  DeviceWorld w;
  hosts::StorageDevice disk(w.eng, "d", {1e9, 100.0, 50.0, 0.0, StorageSharing::kMaxMin});
  disk.attach_solver(*w.fnet);
  disk.store("r", 100);
  std::vector<std::pair<char, double>> done;
  w.eng.schedule_at(0.0, [&] {
    disk.read("r", [&] { done.emplace_back('r', w.eng.now()); });
    disk.write("w", 100, [&] { done.emplace_back('w', w.eng.now()); });
  });
  w.eng.run();
  ASSERT_EQ(done.size(), 2u);
  // Read head 100 B/s, write head 50 B/s — no cross-contention.
  EXPECT_EQ(done[0].first, 'r');
  EXPECT_EQ(bits(done[0].second), bits(1.0));
  EXPECT_EQ(done[1].first, 'w');
  EXPECT_EQ(bits(done[1].second), bits(2.0));
  EXPECT_TRUE(disk.has("w"));
}

TEST(StorageMaxMin, SetResourceCapacityReRatesInFlight) {
  DeviceWorld w;
  hosts::StorageDevice disk(w.eng, "d", {1e9, 100.0, 100.0, 0.0, StorageSharing::kMaxMin});
  disk.attach_solver(*w.fnet);
  disk.store("f", 200);
  double done_at = -1;
  w.eng.schedule_at(0.0, [&] { disk.read("f", [&] { done_at = w.eng.now(); }); });
  // At t=1 100 bytes have drained; halving the head leaves 100 bytes at 50.
  w.eng.schedule_at(1.0, [&] { w.fnet->set_resource_capacity(disk.read_resource(), 50.0); });
  w.eng.run();
  EXPECT_EQ(bits(done_at), bits(3.0));
  EXPECT_DOUBLE_EQ(w.fnet->resource_capacity(disk.read_resource()), 50.0);
}

TEST(StorageMaxMin, SetResourceCapacityValidates) {
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_link(a, b, 1e8, 0.001);
  core::Engine eng;
  net::Routing routing(topo);
  net::FlowNetwork fnet(eng, routing);
  const auto r = fnet.add_resource(100.0, "disk");
  EXPECT_THROW(fnet.set_resource_capacity(0, 2e8), std::invalid_argument);  // a link
  EXPECT_THROW(fnet.set_resource_capacity(r, 0.0), std::invalid_argument);
  EXPECT_THROW(fnet.set_resource_capacity(r, -5.0), std::invalid_argument);
  EXPECT_THROW(fnet.set_resource_capacity(r, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(fnet.add_resource(0.0), std::invalid_argument);
  fnet.set_resource_capacity(r, 200.0);
  EXPECT_DOUBLE_EQ(fnet.resource_capacity(r), 200.0);
}

// Capacity changes dirty only the touched component: re-rating one disk's
// island must not re-rate flows on an unrelated disk (work counters prove
// the incremental solver solves less).
TEST(StorageMaxMin, CapacityChangeReSolvesOnlyItsComponent) {
  DeviceWorld w;
  hosts::StorageDevice d1(w.eng, "d1", {1e9, 100.0, 100.0, 0.0, StorageSharing::kMaxMin});
  hosts::StorageDevice d2(w.eng, "d2", {1e9, 100.0, 100.0, 0.0, StorageSharing::kMaxMin});
  d1.attach_solver(*w.fnet);
  d2.attach_solver(*w.fnet);
  d1.store("a", 1e6);
  d2.store("b", 1e6);
  std::uint64_t rerated_before_change = 0;
  w.eng.schedule_at(0.0, [&] {
    d1.read("a", nullptr);
    d2.read("b", nullptr);
  });
  w.eng.schedule_at(1.0, [&] {
    rerated_before_change = w.fnet->flows_rerated();
    w.fnet->set_resource_capacity(d1.read_resource(), 50.0);
  });
  double d2_rate = 0;
  w.eng.schedule_at(1.5, [&] {
    // Only d1's flow re-rated: +1, not +2.
    EXPECT_EQ(w.fnet->flows_rerated(), rerated_before_change + 1);
    d2_rate = w.fnet->resource_load(d2.read_resource());
  });
  w.eng.run_until(2.0);
  EXPECT_EQ(bits(d2_rate), bits(100.0));  // untouched island, untouched rate
}

// --- 3. Joint disk + link constraints through the Grid binder --------------

namespace {

hosts::SiteSpec maxmin_site(const std::string& name, double read_bw, double write_bw) {
  hosts::SiteSpec s;
  s.name = name;
  s.disk_read_bw = read_bw;
  s.disk_write_bw = write_bw;
  s.disk_latency = 0;
  s.storage_sharing = StorageSharing::kMaxMin;
  return s;
}

}  // namespace

TEST(StorageJoint, TransferIsBoundByTheSlowestOfDiskAndLink) {
  core::Engine eng;
  hosts::Grid grid(eng);
  auto& src = grid.add_site(maxmin_site("src", 5e7, 1e9));
  auto& dst = grid.add_site(maxmin_site("dst", 1e9, 1e9));
  grid.topology().add_link(src.node(), dst.node(), 1e8, 0.01);
  grid.finalize();
  EXPECT_TRUE(grid.net().has_endpoint_binder());
  EXPECT_EQ(grid.net().resource_count(), 4u);  // 2 sites x (read, write)
  double done_at = -1;
  eng.schedule_at(0.0, [&] {
    grid.net().start_flow(src.node(), dst.node(), 1e8,
                          [&](net::FlowId) { done_at = eng.now(); });
  });
  eng.run();
  // Constraint set {src.read 50 MB/s, link 100 MB/s, dst.write 1 GB/s}:
  // the source head is the bottleneck. 1e8 B / 5e7 B/s + 0.01s latency.
  EXPECT_EQ(bits(done_at), bits(2.0 + 0.01));
  EXPECT_EQ(bits(grid.net().resource_load(src.disk().read_resource())), bits(0.0));
}

TEST(StorageJoint, SharedSourceHeadSplitsAcrossTransfers) {
  core::Engine eng;
  hosts::Grid grid(eng);
  auto& src = grid.add_site(maxmin_site("src", 5e7, 1e9));
  auto& d1 = grid.add_site(maxmin_site("d1", 1e9, 1e9));
  auto& d2 = grid.add_site(maxmin_site("d2", 1e9, 1e9));
  grid.topology().add_link(src.node(), d1.node(), 1e8, 0.01);
  grid.topology().add_link(src.node(), d2.node(), 1e8, 0.01);
  grid.finalize();
  std::vector<double> done;
  eng.schedule_at(0.0, [&] {
    grid.net().start_flow(src.node(), d1.node(), 1e8, [&](net::FlowId) { done.push_back(eng.now()); });
    grid.net().start_flow(src.node(), d2.node(), 1e8, [&](net::FlowId) { done.push_back(eng.now()); });
  });
  double head_load = 0;
  eng.schedule_at(1.0, [&] { head_load = grid.net().resource_load(src.disk().read_resource()); });
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  // Two disjoint links, one shared source head: 25 MB/s each, links idle at
  // 25% — the contention FIFO link-only sharing cannot see.
  EXPECT_EQ(bits(head_load), bits(5e7));
  EXPECT_EQ(bits(done[0]), bits(4.0 + 0.01));
  EXPECT_EQ(bits(done[1]), bits(4.0 + 0.01));
}

TEST(StorageJoint, DiskLatencyAddsToRouteLatency) {
  core::Engine eng;
  hosts::Grid grid(eng);
  auto sspec = maxmin_site("src", 1e9, 1e9);
  sspec.disk_latency = 0.25;
  auto& src = grid.add_site(sspec);
  auto dspec = maxmin_site("dst", 1e9, 1e9);
  dspec.disk_latency = 0.5;
  auto& dst = grid.add_site(dspec);
  grid.topology().add_link(src.node(), dst.node(), 1e8, 0.01);
  grid.finalize();
  double done_at = -1;
  eng.schedule_at(0.0, [&] {
    grid.net().start_flow(src.node(), dst.node(), 1e8,
                          [&](net::FlowId) { done_at = eng.now(); });
  });
  eng.run();
  // 1s drain at the 100 MB/s link + 0.01 route + 0.25 src seek + 0.5 dst.
  EXPECT_EQ(bits(done_at), bits(1.0 + 0.01 + 0.25 + 0.5));
}

// --- 4. Differential fuzz: full vs incremental under disk+link churn -------

namespace {

using Trace = std::vector<std::tuple<char, net::FlowId, std::uint64_t>>;

struct DiskOp {
  enum Kind { kStart, kIo, kCancel, kSetCap, kLinkDown, kLinkUp, kCheckpoint } kind = kStart;
  double t = 0;
  net::NodeId src = 0;
  net::NodeId dst = 0;
  double bytes = 0;
  double weight = 1;
  double capacity = 0;
  std::size_t flow_idx = 0;
  std::size_t res_idx = 0;  // kSetCap: disk-head index; kIo: node index
  net::LinkId link = 0;
};

// Deterministic churn script mixing endpoint-bound transfers, pure device
// I/O, head-capacity changes and link failures.
std::vector<DiskOp> make_disk_script(const net::Topology& topo, std::uint64_t seed,
                                     std::size_t n_ops) {
  core::RngStream rng(seed);
  std::vector<DiskOp> ops;
  double t = 0;
  std::size_t started = 0;
  const std::size_t heads = 2 * topo.node_count();
  for (std::size_t i = 0; i < n_ops; ++i) {
    t += rng.exponential(0.3);
    DiskOp op;
    op.t = t;
    const double r = rng.uniform();
    if (r < 0.40 || started == 0) {
      op.kind = DiskOp::kStart;
      op.src = static_cast<net::NodeId>(rng.uniform_int(0, topo.node_count() - 1));
      do {
        op.dst = static_cast<net::NodeId>(rng.uniform_int(0, topo.node_count() - 1));
      } while (op.dst == op.src);
      op.bytes = rng.uniform(1e5, 5e7);
      op.weight = rng.uniform(0.5, 4.0);
      ++started;
    } else if (r < 0.55) {
      op.kind = DiskOp::kIo;
      op.res_idx = static_cast<std::size_t>(rng.uniform_int(0, topo.node_count() - 1));
      op.bytes = rng.uniform(1e5, 2e7);
      ++started;
    } else if (r < 0.70) {
      op.kind = DiskOp::kCancel;
      op.flow_idx = static_cast<std::size_t>(rng.uniform_int(0, started - 1));
    } else if (r < 0.82) {
      op.kind = DiskOp::kSetCap;
      op.res_idx = static_cast<std::size_t>(rng.uniform_int(0, heads - 1));
      op.capacity = rng.uniform(1e7, 3e8);
    } else if (r < 0.88) {
      op.kind = DiskOp::kLinkDown;
      op.link = static_cast<net::LinkId>(rng.uniform_int(0, topo.link_count() - 1));
    } else if (r < 0.94) {
      op.kind = DiskOp::kLinkUp;
      op.link = static_cast<net::LinkId>(rng.uniform_int(0, topo.link_count() - 1));
    } else {
      op.kind = DiskOp::kCheckpoint;
    }
    ops.push_back(op);
  }
  return ops;
}

Trace run_disk_script(const net::Topology& topo, const std::vector<DiskOp>& ops,
                      core::QueueKind kind, bool incremental, core::FailureSemantics sem) {
  core::Engine eng(core::Engine::Config{kind, 7, 0, 0});
  net::Routing routing(topo);
  net::FlowNetwork fnet(eng, routing, net::FlowNetwork::Config{incremental});
  fnet.set_failure_semantics(sem);

  // Register one read + one write head per node, ascending node order —
  // identical ids in both runs: read(n) = link_count + 2n, write(n) = +1.
  std::vector<net::ResourceId> read_head(topo.node_count()), write_head(topo.node_count());
  for (std::size_t n = 0; n < topo.node_count(); ++n) {
    read_head[n] = fnet.add_resource(8e7 + 1e6 * static_cast<double>(n), "r");
    write_head[n] = fnet.add_resource(6e7 + 1e6 * static_cast<double>(n), "w");
  }
  fnet.set_endpoint_binder([&read_head, &write_head](net::NodeId src, net::NodeId dst,
                                                     std::vector<net::ResourceId>& res,
                                                     double& extra_latency) {
    res.push_back(read_head[src]);
    res.push_back(write_head[dst]);
    extra_latency += 0.001;
  });

  Trace trace;
  std::vector<net::FlowId> flows;
  for (const DiskOp& op : ops) {
    eng.schedule_at(op.t, [&eng, &fnet, &trace, &flows, &read_head, &write_head, op] {
      switch (op.kind) {
        case DiskOp::kStart:
          flows.push_back(fnet.start_flow_weighted(
              op.src, op.dst, op.bytes, op.weight,
              [&trace, &eng](net::FlowId id) { trace.emplace_back('C', id, bits(eng.now())); },
              [&trace, &eng](net::FlowId id) { trace.emplace_back('E', id, bits(eng.now())); }));
          break;
        case DiskOp::kIo:
          flows.push_back(fnet.start_io(
              op.bytes, {read_head[op.res_idx]}, 0.002,
              [&trace, &eng](net::FlowId id) { trace.emplace_back('C', id, bits(eng.now())); },
              [&trace, &eng](net::FlowId id) { trace.emplace_back('E', id, bits(eng.now())); }));
          break;
        case DiskOp::kCancel:
          if (op.flow_idx < flows.size()) fnet.cancel(flows[op.flow_idx]);
          break;
        case DiskOp::kSetCap: {
          const std::size_t n = op.res_idx / 2;
          fnet.set_resource_capacity(op.res_idx % 2 == 0 ? read_head[n] : write_head[n],
                                     op.capacity);
          break;
        }
        case DiskOp::kLinkDown:
          fnet.set_link_up(op.link, false);
          break;
        case DiskOp::kLinkUp:
          fnet.set_link_up(op.link, true);
          break;
        case DiskOp::kCheckpoint:
          for (net::FlowId id : flows) trace.emplace_back('R', id, bits(fnet.flow_rate(id)));
          for (std::size_t r = 0; r < fnet.total_resources(); ++r)
            trace.emplace_back('L', static_cast<net::FlowId>(r),
                               bits(fnet.resource_load(static_cast<net::ResourceId>(r))));
          break;
      }
    });
  }
  eng.run();
  trace.emplace_back('B', 0, bits(fnet.total_bytes_delivered()));
  return trace;
}

}  // namespace

// The tentpole differential: with disk heads in every constraint set and
// head capacities changing mid-flight, the incremental solver's trace is
// byte-identical to the full solver's — for every fuzz seed, every queue
// kind, both failure semantics.
TEST(StorageDifferential, FuzzFullVsIncrementalWithDiskConstraints) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    core::RngStream topo_rng(seed * 777 + 5);
    const auto topo = net::Topology::random_connected(14, 6, 1e8, 0.002, topo_rng);
    const auto ops = make_disk_script(topo, seed, 60);
    const auto sem = seed % 2 == 0 ? core::FailureSemantics::kFailStop
                                   : core::FailureSemantics::kFailResume;
    for (core::QueueKind kind : core::kAllQueueKinds) {
      const Trace full = run_disk_script(topo, ops, kind, false, sem);
      const Trace inc = run_disk_script(topo, ops, kind, true, sem);
      ASSERT_EQ(full, inc) << "seed " << seed << " queue " << core::to_string(kind);
      ASSERT_FALSE(full.empty());
    }
  }
}

TEST(StorageDifferential, DiskTraceAgreesAcrossQueueKinds) {
  core::RngStream topo_rng(41);
  const auto topo = net::Topology::random_connected(12, 5, 1e8, 0.002, topo_rng);
  const auto ops = make_disk_script(topo, 41, 50);
  const Trace reference = run_disk_script(topo, ops, core::QueueKind::kSortedList, true,
                                          core::FailureSemantics::kFailResume);
  for (core::QueueKind kind : core::kAllQueueKinds) {
    const Trace t =
        run_disk_script(topo, ops, kind, true, core::FailureSemantics::kFailResume);
    ASSERT_EQ(reference, t) << "queue " << core::to_string(kind);
  }
}

// Fail-stop on a disk head aborts the I/O crossing it, like a link death.
TEST(StorageDifferential, ResourceDownAbortsUnderFailStop) {
  DeviceWorld w;
  w.fnet->set_failure_semantics(core::FailureSemantics::kFailStop);
  hosts::StorageDevice disk(w.eng, "d", {1e9, 100.0, 100.0, 0.0, StorageSharing::kMaxMin});
  disk.attach_solver(*w.fnet);
  std::vector<char> events;
  w.eng.schedule_at(0.0, [&] {
    w.fnet->start_io(1e6, {disk.read_resource()}, 0.0, [&](net::FlowId) { events.push_back('C'); },
                     [&](net::FlowId) { events.push_back('E'); });
  });
  w.eng.schedule_at(1.0, [&] { w.fnet->set_resource_up(disk.read_resource(), false); });
  w.eng.run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], 'E');
  EXPECT_FALSE(w.fnet->resource_up(disk.read_resource()));
}

// --- 5. Tiered stores under contention --------------------------------------

TEST(StorageTiers, SiteRegistersAllTiersDeterministically) {
  core::Engine eng;
  hosts::Grid grid(eng);
  hosts::SiteSpec s = maxmin_site("t1", 1e8, 1e8);
  s.has_mass_storage = true;
  s.has_ssd = true;
  auto& site = grid.add_site(s);
  grid.finalize();
  // Registration order is fixed: tape, disk, ssd — read then write each.
  EXPECT_EQ(grid.net().resource_count(), 6u);
  EXPECT_TRUE(site.tape().solver_attached());
  EXPECT_TRUE(site.disk().solver_attached());
  EXPECT_TRUE(site.ssd().solver_attached());
  EXPECT_LT(site.tape().read_resource(), site.disk().read_resource());
  EXPECT_LT(site.disk().read_resource(), site.ssd().read_resource());
  ASSERT_NE(site.storage(hosts::StorageTier::kSsd), nullptr);
  EXPECT_EQ(site.storage(hosts::StorageTier::kSsd), &site.ssd());
  EXPECT_EQ(site.storage(hosts::StorageTier::kDisk), &site.disk());
  EXPECT_EQ(site.storage(hosts::StorageTier::kTape), &site.tape());
}

TEST(StorageTiers, EvictionUnderContention) {
  core::Engine eng;
  hosts::Grid grid(eng);
  hosts::SiteSpec s = maxmin_site("t1", 1e8, 1e8);
  s.has_ssd = true;
  s.ssd_capacity = 300;
  s.ssd_read_bw = 100;
  s.ssd_write_bw = 100;
  s.ssd_latency = 0;
  auto& site = grid.add_site(s);
  grid.finalize();
  auto& ssd = site.ssd();
  ASSERT_TRUE(ssd.store("hot", 150, /*pinned=*/true));
  ASSERT_TRUE(ssd.store("cold", 100));
  EXPECT_FALSE(ssd.store("incoming", 100));  // full: 250/300 used
  // The LRU candidate must skip the pinned file even while reads are in
  // flight on it.
  std::vector<double> done;
  eng.schedule_at(0.0, [&] {
    ssd.read("hot", [&] { done.push_back(eng.now()); });
    ssd.read("cold", [&] { done.push_back(eng.now()); });
  });
  eng.schedule_at(1.0, [&] {
    ASSERT_TRUE(ssd.lru_candidate().has_value());
    EXPECT_EQ(*ssd.lru_candidate(), "cold");
    // Evict under contention: metadata goes now; the in-flight flow drains.
    EXPECT_TRUE(ssd.evict("cold"));
    EXPECT_TRUE(ssd.store("incoming", 100));
  });
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  // Shared head 100 B/s: hot (150 B) and cold (100 B) split it; cold's flow
  // finishes even though the file was evicted mid-drain.
  EXPECT_EQ(bits(done[0]), bits(2.0));   // cold: 100 B at 50 B/s
  EXPECT_EQ(bits(done[1]), bits(2.5));   // hot: 100 B at 50, last 50 at 100
  EXPECT_FALSE(ssd.has("cold"));
  EXPECT_TRUE(ssd.has("incoming"));
}

// --- 6. API-boundary bugfix regressions -------------------------------------

TEST(StorageValidation, StoreRejectsNonFiniteAndNegativeBytes) {
  core::Engine eng;
  hosts::StorageDevice disk(eng, "d", {1000, 100, 100, 0});
  EXPECT_THROW(disk.store("nan", std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(disk.store("inf", std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(disk.store("neg", -1.0), std::invalid_argument);
  EXPECT_EQ(disk.file_count(), 0u);
  EXPECT_DOUBLE_EQ(disk.used(), 0.0);
  EXPECT_TRUE(disk.store("zero", 0.0));  // zero-byte files are legal
}

TEST(StorageValidation, WriteRejectsNonFiniteAndNegativeBytes) {
  core::Engine eng;
  hosts::StorageDevice disk(eng, "d", {1000, 100, 100, 0});
  EXPECT_THROW(disk.write("nan", std::numeric_limits<double>::quiet_NaN(), nullptr),
               std::invalid_argument);
  EXPECT_THROW(disk.write("neg", -2.0, nullptr), std::invalid_argument);
  EXPECT_DOUBLE_EQ(disk.used(), 0.0);  // no capacity reserved by the throws
  eng.run();
  EXPECT_EQ(disk.writes(), 0u);
}

TEST(StorageValidation, EvictRefusesPinnedFiles) {
  core::Engine eng;
  hosts::StorageDevice disk(eng, "d", {1000, 100, 100, 0});
  ASSERT_TRUE(disk.store("precious", 100, /*pinned=*/true));
  EXPECT_FALSE(disk.evict("precious"));  // was: silently evicted
  EXPECT_TRUE(disk.has("precious"));
  EXPECT_DOUBLE_EQ(disk.used(), 100.0);
  EXPECT_TRUE(disk.set_pinned("precious", false));
  EXPECT_TRUE(disk.evict("precious"));
  EXPECT_FALSE(disk.set_pinned("ghost", true));  // absent file
}

// --- 7. ParallelGrid: per-LP resource ownership -----------------------------

namespace {

hosts::ExecutionSpec par2() {
  hosts::ExecutionSpec spec;
  spec.parallel = true;
  spec.lps = 2;
  spec.threads = 2;
  return spec;
}

}  // namespace

TEST(StorageParallel, HeadsAttachToTheOwnerPartitionOnly) {
  hosts::ParallelGrid grid(par2());
  hosts::SiteSpec s = maxmin_site("a0", 1e8, 1e8);
  const auto a0 = grid.add_site(s);
  s.name = "a1";
  const auto a1 = grid.add_site(s);
  s.name = "b0";
  const auto b0 = grid.add_site(s);
  s.name = "b1";
  const auto b1 = grid.add_site(s);
  grid.topology().add_link(a0, a1, 1e8, 0.001);
  grid.topology().add_link(b0, b1, 1e8, 0.001);
  grid.topology().add_link(a0, b0, 1e7, 0.05);  // WAN cut
  grid.finalize();
  ASSERT_TRUE(grid.parallel()) << grid.fallback_reason();

  auto& net_a = grid.flows_of(a0);
  auto& net_b = grid.flows_of(b0);
  ASSERT_NE(&net_a, &net_b);
  // Each partition's network carries exactly its own sites' heads.
  EXPECT_EQ(net_a.resource_count(), 4u);  // 2 sites x (read, write)
  EXPECT_EQ(net_b.resource_count(), 4u);
  EXPECT_TRUE(net_a.has_endpoint_binder());
  EXPECT_TRUE(net_b.has_endpoint_binder());
  for (auto sid : {a0, a1, b0, b1}) EXPECT_TRUE(grid.site(sid).disk().solver_attached());

  // Device I/O and a disk-bound transfer run LP-locally on each side.
  std::atomic<int> done{0};
  grid.at(a0, 0.0, [&grid, &done, a0, a1] {
    grid.site(a0).disk().store("f", 1e6);
    grid.site(a0).disk().read("f", [&done] { ++done; });
    grid.flows_of(a0).start_flow(a0, a1, 1e6, [&done](net::FlowId) { ++done; });
  });
  grid.at(b1, 0.0, [&grid, &done, b1] {
    grid.site(b1).disk().store("g", 2e6);
    grid.site(b1).disk().read("g", [&done] { ++done; });
  });
  grid.run(10.0);
  EXPECT_EQ(done.load(), 3);
}

TEST(StorageParallel, FifoSpecsLeavePartitionNetworksUntouched) {
  hosts::ParallelGrid grid(par2());
  hosts::SiteSpec s;
  s.name = "a";
  const auto a = grid.add_site(s);
  s.name = "b";
  const auto b = grid.add_site(s);
  grid.topology().add_link(a, b, 1e7, 0.05);
  grid.finalize();
  EXPECT_EQ(grid.flows_of(a).resource_count(), 0u);
  EXPECT_FALSE(grid.flows_of(a).has_endpoint_binder());
  EXPECT_EQ(grid.flows_of(b).resource_count(), 0u);
}

// --- 8. Zone-aware replica placement ----------------------------------------

TEST(StoragePlacement, SameSubtreeSourceOutranksCheaperRemote) {
  net::ZoneTree tree;
  tree.add_child(std::make_unique<net::StarZone>(net::StarSpec{2, 1e8, 0.001}), 1e9, 0.01);
  tree.add_child(std::make_unique<net::StarZone>(net::StarSpec{2, 1e8, 0.001}), 1e9, 0.01);
  net::ZoneRouting routing(tree);
  core::Engine eng;
  hosts::Grid grid(eng);
  hosts::SiteSpec s;
  std::vector<net::NodeId> nodes;
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t h = 0; h < 2; ++h) {
      s.name = "s" + std::to_string(c * 2 + h);
      const auto node = static_cast<net::NodeId>(tree.child_offset(c) + h);
      grid.add_site_at(s, node);
      nodes.push_back(node);
    }
  }
  grid.finalize_with(routing);

  mw::ReplicaCatalog cat(grid.route_provider());
  cat.set_zone_tree(&tree);
  // Consumer: site 0 (zone 0). Replicas: site 1 (zone 0) and site 2 (zone 1).
  cat.add_replica("f", 1, nodes[1]);
  cat.add_replica("f", 2, nodes[2]);
  EXPECT_EQ(*cat.best_source("f", nodes[0]), 1u);

  // Rank dominates cost: even when the same-zone source is far more loaded
  // (huge source cost), it still wins over the cross-zone replica.
  cat.set_source_cost_fn([](hosts::SiteId site) { return site == 1 ? 100.0 : 0.0; });
  EXPECT_EQ(*cat.best_source("f", nodes[0]), 1u);

  // Without zone awareness the cost decides, and the loaded source loses.
  cat.set_zone_tree(nullptr);
  EXPECT_EQ(*cat.best_source("f", nodes[0]), 2u);

  // A local replica beats everything regardless of ranks and costs.
  cat.set_zone_tree(&tree);
  cat.add_replica("f", 0, nodes[0]);
  EXPECT_EQ(*cat.best_source("f", nodes[0]), 0u);
}

TEST(StoragePlacement, EqualRankEqualCostTieBreaksByAscendingSiteId) {
  net::ZoneTree tree;
  tree.add_child(std::make_unique<net::StarZone>(net::StarSpec{3, 1e8, 0.001}), 1e9, 0.01);
  net::ZoneRouting routing(tree);
  core::Engine eng;
  hosts::Grid grid(eng);
  hosts::SiteSpec s;
  std::vector<net::NodeId> nodes;
  for (std::size_t h = 0; h < 3; ++h) {
    s.name = "s" + std::to_string(h);
    const auto node = static_cast<net::NodeId>(tree.child_offset(0) + h);
    grid.add_site_at(s, node);
    nodes.push_back(node);
  }
  grid.finalize_with(routing);
  mw::ReplicaCatalog cat(grid.route_provider());
  cat.set_zone_tree(&tree);
  // Sites 1 and 2 are symmetric around the hub from site 0's perspective.
  cat.add_replica("f", 2, nodes[2]);
  cat.add_replica("f", 1, nodes[1]);
  EXPECT_EQ(*cat.best_source("f", nodes[0]), 1u);
}

// --- 9. Facade-level A/B: staging contention is visible ---------------------

TEST(StorageMonarcAB, MaxMinStagingLagsBehindFifo) {
  namespace monarc = lsds::sim::monarc;
  monarc::Config cfg;
  cfg.num_t1 = 3;
  cfg.num_files = 8;
  cfg.file_bytes = 2e9;
  cfg.production_interval = 10.0;
  cfg.run_analysis = false;

  core::Engine fifo_eng;
  const auto fifo = monarc::run(fifo_eng, cfg);

  cfg.storage_sharing = StorageSharing::kMaxMin;
  core::Engine mm_eng;
  const auto mm = monarc::run(mm_eng, cfg);

  // Same work gets done either way...
  EXPECT_EQ(fifo.files_produced, mm.files_produced);
  EXPECT_EQ(fifo.replicas_delivered, mm.replicas_delivered);
  // ...but with 3 T1s staging off T0's 100 MB/s read head, the jointly
  // solved disk constraint throttles replication below what the link-only
  // FIFO model reports.
  EXPECT_GT(mm.replication_lag.mean(), fifo.replication_lag.mean());
}
