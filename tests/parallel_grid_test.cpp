// Differential determinism suite for parallel Grid execution.
//
// The contract under test: for a given master seed, the ParallelGrid models
// (tier_model, bag_model) produce BIT-IDENTICAL results — every job
// completion time, every transfer byte count, every summary statistic — no
// matter how the sites are partitioned (1, 2 or 4 LPs), how many worker
// threads run the windows, or which partition scheme draws the cut. The
// serial reference (exec.parallel = false) is the baseline; traces are
// compared byte-for-byte via TierResult::trace() / BagResult::trace().
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>

#include "hosts/parallel_grid.hpp"
#include "sim/parallel/bag_model.hpp"
#include "sim/parallel/execution.hpp"
#include "sim/parallel/tier_model.hpp"
#include "util/ini.hpp"

namespace hosts = lsds::hosts;
namespace net = lsds::net;
namespace parallel = lsds::sim::parallel;

namespace {

lsds::sim::monarc::Config small_tier() {
  lsds::sim::monarc::Config cfg;
  cfg.num_t1 = 5;
  cfg.num_files = 10;
  cfg.file_bytes = 1e9;
  cfg.production_interval = 5.0;
  cfg.t2_per_t1 = 2;
  cfg.t2_fraction = 0.5;
  cfg.archive_to_tape = true;
  return cfg;
}

hosts::ExecutionSpec par(unsigned lps, unsigned threads,
                         net::PartitionScheme scheme = net::PartitionScheme::kTopology) {
  hosts::ExecutionSpec spec;
  spec.parallel = true;
  spec.lps = lps;
  spec.threads = threads;
  spec.partition = scheme;
  return spec;
}

}  // namespace

// --- tier model (MONARC facade opt-in) -------------------------------------

TEST(ParallelTier, SerialVsParallelBitIdentical) {
  const auto cfg = small_tier();
  const auto serial = parallel::run_tier(cfg, {});
  ASSERT_FALSE(serial.exec.parallel);
  EXPECT_EQ(serial.files_produced, cfg.num_files);
  EXPECT_EQ(serial.replicas_delivered, cfg.num_files * cfg.num_t1);
  EXPECT_GT(serial.jobs.size(), cfg.num_files * cfg.num_t1 / 2);  // T1 + some T2 jobs

  for (unsigned lps : {1u, 2u, 4u}) {
    const auto p = parallel::run_tier(cfg, par(lps, 2));
    EXPECT_EQ(serial.trace(), p.trace()) << lps << " LPs diverged from the serial reference";
    EXPECT_EQ(p.exec.engine.lookahead_violations, 0u)
        << "model sends must be conservative by construction";
    EXPECT_EQ(p.exec.engine.past_clamped, 0u);
    if (lps > 1) {
      EXPECT_TRUE(p.exec.parallel);
      EXPECT_GT(p.exec.engine.cross_messages, 0u);
      EXPECT_GT(p.exec.lookahead, 0.0);
    }
  }
}

TEST(ParallelTier, ParallelRunTwiceByteIdentical) {
  const auto cfg = small_tier();
  const auto a = parallel::run_tier(cfg, par(4, 4));
  const auto b = parallel::run_tier(cfg, par(4, 4));
  EXPECT_EQ(a.trace(), b.trace());
  EXPECT_EQ(a.exec.engine.windows, b.exec.engine.windows);
  EXPECT_EQ(a.exec.engine.cross_messages, b.exec.engine.cross_messages);
}

TEST(ParallelTier, ThreadCountInvariance) {
  const auto cfg = small_tier();
  const auto t1 = parallel::run_tier(cfg, par(4, 1));
  const auto t2 = parallel::run_tier(cfg, par(4, 2));
  const auto t4 = parallel::run_tier(cfg, par(4, 4));
  EXPECT_EQ(t1.trace(), t2.trace());
  EXPECT_EQ(t1.trace(), t4.trace());
}

TEST(ParallelTier, PartitionSchemeInvariance) {
  // The partition scheme may change the cut (and thus lookahead & balance),
  // but never the simulation results.
  const auto cfg = small_tier();
  const auto topo = parallel::run_tier(cfg, par(3, 2, net::PartitionScheme::kTopology));
  const auto rr = parallel::run_tier(cfg, par(3, 2, net::PartitionScheme::kRoundRobin));
  EXPECT_EQ(topo.trace(), rr.trace());
}

TEST(ParallelTier, Lhc64SiteScenario) {
  // 1 T0 + 9 T1 + 54 T2 = 64 sites, as in the bench scenario.
  auto cfg = small_tier();
  cfg.num_t1 = 9;
  cfg.t2_per_t1 = 6;
  cfg.num_files = 6;
  const auto serial = parallel::run_tier(cfg, {});
  const auto p = parallel::run_tier(cfg, par(4, 4));
  ASSERT_TRUE(p.exec.parallel);
  EXPECT_EQ(p.exec.lps, 4u);
  EXPECT_EQ(serial.trace(), p.trace());
  // The cut must cross some T1--T2 (0.01 s) or T0--T1 (0.05 s) link.
  EXPECT_GT(p.exec.lookahead, 0.0);
  EXPECT_LE(p.exec.lookahead, 0.05);
  // Per-LP rollup covers every LP and sums to the event total.
  ASSERT_EQ(p.exec.engine.per_lp_events.size(), 4u);
  std::uint64_t sum = 0;
  for (auto e : p.exec.engine.per_lp_events) sum += e;
  EXPECT_EQ(sum, p.exec.engine.events);
  EXPECT_GE(p.exec.imbalance(), 1.0);
}

TEST(ParallelTier, QueueKindInvariance) {
  // The event-queue structure is a performance knob, never a results knob —
  // including the calendar queue, whose dequeue cursor must survive the
  // windowed run's requeue-then-deliver-earlier pattern.
  const auto cfg = small_tier();
  const auto heap = parallel::run_tier(cfg, par(4, 2));
  for (auto q : {lsds::core::QueueKind::kCalendarQueue, lsds::core::QueueKind::kSplayTree,
                 lsds::core::QueueKind::kLadderQueue}) {
    auto spec = par(4, 2);
    spec.queue = q;
    const auto r = parallel::run_tier(cfg, spec);
    EXPECT_EQ(heap.trace(), r.trace()) << lsds::core::to_string(q);
    EXPECT_EQ(r.exec.engine.lookahead_violations, 0u) << lsds::core::to_string(q);
  }
}

TEST(ParallelTier, SampleStatsMatchAcrossModes) {
  const auto cfg = small_tier();
  const auto serial = parallel::run_tier(cfg, {});
  const auto p = parallel::run_tier(cfg, par(4, 2));
  EXPECT_EQ(serial.replication_lag.count(), p.replication_lag.count());
  EXPECT_DOUBLE_EQ(serial.replication_lag.mean(), p.replication_lag.mean());
  EXPECT_DOUBLE_EQ(serial.analysis_delays.mean(), p.analysis_delays.mean());
  EXPECT_DOUBLE_EQ(serial.t2_delays.mean(), p.t2_delays.mean());
  EXPECT_DOUBLE_EQ(serial.backlog_at_production_end, p.backlog_at_production_end);
  EXPECT_DOUBLE_EQ(serial.makespan, p.makespan);
}

TEST(ParallelTier, HorizonCutIdenticalAcrossModes) {
  auto cfg = small_tier();
  cfg.horizon = 22.0;  // cut mid-replication
  const auto serial = parallel::run_tier(cfg, {});
  const auto p = parallel::run_tier(cfg, par(4, 2));
  EXPECT_EQ(serial.trace(), p.trace());
  EXPECT_LT(serial.replicas_delivered, cfg.num_files * cfg.num_t1);
}

TEST(ParallelTier, FailureInjectionRejected) {
  auto cfg = small_tier();
  cfg.failures.enabled = true;
  EXPECT_THROW(parallel::run_tier(cfg, par(2, 2)), std::runtime_error);
}

// --- bag model (GridSim facade opt-in) -------------------------------------

TEST(ParallelBag, SerialVsParallelBitIdentical) {
  lsds::sim::gridsim::Config cfg;
  cfg.num_resources = 6;
  cfg.num_jobs = 40;
  const auto serial = parallel::run_bag(cfg, {});
  EXPECT_EQ(serial.completed, cfg.num_jobs);
  for (unsigned lps : {2u, 4u}) {
    const auto p = parallel::run_bag(cfg, par(lps, 2));
    EXPECT_EQ(serial.trace(), p.trace()) << lps << " LPs diverged";
    EXPECT_EQ(p.exec.engine.lookahead_violations, 0u);
    EXPECT_EQ(p.exec.engine.past_clamped, 0u);
  }
}

TEST(ParallelBag, StrategiesAndConstraintsSurvive) {
  lsds::sim::gridsim::Config cfg;
  cfg.num_resources = 5;
  cfg.num_jobs = 30;
  cfg.strategy = lsds::middleware::DbcStrategy::kTimeOptimization;
  cfg.budget = 60.0;  // tight: forces rejections
  const auto serial = parallel::run_bag(cfg, {});
  const auto p = parallel::run_bag(cfg, par(3, 2));
  EXPECT_EQ(serial.trace(), p.trace());
  EXPECT_GT(serial.rejected, 0u);
  EXPECT_EQ(serial.accepted + serial.rejected, cfg.num_jobs);
  EXPECT_EQ(serial.completed, serial.accepted);
  EXPECT_LE(serial.cost, cfg.budget);
}

// --- lookahead derivation & fallback ---------------------------------------

TEST(ParallelGridCore, LookaheadOverrideNarrowsWindowsNotResults) {
  const auto cfg = small_tier();
  auto wide = par(4, 2);
  auto narrow = par(4, 2);
  narrow.lookahead_override = 0.002;
  const auto a = parallel::run_tier(cfg, wide);
  const auto b = parallel::run_tier(cfg, narrow);
  EXPECT_EQ(a.trace(), b.trace());
  ASSERT_TRUE(b.exec.parallel);
  EXPECT_DOUBLE_EQ(b.exec.lookahead, 0.002);
  EXPECT_GT(b.exec.engine.windows, a.exec.engine.windows);
}

TEST(ParallelGridCore, ZeroLatencyCutFallsBackToSerial) {
  hosts::ParallelGrid grid(par(2, 2));
  hosts::SiteSpec s;
  s.name = "a";
  const auto a = grid.add_site(s);
  s.name = "b";
  const auto b = grid.add_site(s);
  grid.topology().add_link(a, b, 1e9, 0.0);  // zero latency: no conservative window
  grid.finalize();
  EXPECT_FALSE(grid.parallel());
  EXPECT_FALSE(grid.fallback_reason().empty());
  int ran = 0;
  grid.at(a, 1.0, [&] { ++ran; });
  grid.at(b, 2.0, [&] { ++ran; });
  const auto rep = grid.run();
  EXPECT_EQ(ran, 2);
  EXPECT_FALSE(rep.parallel);
  EXPECT_EQ(rep.fallback_reason, grid.fallback_reason());
  EXPECT_EQ(rep.lps, 1u);
}

TEST(ParallelGridCore, PerPartitionFlowNetworksDeliverUnderBothSolvers) {
  // Each LP owns its own FlowNetwork bound to its engine; flows started from
  // a site's partition run entirely LP-locally. The incremental and full
  // solvers must agree on what gets delivered.
  for (bool incremental : {true, false}) {
    auto spec = par(2, 2);
    spec.network.incremental = incremental;
    hosts::ParallelGrid grid(spec);
    hosts::SiteSpec s;
    s.name = "a0";
    const auto a0 = grid.add_site(s);
    s.name = "a1";
    const auto a1 = grid.add_site(s);
    s.name = "b0";
    const auto b0 = grid.add_site(s);
    s.name = "b1";
    const auto b1 = grid.add_site(s);
    grid.topology().add_link(a0, a1, 1e8, 0.001);
    grid.topology().add_link(b0, b1, 1e8, 0.001);
    grid.topology().add_link(a0, b0, 1e7, 0.05);  // WAN cut: lookahead source
    grid.finalize();
    ASSERT_TRUE(grid.parallel()) << grid.fallback_reason();
    EXPECT_EQ(grid.flows_of(a0).config().incremental, incremental);

    std::atomic<int> done{0};
    grid.at(a0, 0.0, [&grid, &done, a0, a1] {
      auto& net = grid.flows_of(a0);
      net.start_flow(a0, a1, 1e6, [&done](net::FlowId) { ++done; });
      net.start_flow_weighted(a0, a1, 2e6, 2.0, [&done](net::FlowId) { ++done; });
    });
    grid.at(b1, 0.0, [&grid, &done, b0, b1] {
      grid.flows_of(b1).start_flow(b1, b0, 5e5, [&done](net::FlowId) { ++done; });
    });
    grid.run(10.0);
    EXPECT_EQ(done.load(), 3);

    std::set<net::FlowNetwork*> nets;
    for (auto sid : {a0, a1, b0, b1}) nets.insert(&grid.flows_of(sid));
    std::uint64_t completed = 0;
    double bytes = 0;
    for (auto* n : nets) {
      completed += n->flows_completed();
      bytes += n->total_bytes_delivered();
      EXPECT_EQ(n->active_flows(), 0u);
    }
    EXPECT_EQ(completed, 3u);
    EXPECT_DOUBLE_EQ(bytes, 3.5e6);
  }
}

TEST(ParallelGridCore, SingleSiteFallsBackToSerial) {
  hosts::ParallelGrid grid(par(4, 4));
  hosts::SiteSpec s;
  s.name = "only";
  grid.add_site(s);
  grid.finalize();
  EXPECT_FALSE(grid.parallel());
  EXPECT_FALSE(grid.fallback_reason().empty());
}

// --- [execution] scenario section ------------------------------------------

TEST(ExecutionIni, ParsesSection) {
  const auto ini = lsds::util::IniConfig::parse(
      "[execution]\n"
      "mode = parallel\n"
      "threads = 8\n"
      "lps = 3\n"
      "partition = round-robin\n"
      "lookahead = 5ms\n");
  const auto spec = parallel::parse_execution(ini, 7, lsds::core::QueueKind::kBinaryHeap);
  EXPECT_TRUE(spec.parallel);
  EXPECT_EQ(spec.threads, 8u);
  EXPECT_EQ(spec.lps, 3u);
  EXPECT_EQ(spec.partition, net::PartitionScheme::kRoundRobin);
  EXPECT_DOUBLE_EQ(spec.lookahead_override, 0.005);
  EXPECT_EQ(spec.seed, 7u);
}

TEST(ExecutionIni, DefaultsToSerialAndRejectsUnknown) {
  const auto empty = lsds::util::IniConfig::parse("");
  EXPECT_FALSE(
      parallel::parse_execution(empty, 1, lsds::core::QueueKind::kBinaryHeap).parallel);
  const auto bad = lsds::util::IniConfig::parse("[execution]\nmode = speculative\n");
  EXPECT_THROW(parallel::parse_execution(bad, 1, lsds::core::QueueKind::kBinaryHeap),
               lsds::util::ConfigError);
  const auto badp = lsds::util::IniConfig::parse("[execution]\npartition = simulated-annealing\n");
  EXPECT_THROW(parallel::parse_execution(badp, 1, lsds::core::QueueKind::kBinaryHeap),
               lsds::util::ConfigError);
}

TEST(ExecutionIni, DescribeCoversBothModes) {
  const auto cfg = small_tier();
  const auto serial = parallel::run_tier(cfg, {});
  const auto p = parallel::run_tier(cfg, par(2, 2));
  EXPECT_NE(parallel::describe(serial.exec).find("serial"), std::string::npos);
  const auto text = parallel::describe(p.exec);
  EXPECT_NE(text.find("parallel"), std::string::npos);
  EXPECT_NE(text.find("lookahead"), std::string::npos);
}
