// Simulation output-analysis methods: batch means, M/G/1 validation,
// weighted max-min fairness.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/engine.hpp"
#include "core/rng.hpp"
#include "hosts/cpu.hpp"
#include "net/flow.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "stats/analytical.hpp"
#include "stats/batch_means.hpp"
#include "stats/summary.hpp"

namespace core = lsds::core;
namespace hosts = lsds::hosts;
namespace net = lsds::net;
namespace stats = lsds::stats;

// --- batch means ------------------------------------------------------

TEST(BatchMeans, GrandMeanMatchesSampleMean) {
  stats::BatchMeans bm(10);
  stats::Accumulator acc;
  core::RngStream rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0, 10);
    bm.add(x);
    acc.add(x);
  }
  EXPECT_EQ(bm.batches(), 100u);
  EXPECT_NEAR(bm.mean(), acc.mean(), 1e-12);
}

TEST(BatchMeans, WarmupDiscarded) {
  stats::BatchMeans bm(5, /*warmup=*/10);
  for (int i = 0; i < 10; ++i) bm.add(1000.0);  // biased transient
  for (int i = 0; i < 50; ++i) bm.add(1.0);
  EXPECT_DOUBLE_EQ(bm.mean(), 1.0);
  EXPECT_EQ(bm.batches(), 10u);
}

TEST(BatchMeans, CiCoversTrueMeanForIid) {
  // 30 replications of an i.i.d. experiment: the 95% CI should cover the
  // true mean in the clear majority of them.
  int covered = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    core::RngStream rng(seed);
    stats::BatchMeans bm(50);
    for (int i = 0; i < 2000; ++i) bm.add(rng.exponential(4.0));
    if (std::fabs(bm.mean() - 4.0) <= bm.ci95_halfwidth()) ++covered;
  }
  EXPECT_GE(covered, 24);  // ~95% nominal; allow sampling slack
}

TEST(BatchMeans, WidensCiForAutocorrelatedSeries) {
  // AR(1) with strong positive correlation: the naive i.i.d. CI lies; the
  // batch-means CI must be substantially wider.
  core::RngStream rng(7);
  stats::Accumulator naive;
  stats::BatchMeans bm(200);
  double v = 0;
  for (int i = 0; i < 20000; ++i) {
    v = 0.95 * v + rng.normal(0, 1.0);
    naive.add(v);
    bm.add(v);
  }
  EXPECT_GT(bm.ci95_halfwidth(), 3.0 * naive.ci95_halfwidth());
}

TEST(BatchMeans, TooFewBatchesGiveZeroCi) {
  stats::BatchMeans bm(100);
  for (int i = 0; i < 150; ++i) bm.add(1.0);
  EXPECT_EQ(bm.batches(), 1u);
  EXPECT_DOUBLE_EQ(bm.ci95_halfwidth(), 0.0);
}

TEST(TCritical, TableValues) {
  EXPECT_NEAR(stats::t_critical_95(1), 12.706, 1e-3);
  EXPECT_NEAR(stats::t_critical_95(10), 2.228, 1e-3);
  EXPECT_NEAR(stats::t_critical_95(30), 2.042, 1e-3);
  EXPECT_NEAR(stats::t_critical_95(1000), 1.96, 1e-6);
}

// --- M/G/1 Pollaczek-Khinchine ----------------------------------------

TEST(Analytical, MG1ReducesToMM1) {
  // Exponential service: E[S^2] = 2/mu^2 -> PK == M/M/1.
  const double lambda = 0.5, mu = 1.0;
  stats::MG1 pk{lambda, 1.0 / mu, 2.0 / (mu * mu)};
  stats::MM1 mm1{lambda, mu};
  EXPECT_NEAR(pk.mean_wait(), mm1.mean_wait(), 1e-12);
}

TEST(Analytical, MD1HalvesTheWait) {
  // Deterministic service: E[S^2] = E[S]^2 -> exactly half the M/M/1 wait.
  stats::MG1 md1{0.5, 1.0, 1.0};
  stats::MG1 mm1{0.5, 1.0, 2.0};
  EXPECT_NEAR(md1.mean_wait(), mm1.mean_wait() / 2.0, 1e-12);
}

TEST(Analytical, MD1SimulationMatchesPK) {
  // Space-shared CPU with *deterministic* service vs the PK closed form.
  const double lambda = 0.7;
  const double service = 1.0;  // ops 100 at speed 100
  core::Engine eng({.queue = core::QueueKind::kCalendarQueue, .seed = 31});
  hosts::CpuResource cpu(eng, "srv", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
  auto& arrivals = eng.rng("arr");
  stats::BatchMeans wait(500, /*warmup=*/500);
  double t = 0;
  auto submit_time = std::make_shared<std::unordered_map<hosts::JobId, double>>();
  for (int i = 1; i <= 40000; ++i) {
    t += arrivals.exponential(1.0 / lambda);
    const auto id = static_cast<hosts::JobId>(i);
    eng.schedule_at(t, [&, id] {
      (*submit_time)[id] = eng.now();
      cpu.submit(id, 100.0, [&, id](hosts::JobId) {
        wait.add(eng.now() - (*submit_time)[id] - service);
        submit_time->erase(id);
      });
    });
  }
  eng.run();
  stats::MG1 pk{lambda, service, service * service};
  EXPECT_NEAR(wait.mean(), pk.mean_wait(), std::max(0.08, 2 * wait.ci95_halfwidth()));
}

// --- weighted max-min fairness ----------------------------------------

TEST(WeightedMaxMin, SharesProportionalToWeight) {
  core::Engine eng;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_link(a, b, 3e6, 0);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  const auto heavy = fn.start_flow_weighted(a, b, 1e12, 2.0);
  const auto light = fn.start_flow_weighted(a, b, 1e12, 1.0);
  eng.run_until(0.001);
  EXPECT_NEAR(fn.flow_rate(heavy), 2e6, 1.0);
  EXPECT_NEAR(fn.flow_rate(light), 1e6, 1.0);
  EXPECT_NEAR(fn.link_load(0), 3e6, 1.0);
}

TEST(WeightedMaxMin, DefaultWeightIsOne) {
  core::Engine eng;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_link(a, b, 2e6, 0);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  const auto f1 = fn.start_flow(a, b, 1e12);
  const auto f2 = fn.start_flow_weighted(a, b, 1e12, 1.0);
  eng.run_until(0.001);
  EXPECT_NEAR(fn.flow_rate(f1), fn.flow_rate(f2), 1.0);
}

TEST(WeightedMaxMin, WeightedCompletionTimes) {
  // Two equal transfers, weights 3:1 -> the heavy one finishes first, then
  // the light one gets the whole link.
  core::Engine eng;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_link(a, b, 4e6, 0);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  double t_heavy = -1, t_light = -1;
  fn.start_flow_weighted(a, b, 6e6, 3.0, [&](net::FlowId) { t_heavy = eng.now(); });
  fn.start_flow_weighted(a, b, 6e6, 1.0, [&](net::FlowId) { t_light = eng.now(); });
  eng.run();
  // Heavy: 3 MB/s -> 2s. Light: 1 MB/s for 2s (2 MB), then 4 MB/s for the
  // remaining 4 MB -> 2 + 1 = 3s.
  EXPECT_NEAR(t_heavy, 2.0, 1e-6);
  EXPECT_NEAR(t_light, 3.0, 1e-6);
}

TEST(WeightedMaxMin, CrossTopologyInvariantsStillHold) {
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 11});
  core::RngStream trng(12);
  auto topo = net::Topology::random_connected(10, 6, 1e6, 0.0, trng);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  auto& rng = eng.rng("w");
  for (int i = 0; i < 25; ++i) {
    const auto s = static_cast<net::NodeId>(rng.uniform_int(0, 9));
    auto d = static_cast<net::NodeId>(rng.uniform_int(0, 8));
    if (d >= s) ++d;
    fn.start_flow_weighted(s, d, 1e12, rng.uniform(0.5, 4.0));
  }
  eng.run_until(0.5);
  for (net::LinkId l = 0; l < topo.link_count(); ++l) {
    EXPECT_LE(fn.link_load(l), topo.link(l).bandwidth * (1 + 1e-9));
  }
}
