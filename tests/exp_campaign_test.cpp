// Experiment campaigns: sweep expansion, substream seeding, CI aggregation,
// and the workers-independence determinism contract.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "exp/campaign.hpp"
#include "exp/sweep.hpp"
#include "sim/facade_registry.hpp"
#include "util/ini.hpp"

namespace exp = lsds::exp;
namespace sim = lsds::sim;
namespace util = lsds::util;

// --- sweep expansion ---------------------------------------------------------

TEST(SweepSpec, CrossProductOdometerOrder) {
  const auto ini = util::IniConfig::parse(
      "[sweep]\n"
      "net.mode = a|b\n"
      "load.jobs = 1,2,3\n");
  const auto sweep = exp::SweepSpec::parse(ini);
  ASSERT_EQ(sweep.axes().size(), 2u);
  EXPECT_EQ(sweep.axes()[0].section, "net");
  EXPECT_EQ(sweep.axes()[0].key, "mode");
  EXPECT_EQ(sweep.axes()[1].values.size(), 3u);
  EXPECT_EQ(sweep.point_count(), 6u);

  // First axis varies slowest: (a,1) (a,2) (a,3) (b,1) (b,2) (b,3).
  const auto p0 = sweep.params(0);
  EXPECT_EQ(p0[0].second, "a");
  EXPECT_EQ(p0[1].second, "1");
  const auto p2 = sweep.params(2);
  EXPECT_EQ(p2[0].second, "a");
  EXPECT_EQ(p2[1].second, "3");
  const auto p3 = sweep.params(3);
  EXPECT_EQ(p3[0].second, "b");
  EXPECT_EQ(p3[1].second, "1");
}

TEST(SweepSpec, PipeSeparatorPreservesCommaFreeValues) {
  // Rates keep their unit syntax; '|' wins over ',' when both could apply.
  const auto ini = util::IniConfig::parse("[sweep]\nmonarc.link = 2.5Gbps|30Gbps\n");
  const auto sweep = exp::SweepSpec::parse(ini);
  ASSERT_EQ(sweep.axes().size(), 1u);
  EXPECT_EQ(sweep.axes()[0].values, (std::vector<std::string>{"2.5Gbps", "30Gbps"}));
}

TEST(SweepSpec, ApplyOverwritesTargetSection) {
  const auto ini = util::IniConfig::parse("[sweep]\nbricks.clients = 2,8\n");
  const auto sweep = exp::SweepSpec::parse(ini);
  auto target = util::IniConfig::parse("[bricks]\nclients = 4\n");
  sweep.apply(1, target);
  EXPECT_EQ(target.get_int("bricks", "clients", 0), 8);
}

TEST(SweepSpec, EmptySweepIsOnePoint) {
  const auto sweep = exp::SweepSpec::parse(util::IniConfig::parse(""));
  EXPECT_TRUE(sweep.empty());
  EXPECT_EQ(sweep.point_count(), 1u);
  EXPECT_TRUE(sweep.params(0).empty());
}

TEST(SweepSpec, RejectsMalformedKeys) {
  EXPECT_THROW(exp::SweepSpec::parse(util::IniConfig::parse("[sweep]\nnodot = 1,2\n")),
               util::ConfigError);
  EXPECT_THROW(exp::SweepSpec::parse(util::IniConfig::parse("[sweep]\ntrailing. = 1,2\n")),
               util::ConfigError);
}

// --- campaign spec -----------------------------------------------------------

TEST(CampaignSpec, DefaultsAndValidation) {
  const auto spec = exp::CampaignSpec::parse(util::IniConfig::parse(""));
  EXPECT_EQ(spec.replications, 5u);
  EXPECT_EQ(spec.warmup, 0u);
  EXPECT_DOUBLE_EQ(spec.confidence, 0.95);
  EXPECT_EQ(spec.workers, 1u);
  EXPECT_FALSE(spec.timing);

  EXPECT_THROW(
      exp::CampaignSpec::parse(util::IniConfig::parse("[campaign]\nreplications = 0\n")),
      util::ConfigError);
  EXPECT_THROW(exp::CampaignSpec::parse(
                   util::IniConfig::parse("[campaign]\nreplications = 3\nwarmup = 3\n")),
               util::ConfigError);
  EXPECT_THROW(
      exp::CampaignSpec::parse(util::IniConfig::parse("[campaign]\nconfidence = 0.99\n")),
      util::ConfigError);
}

TEST(CampaignSpec, RejectsNegativeValuesBeforeTheUnsignedCast) {
  // A negative INI integer must be rejected as written, not wrap into a
  // huge std::size_t (replications = -3 once meant ~2^64 runs).
  EXPECT_THROW(
      exp::CampaignSpec::parse(util::IniConfig::parse("[campaign]\nreplications = -3\n")),
      util::ConfigError);
  EXPECT_THROW(exp::CampaignSpec::parse(util::IniConfig::parse("[campaign]\nwarmup = -1\n")),
               util::ConfigError);
  EXPECT_THROW(exp::CampaignSpec::parse(util::IniConfig::parse("[campaign]\nworkers = -2\n")),
               util::ConfigError);
  try {
    exp::CampaignSpec::parse(util::IniConfig::parse("[campaign]\nreplications = -3\n"));
  } catch (const util::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("-3"), std::string::npos) << e.what();
  }
}

// --- substream seeding -------------------------------------------------------

TEST(SubstreamSeed, DeterministicAndDistinct) {
  std::set<std::uint64_t> seen;
  for (std::size_t r = 0; r < 100; ++r) {
    const auto s = exp::substream_seed(42, r);
    EXPECT_EQ(s, exp::substream_seed(42, r));  // pure function
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 100u);                              // no collisions
  EXPECT_NE(exp::substream_seed(42, 0), exp::substream_seed(43, 0));  // base matters
}

// --- end-to-end campaigns ----------------------------------------------------

namespace {

util::IniConfig bricks_campaign(std::size_t replications, std::size_t warmup) {
  auto ini = util::IniConfig::parse(
      "[scenario]\n"
      "facade = bricks\n"
      "seed = 7\n"
      "[bricks]\n"
      "clients = 3\n"
      "jobs_per_client = 5\n"
      "[sweep]\n"
      "bricks.server_cores = 1,2\n");
  ini.set("campaign", "replications", std::to_string(replications));
  ini.set("campaign", "warmup", std::to_string(warmup));
  return ini;
}

const exp::MetricStats* find_metric(const exp::PointResult& point, const std::string& name) {
  for (const auto& [n, ms] : point.metrics) {
    if (n == name) return &ms;
  }
  return nullptr;
}

}  // namespace

TEST(Campaign, ReportIsByteIdenticalAcrossWorkerCounts) {
  // The determinism acceptance gate: workers must not leak into the output.
  exp::Campaign c1(bricks_campaign(5, 0));
  c1.set_workers(1);
  const std::string r1 = c1.run().to_json_string();

  exp::Campaign c4(bricks_campaign(5, 0));
  c4.set_workers(4);
  const std::string r4 = c4.run().to_json_string();
  EXPECT_EQ(r1, r4);

  // And across repeated runs with the same seed.
  exp::Campaign again(bricks_campaign(5, 0));
  again.set_workers(4);
  EXPECT_EQ(r4, again.run().to_json_string());
}

TEST(Campaign, AggregatesMakespanAndUtilizationWithCI) {
  exp::Campaign campaign(bricks_campaign(5, 0));
  campaign.set_workers(2);
  const auto result = campaign.run();
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_EQ(result.runs, 10u);
  EXPECT_EQ(result.seeds.size(), 5u);

  for (const auto& point : result.points) {
    const auto* makespan = find_metric(point, "makespan");
    const auto* util_m = find_metric(point, "server_utilization");
    ASSERT_NE(makespan, nullptr);
    ASSERT_NE(util_m, nullptr);
    EXPECT_EQ(makespan->n, 5u);
    EXPECT_GT(makespan->mean, 0.0);
    EXPECT_GE(makespan->ci95, 0.0);
    EXPECT_GE(makespan->max, makespan->min);
    EXPECT_GT(util_m->mean, 0.0);
    EXPECT_LE(util_m->mean, 1.0);
  }
  // Substream seeds differ, so replications genuinely vary: a scalar that
  // depends on the RNG should have a non-degenerate spread.
  const auto* resp = find_metric(result.points[0], "mean_response_s");
  ASSERT_NE(resp, nullptr);
  EXPECT_GT(resp->stddev, 0.0);
  EXPECT_GT(resp->ci95, 0.0);
}

TEST(Campaign, WarmupDeletionShrinksSampleCount) {
  exp::Campaign campaign(bricks_campaign(6, 2));
  const auto result = campaign.run();
  const auto* makespan = find_metric(result.points[0], "makespan");
  ASSERT_NE(makespan, nullptr);
  EXPECT_EQ(makespan->n, 4u);  // 6 replications - 2 warmup
  EXPECT_EQ(result.runs, 12u);  // warmup replications still executed
}

TEST(Campaign, SecondFacadeMonarcSweepsTheLink) {
  // Campaigns are facade-agnostic: the MONARC data grid aggregates through
  // the same path, and common random numbers pair the two link points.
  auto ini = util::IniConfig::parse(
      "[scenario]\n"
      "facade = monarc\n"
      "seed = 2005\n"
      "queue = calendar\n"
      "[monarc]\n"
      "t1 = 2\n"
      "files = 8\n"
      "file_size = 2GB\n"
      "interval = 10s\n"
      "[sweep]\n"
      "monarc.link = 2.5Gbps|30Gbps\n"
      "[campaign]\n"
      "replications = 5\n"
      "workers = 2\n");
  exp::Campaign campaign(ini);
  const auto result = campaign.run();
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_EQ(result.points[0].params[0].first, "monarc.link");

  const auto* slow = find_metric(result.points[0], "makespan");
  const auto* fast = find_metric(result.points[1], "makespan");
  const auto* lutil = find_metric(result.points[0], "link_utilization");
  ASSERT_NE(slow, nullptr);
  ASSERT_NE(fast, nullptr);
  ASSERT_NE(lutil, nullptr);
  EXPECT_EQ(slow->n, 5u);
  // 12x the bandwidth cannot make the campaign slower.
  EXPECT_LE(fast->mean, slow->mean + 1e-9);
  EXPECT_GT(lutil->mean, 0.0);
}

TEST(Campaign, UnknownFacadeThrows) {
  const auto ini = util::IniConfig::parse("[scenario]\nfacade = nosuch\n");
  EXPECT_THROW(exp::Campaign{ini}, util::ConfigError);
}

// --- strict validation of the campaign sections ------------------------------

TEST(CampaignStrict, SweepKeysValidateAgainstFacadeDeclarations) {
  sim::register_builtin_facades();
  const auto* entry = sim::FacadeRegistry::global().find("bricks");
  ASSERT_NE(entry, nullptr);

  const auto good = util::IniConfig::parse(
      "[scenario]\nfacade = bricks\n"
      "[sweep]\nbricks.clients = 2,4\n"
      "[campaign]\nreplications = 3\n");
  EXPECT_NO_THROW(sim::validate_scenario_keys(good, *entry));

  const auto typo = util::IniConfig::parse(
      "[scenario]\nfacade = bricks\n[sweep]\nbricks.clyents = 2,4\n");
  EXPECT_THROW(sim::validate_scenario_keys(typo, *entry), util::ConfigError);

  const auto seed_sweep = util::IniConfig::parse(
      "[scenario]\nfacade = bricks\n[sweep]\nscenario.seed = 1,2\n");
  EXPECT_THROW(sim::validate_scenario_keys(seed_sweep, *entry), util::ConfigError);

  const auto bad_campaign_key = util::IniConfig::parse(
      "[scenario]\nfacade = bricks\n[campaign]\nreplicas = 3\n");
  EXPECT_THROW(sim::validate_scenario_keys(bad_campaign_key, *entry), util::ConfigError);
}
