// Dependability layer: fail-stop crash semantics on CPUs and links,
// transfer retry, recovery policies, and the fault-tolerant scheduler.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "hosts/cpu.hpp"
#include "middleware/failures.hpp"
#include "middleware/recovery.hpp"
#include "net/flow.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "net/transfer.hpp"

namespace core = lsds::core;
namespace hosts = lsds::hosts;
namespace net = lsds::net;
namespace mw = lsds::middleware;

// --- fail-stop CPU semantics -------------------------------------------------

TEST(FailStopCpu, KillReportsRunningAndQueuedJobs) {
  core::Engine eng;
  hosts::CpuResource cpu(eng, "n", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
  cpu.set_failure_semantics(core::FailureSemantics::kFailStop);
  std::vector<std::pair<hosts::JobId, double>> killed;
  cpu.set_killed_handler([&](hosts::JobId id, double lost) { killed.emplace_back(id, lost); });
  bool done = false;
  cpu.submit(1, 1000.0, [&](hosts::JobId) { done = true; });  // runs
  cpu.submit(2, 500.0, [&](hosts::JobId) { done = true; });   // queued
  eng.schedule_at(2.0, [&] { cpu.set_online(false); });
  eng.schedule_at(3.0, [&] { cpu.set_online(true); });
  eng.run();
  EXPECT_FALSE(done);  // fail-stop loses the work; no completion fires
  ASSERT_EQ(killed.size(), 2u);
  EXPECT_EQ(killed[0].first, 1u);
  EXPECT_DOUBLE_EQ(killed[0].second, 200.0);  // 2 s at 100 ops/s lost
  EXPECT_EQ(killed[1].first, 2u);
  EXPECT_DOUBLE_EQ(killed[1].second, 0.0);  // queued: nothing lost
  EXPECT_EQ(cpu.jobs_killed(), 2u);
  EXPECT_TRUE(cpu.online());  // repair brings the (empty) node back
}

TEST(FailStopCpu, FailResumeDefaultStillPauses) {
  core::Engine eng;
  hosts::CpuResource cpu(eng, "n", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
  // Default semantics: the same outage only stretches the job.
  double done_at = -1;
  cpu.submit(1, 1000.0, [&](hosts::JobId) { done_at = eng.now(); });
  eng.schedule_at(2.0, [&] { cpu.set_online(false); });
  eng.schedule_at(3.0, [&] { cpu.set_online(true); });
  eng.run();
  EXPECT_DOUBLE_EQ(done_at, 11.0);
  EXPECT_EQ(cpu.jobs_killed(), 0u);
}

TEST(FailStopCpu, CancelReturnsProgressAndFreesCore) {
  core::Engine eng;
  hosts::CpuResource cpu(eng, "n", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
  bool first_done = false;
  double second_at = -1;
  cpu.submit(1, 1000.0, [&](hosts::JobId) { first_done = true; });
  cpu.submit(2, 500.0, [&](hosts::JobId) { second_at = eng.now(); });
  eng.schedule_at(2.0, [&] {
    double done_ops = -1;
    EXPECT_TRUE(cpu.cancel(1, &done_ops));
    EXPECT_DOUBLE_EQ(done_ops, 200.0);
    EXPECT_FALSE(cpu.cancel(1));  // already gone
  });
  eng.run();
  EXPECT_FALSE(first_done);
  EXPECT_DOUBLE_EQ(second_at, 7.0);  // starts at the cancel, 5 s service
}

TEST(FailStopCpu, AvailabilityTracksDowntime) {
  core::Engine eng;
  hosts::CpuResource cpu(eng, "n", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
  eng.schedule_at(2.0, [&] { cpu.set_online(false); });
  eng.schedule_at(5.0, [&] { cpu.set_online(true); });
  eng.schedule_at(10.0, [] {});
  eng.run();
  EXPECT_DOUBLE_EQ(cpu.downtime(), 3.0);
  EXPECT_DOUBLE_EQ(cpu.availability(10.0), 0.7);
}

TEST(FailStopCpu, OnlineObserverFiresAfterRepair) {
  core::Engine eng;
  hosts::CpuResource cpu(eng, "n", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
  std::vector<std::pair<double, bool>> seen;
  cpu.set_online_observer([&](bool up) { seen.emplace_back(eng.now(), up); });
  eng.schedule_at(1.0, [&] { cpu.set_online(false); });
  eng.schedule_at(4.0, [&] { cpu.set_online(true); });
  eng.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair{1.0, false}));
  EXPECT_EQ(seen[1], (std::pair{4.0, true}));
}

// --- fail-stop links: flow aborts and transfer retry -------------------------

namespace {

struct TwoNodeNet {
  net::Topology topo;
  net::NodeId a, b;
  std::unique_ptr<net::Routing> routing;
  std::unique_ptr<net::FlowNetwork> fn;

  explicit TwoNodeNet(core::Engine& eng, double bw = 1e6) {
    a = topo.add_node("a");
    b = topo.add_node("b");
    topo.add_link(a, b, bw, 0);
    routing = std::make_unique<net::Routing>(topo);
    fn = std::make_unique<net::FlowNetwork>(eng, *routing);
  }
};

}  // namespace

TEST(FailStopNet, LinkDownAbortsInFlightFlow) {
  core::Engine eng;
  TwoNodeNet n(eng);
  n.fn->set_failure_semantics(core::FailureSemantics::kFailStop);
  double done_at = -1, error_at = -1;
  n.fn->start_flow_checked(
      n.a, n.b, 2e6, [&](net::FlowId) { done_at = eng.now(); },
      [&](net::FlowId) { error_at = eng.now(); });
  eng.schedule_at(1.0, [&] { n.fn->set_link_up(0, false); });
  eng.schedule_at(2.0, [&] { n.fn->set_link_up(0, true); });
  eng.run();
  EXPECT_DOUBLE_EQ(error_at, 1.0);  // abort at the outage, not a silent stall
  EXPECT_DOUBLE_EQ(done_at, -1);
  EXPECT_EQ(n.fn->flows_aborted(), 1u);
}

TEST(FailStopNet, DialOnDeadLinkIsRefused) {
  core::Engine eng;
  TwoNodeNet n(eng);
  n.fn->set_failure_semantics(core::FailureSemantics::kFailStop);
  n.fn->set_link_up(0, false);
  double error_at = -1;
  eng.schedule_at(3.0, [&] {
    n.fn->start_flow_checked(
        n.a, n.b, 1e6, [](net::FlowId) { FAIL() << "dead link completed a flow"; },
        [&](net::FlowId) { error_at = eng.now(); });
  });
  eng.run();
  EXPECT_DOUBLE_EQ(error_at, 3.0);
  EXPECT_EQ(n.fn->flows_aborted(), 1u);
}

TEST(TransferRetry, RedialsAfterAbortWithBackoff) {
  core::Engine eng;
  TwoNodeNet n(eng);
  n.fn->set_failure_semantics(core::FailureSemantics::kFailStop);
  net::TransferService::Config cfg;
  cfg.max_attempts = 5;
  cfg.retry_backoff = 0.5;
  net::TransferService ftp(eng, *n.fn, cfg);
  net::TransferRecord rec;
  ftp.submit(n.a, n.b, 2e6, [&](const net::TransferRecord& r) { rec = r; });
  eng.schedule_at(1.0, [&] { n.fn->set_link_up(0, false); });
  eng.schedule_at(1.2, [&] { n.fn->set_link_up(0, true); });
  eng.run();
  // Abort at t=1, re-dial at t=1.5, full 2 s transfer again.
  EXPECT_FALSE(rec.failed);
  EXPECT_EQ(rec.attempts, 2u);
  EXPECT_NEAR(rec.finish_time, 3.5, 1e-6);
  EXPECT_EQ(ftp.retries(), 1u);
  EXPECT_EQ(ftp.completed(), 1u);
  EXPECT_EQ(ftp.failed(), 0u);
}

TEST(TransferRetry, GivesUpAfterMaxAttempts) {
  core::Engine eng;
  TwoNodeNet n(eng);
  n.fn->set_failure_semantics(core::FailureSemantics::kFailStop);
  net::TransferService::Config cfg;
  cfg.max_attempts = 1;  // no retry
  net::TransferService ftp(eng, *n.fn, cfg);
  net::TransferRecord rec;
  ftp.submit(n.a, n.b, 2e6, [&](const net::TransferRecord& r) { rec = r; });
  eng.schedule_at(1.0, [&] { n.fn->set_link_up(0, false); });
  eng.schedule_at(2.0, [&] { n.fn->set_link_up(0, true); });
  eng.run();
  EXPECT_TRUE(rec.failed);
  EXPECT_EQ(rec.attempts, 1u);
  EXPECT_EQ(ftp.failed(), 1u);
  EXPECT_EQ(ftp.completed(), 0u);
}

// --- recovery policies -------------------------------------------------------

namespace {

/// A farm the scheduler can own: speeds[i] per host, one core each.
struct Farm {
  std::vector<std::unique_ptr<hosts::CpuResource>> owned;
  std::vector<hosts::CpuResource*> cpus;

  Farm(core::Engine& eng, std::vector<double> speeds) {
    for (std::size_t i = 0; i < speeds.size(); ++i) {
      owned.push_back(std::make_unique<hosts::CpuResource>(
          eng, "h" + std::to_string(i), 1, speeds[i], hosts::SharingPolicy::kSpaceShared));
      cpus.push_back(owned.back().get());
    }
  }
};

hosts::Job make_job(hosts::JobId id, double ops) {
  hosts::Job j;
  j.id = id;
  j.ops = ops;
  return j;
}

}  // namespace

TEST(RecoveryPolicy, RetryPinsToCrashedResource) {
  core::Engine eng;
  Farm farm(eng, {1000.0, 100.0});  // h0 fast (job 10 s), h1 slow (100 s)
  mw::RecoveryConfig cfg;
  cfg.policy = mw::RecoveryPolicyKind::kRetry;
  cfg.backoff_base = 1.0;
  mw::FaultTolerantScheduler sched(eng, farm.cpus, mw::Heuristic::kFifo, cfg);
  sched.submit(make_job(1, 10000.0));  // lands on the fast host
  double done_at = -1;
  sched.run([&](const hosts::Job& j) { done_at = j.finish_time; });
  eng.schedule_at(2.0, [&] { farm.cpus[0]->set_online(false); });
  eng.schedule_at(3.0, [&] { farm.cpus[0]->set_online(true); });
  eng.run();
  // Killed at 2, backoff gate at 3, full re-run on the SAME (fast) host:
  // 3 + 10 = 13. Migrating to the idle slow host would finish near 102.
  EXPECT_DOUBLE_EQ(done_at, 13.0);
  EXPECT_EQ(sched.kills(), 1u);
  EXPECT_EQ(sched.completed(), 1u);
}

TEST(RecoveryPolicy, ResubmitBlacklistsAndMigrates) {
  core::Engine eng;
  Farm farm(eng, {1000.0, 100.0});
  mw::RecoveryConfig cfg;
  cfg.policy = mw::RecoveryPolicyKind::kResubmit;
  cfg.blacklist_duration = 1000.0;  // crashed host is out for the whole run
  mw::FaultTolerantScheduler sched(eng, farm.cpus, mw::Heuristic::kMinMin, cfg);
  sched.submit(make_job(1, 10000.0));
  double done_at = -1;
  sched.run([&](const hosts::Job& j) { done_at = j.finish_time; });
  eng.schedule_at(2.0, [&] { farm.cpus[0]->set_online(false); });
  eng.schedule_at(3.0, [&] { farm.cpus[0]->set_online(true); });
  eng.run();
  // Killed at 2, immediately re-dispatched to the other host: 2 + 100.
  EXPECT_DOUBLE_EQ(done_at, 102.0);
  EXPECT_DOUBLE_EQ(sched.dependability().attempts().mean(), 2.0);
}

TEST(RecoveryPolicy, CheckpointLosesOnlyCurrentSegment) {
  core::Engine eng;
  Farm farm(eng, {1.0});  // speed 1: ops == seconds
  mw::RecoveryConfig cfg;
  cfg.policy = mw::RecoveryPolicyKind::kCheckpoint;
  cfg.checkpoint_interval_ops = 4.0;
  cfg.checkpoint_overhead_ops = 0.0;
  cfg.backoff_base = 1.0;
  mw::FaultTolerantScheduler sched(eng, farm.cpus, mw::Heuristic::kFifo, cfg);
  sched.submit(make_job(1, 10.0));
  double done_at = -1;
  sched.run([&](const hosts::Job& j) { done_at = j.finish_time; });
  // Segment [0,4) commits; crash 1 s into the second segment.
  eng.schedule_at(5.0, [&] { farm.cpus[0]->set_online(false); });
  eng.schedule_at(5.5, [&] { farm.cpus[0]->set_online(true); });
  eng.run();
  // Restart at 6 (backoff), 6 ops left: commit at 10, done at 12. A plain
  // restart would have lost all 5 ops and finished at 16.
  EXPECT_DOUBLE_EQ(done_at, 12.0);
  EXPECT_DOUBLE_EQ(sched.dependability().wasted_ops(), 1.0);
}

TEST(RecoveryPolicy, CheckpointChargesOverhead) {
  core::Engine eng;
  Farm farm(eng, {1.0});
  mw::RecoveryConfig cfg;
  cfg.policy = mw::RecoveryPolicyKind::kCheckpoint;
  cfg.checkpoint_interval_ops = 5.0;
  cfg.checkpoint_overhead_ops = 1.0;
  mw::FaultTolerantScheduler sched(eng, farm.cpus, mw::Heuristic::kFifo, cfg);
  sched.submit(make_job(1, 10.0));
  double done_at = -1;
  sched.run([&](const hosts::Job& j) { done_at = j.finish_time; });
  eng.run();
  // One commit (5+1 ops) plus the 5-op tail, failure-free: 11 s total.
  EXPECT_DOUBLE_EQ(done_at, 11.0);
  EXPECT_DOUBLE_EQ(sched.dependability().overhead_ops(), 1.0);
  EXPECT_DOUBLE_EQ(sched.dependability().useful_ops(), 10.0);
}

TEST(RecoveryPolicy, ReplicateFirstFinisherCancelsLosers) {
  core::Engine eng;
  Farm farm(eng, {2.0, 1.0});
  mw::RecoveryConfig cfg;
  cfg.policy = mw::RecoveryPolicyKind::kReplicate;
  cfg.replicas = 2;
  mw::FaultTolerantScheduler sched(eng, farm.cpus, mw::Heuristic::kFifo, cfg);
  sched.submit(make_job(1, 10.0));
  double done_at = -1;
  sched.run([&](const hosts::Job& j) { done_at = j.finish_time; });
  eng.run();
  EXPECT_DOUBLE_EQ(done_at, 5.0);  // the speed-2 copy wins
  EXPECT_EQ(sched.completed(), 1u);
  // The cancelled copy ran 5 s at speed 1: 5 ops of duplicate work.
  EXPECT_DOUBLE_EQ(sched.dependability().wasted_ops(), 5.0);
  EXPECT_EQ(sched.kills(), 0u);
}

TEST(RecoveryPolicy, ReplicateSurvivesLosingOneCopy) {
  core::Engine eng;
  Farm farm(eng, {1.0, 1.0});
  mw::RecoveryConfig cfg;
  cfg.policy = mw::RecoveryPolicyKind::kReplicate;
  cfg.replicas = 2;
  mw::FaultTolerantScheduler sched(eng, farm.cpus, mw::Heuristic::kFifo, cfg);
  sched.submit(make_job(1, 10.0));
  double done_at = -1;
  sched.run([&](const hosts::Job& j) { done_at = j.finish_time; });
  eng.schedule_at(2.0, [&] { farm.cpus[0]->set_online(false); });
  eng.schedule_at(20.0, [&] { farm.cpus[0]->set_online(true); });
  eng.run();
  EXPECT_DOUBLE_EQ(done_at, 10.0);  // surviving replica is undisturbed
  EXPECT_EQ(sched.completed(), 1u);
  EXPECT_EQ(sched.lost(), 0u);
  EXPECT_EQ(sched.kills(), 1u);
}

TEST(RecoveryPolicy, MaxAttemptsAbandonsJob) {
  core::Engine eng;
  Farm farm(eng, {100.0});
  mw::RecoveryConfig cfg;
  cfg.policy = mw::RecoveryPolicyKind::kRetry;
  cfg.max_attempts = 1;
  mw::FaultTolerantScheduler sched(eng, farm.cpus, mw::Heuristic::kFifo, cfg);
  sched.submit(make_job(1, 1000.0));
  bool lost = false;
  sched.run(nullptr, [&](const hosts::Job&) { lost = true; });
  eng.schedule_at(2.0, [&] { farm.cpus[0]->set_online(false); });
  eng.schedule_at(3.0, [&] { farm.cpus[0]->set_online(true); });
  eng.run();
  EXPECT_TRUE(lost);
  EXPECT_EQ(sched.lost(), 1u);
  EXPECT_EQ(sched.completed(), 0u);
  EXPECT_EQ(sched.dependability().jobs_lost(), 1u);
}

// --- acceptance: every policy survives sustained chaos -----------------------

namespace {

/// 1000-job bag on 8 hosts with MTBF comparable to the mean job length:
/// outages land mid-job routinely, and every job must still finish.
void run_chaos_bag(mw::RecoveryPolicyKind policy) {
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 1234});
  Farm farm(eng, std::vector<double>(8, 1000.0));

  mw::FailureInjector chaos(eng);
  for (auto* cpu : farm.cpus) chaos.add_cpu(*cpu);
  chaos.start(/*mtbf=*/2.0, /*mttr=*/0.5, /*t_end=*/1e6);

  mw::RecoveryConfig cfg;
  cfg.policy = policy;
  cfg.backoff_base = 0.25;
  cfg.checkpoint_interval_ops = 500.0;
  cfg.checkpoint_overhead_ops = 25.0;
  cfg.replicas = 2;
  mw::FaultTolerantScheduler sched(eng, farm.cpus, mw::Heuristic::kSjf, cfg);

  constexpr std::size_t kJobs = 1000;
  auto& rng = eng.rng("bag");
  for (std::size_t j = 0; j < kJobs; ++j) {
    sched.submit(make_job(j + 1, rng.exponential(2000.0)));  // ~2 s mean
  }
  std::size_t settled = 0;
  const auto on_settled = [&](const hosts::Job&) {
    if (++settled == kJobs) eng.stop();
  };
  sched.run(on_settled, on_settled);
  eng.run();

  EXPECT_EQ(sched.completed(), kJobs) << mw::to_string(policy);
  EXPECT_EQ(sched.lost(), 0u) << mw::to_string(policy);
  EXPECT_GT(sched.kills(), 0u) << mw::to_string(policy);
  EXPECT_GT(sched.dependability().wasted_ops(), 0.0) << mw::to_string(policy);
  sched.finalize_availability(sched.makespan());
  const double avail = sched.dependability().mean_availability();
  EXPECT_GT(avail, 0.5) << mw::to_string(policy);
  EXPECT_LT(avail, 1.0) << mw::to_string(policy);
}

}  // namespace

TEST(ChaosBag, RetryCompletesEverything) { run_chaos_bag(mw::RecoveryPolicyKind::kRetry); }
TEST(ChaosBag, ResubmitCompletesEverything) {
  run_chaos_bag(mw::RecoveryPolicyKind::kResubmit);
}
TEST(ChaosBag, CheckpointCompletesEverything) {
  run_chaos_bag(mw::RecoveryPolicyKind::kCheckpoint);
}
TEST(ChaosBag, ReplicateCompletesEverything) {
  run_chaos_bag(mw::RecoveryPolicyKind::kReplicate);
}
