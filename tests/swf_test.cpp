// Standard Workload Format: parsing, export round-trip, generation, and
// end-to-end replay into the batch queue.
#include <gtest/gtest.h>

#include "apps/swf.hpp"
#include "core/engine.hpp"
#include "middleware/batch_queue.hpp"

namespace apps = lsds::apps;
namespace core = lsds::core;
namespace mw = lsds::middleware;

TEST(Swf, ParsesFieldsAndSkipsComments) {
  const auto jobs = apps::parse_swf(
      "; SWF header comment\n"
      ";  MaxNodes: 128\n"
      "1 0.0 5 100.5 4 -1 -1 4 200 -1 1 1 1 1 1 1 -1 -1\n"
      "2 10.0 -1 50 -1 -1 -1 8 -1 -1 1 1 1 1 1 1 -1 -1\n");
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].job.id, 1u);
  EXPECT_DOUBLE_EQ(jobs[0].submit_time, 0.0);
  EXPECT_DOUBLE_EQ(jobs[0].job.runtime_actual, 100.5);
  EXPECT_EQ(jobs[0].job.cores, 4u);
  EXPECT_DOUBLE_EQ(jobs[0].job.runtime_estimate, 200.0);  // requested time
  // Job 2: allocated procs missing -> requested; estimate missing -> actual.
  EXPECT_EQ(jobs[1].job.cores, 8u);
  EXPECT_DOUBLE_EQ(jobs[1].job.runtime_estimate, 50.0);
}

TEST(Swf, SkipsCancelledEntries) {
  const auto jobs = apps::parse_swf(
      "1 0 -1 -1 4 -1 -1 4 100 -1 5 1 1 1 1 1 -1 -1\n"   // runtime -1: skipped
      "2 0 -1 100 -1 -1 -1 -1 -1 -1 5 1 1 1 1 1 -1 -1\n" // no procs: skipped
      "3 0 -1 100 2 -1 -1 2 150 -1 1 1 1 1 1 1 -1 -1\n");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].job.id, 3u);
}

TEST(Swf, MalformedLineThrows) {
  EXPECT_THROW(apps::parse_swf("1 2 3\n"), std::runtime_error);
  EXPECT_THROW(apps::parse_swf("x 0 -1 100 2 -1 -1 2 150\n"), std::runtime_error);
}

TEST(Swf, ExportRoundTrip) {
  core::RngStream rng(4);
  const auto orig = apps::generate_swf_like(rng, 50, 5.0, 60.0, 32);
  const auto back = apps::parse_swf(apps::to_swf(orig));
  ASSERT_EQ(back.size(), orig.size());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    EXPECT_EQ(back[i].job.id, orig[i].job.id);
    EXPECT_EQ(back[i].job.cores, orig[i].job.cores);
    EXPECT_NEAR(back[i].submit_time, orig[i].submit_time, 1e-3);
    EXPECT_NEAR(back[i].job.runtime_actual, orig[i].job.runtime_actual, 1e-3);
    EXPECT_NEAR(back[i].job.runtime_estimate, orig[i].job.runtime_estimate, 1e-3);
  }
}

TEST(Swf, GeneratorShape) {
  core::RngStream rng(5);
  const auto jobs = apps::generate_swf_like(rng, 400, 10.0, 100.0, 64, 3.0);
  ASSERT_EQ(jobs.size(), 400u);
  double sum_gap = 0, prev = 0;
  for (const auto& j : jobs) {
    EXPECT_GE(j.job.cores, 1u);
    EXPECT_LE(j.job.cores, 64u);
    EXPECT_GE(j.job.runtime_estimate, j.job.runtime_actual);       // padded
    EXPECT_LE(j.job.runtime_estimate, j.job.runtime_actual * 3.0 + 1e-9);
    EXPECT_GE(j.submit_time, prev);
    sum_gap += j.submit_time - prev;
    prev = j.submit_time;
  }
  EXPECT_NEAR(sum_gap / 400.0, 10.0, 2.0);
}

TEST(Swf, ReplayIntoBatchQueue) {
  core::RngStream rng(6);
  const auto jobs = apps::generate_swf_like(rng, 100, 5.0, 60.0, 16);
  core::Engine eng;
  mw::BatchQueue q(eng, 16, mw::BatchPolicy::kEasyBackfill);
  for (const auto& j : jobs) {
    eng.schedule_at(j.submit_time, [&q, job = j.job] { q.submit(job); });
  }
  eng.run();
  EXPECT_EQ(q.completed(), 100u);
  EXPECT_EQ(q.queued(), 0u);
  EXPECT_EQ(q.running(), 0u);
}
