// Exhaustive event-ordering exploration: the recovery layer is verified
// over every interleaving of simultaneous events; a deliberately broken
// recovery policy yields a minimized, replayable counterexample.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/event_queue.hpp"
#include "core/hash.hpp"
#include "hosts/cpu.hpp"
#include "mc/explorer.hpp"
#include "mc/invariants.hpp"
#include "mc/recovery_model.hpp"
#include "middleware/recovery.hpp"

namespace core = lsds::core;
namespace hosts = lsds::hosts;
namespace mw = lsds::middleware;
namespace mc = lsds::mc;

namespace {

mc::Invariants all_builtins() {
  mc::Invariants inv;
  for (const auto& name : mc::Invariants::builtin_names()) inv.add_builtin(name);
  return inv;
}

mc::RecoveryScenario contended_scenario(mw::RecoveryPolicyKind policy) {
  mc::RecoveryScenario s;  // 2 hosts, 3 equal jobs, crash at the completion tie
  s.recovery.policy = policy;
  s.recovery.backoff_base = 1.0;  // re-dispatch ties with the repair
  return s;
}

// --- invariant registry ---------------------------------------------------

TEST(Invariants, BuiltinNamesAndUnknownRejection) {
  const auto& names = mc::Invariants::builtin_names();
  ASSERT_EQ(names.size(), 3u);
  mc::Invariants inv;
  for (const auto& n : names) EXPECT_NO_THROW(inv.add_builtin(n));
  EXPECT_EQ(inv.size(), 3u);
  EXPECT_THROW(inv.add_builtin("no-such-invariant"), std::invalid_argument);
}

TEST(Invariants, CustomCheckReportsFirstFailure) {
  mc::Invariants inv;
  inv.add("always-ok", [](const mc::CheckContext&) { return std::string(); });
  inv.add("always-bad", [](const mc::CheckContext&) { return std::string("broken"); });
  mc::CheckContext ctx;
  const auto r = inv.check(ctx);
  EXPECT_EQ(r.index, 1u);
  EXPECT_EQ(r.message, "broken");
  EXPECT_EQ(inv.name(r.index), "always-bad");
}

TEST(Invariants, AllPassingReturnsSize) {
  mc::Invariants inv;
  inv.add("ok", [](const mc::CheckContext&) { return std::string(); });
  mc::CheckContext ctx;
  EXPECT_EQ(inv.check(ctx).index, inv.size());
  EXPECT_TRUE(inv.check(ctx).message.empty());
}

TEST(Invariants, BuiltinsPassVacuouslyWithoutScheduler) {
  mc::Invariants inv = all_builtins();
  mc::CheckContext ctx;  // scheduler == nullptr
  ctx.terminal = true;
  EXPECT_EQ(inv.check(ctx).index, inv.size());
}

// --- the shipped recovery scenario, all four policies ---------------------

TEST(Explorer, VerifiesAllFourRecoveryPolicies) {
  for (const auto policy : mw::kAllRecoveryPolicies) {
    const auto s = contended_scenario(policy);
    mc::Explorer ex(mc::RecoveryModel::factory(s), core::Engine::Config{}, all_builtins(),
                    mc::ExploreConfig{});
    const auto res = ex.run();
    SCOPED_TRACE(mw::to_string(policy));
    EXPECT_TRUE(res.ok()) << (res.violations.empty() ? "" : res.violations[0].message);
    EXPECT_TRUE(res.complete);
    // The whole point: more than one ordering of the tied events exists and
    // every one of them was driven through the invariants.
    EXPECT_GT(res.executions, 1u);
    EXPECT_GE(res.choice_points, 1u);
    EXPECT_GE(res.max_depth_seen, 1u);
  }
}

TEST(Explorer, SimultaneousCrashAndRepairAtOneTimestamp) {
  // repair_after = 0: the crash and the repair land at the same instant —
  // the double-start guard must hold in both orders, for every policy.
  for (const auto policy : mw::kAllRecoveryPolicies) {
    auto s = contended_scenario(policy);
    s.repair_after = 0.0;
    mc::Explorer ex(mc::RecoveryModel::factory(s), core::Engine::Config{}, all_builtins(),
                    mc::ExploreConfig{});
    const auto res = ex.run();
    SCOPED_TRACE(mw::to_string(policy));
    EXPECT_TRUE(res.ok()) << (res.violations.empty() ? "" : res.violations[0].message);
    EXPECT_TRUE(res.complete);
    EXPECT_GT(res.executions, 1u);
  }
}

TEST(Explorer, FaultTimingChoicesWidenTheTree) {
  auto fixed = contended_scenario(mw::RecoveryPolicyKind::kRetry);
  mc::Explorer ex_fixed(mc::RecoveryModel::factory(fixed), core::Engine::Config{}, all_builtins(),
                        mc::ExploreConfig{});
  const auto res_fixed = ex_fixed.run();

  auto chosen = contended_scenario(mw::RecoveryPolicyKind::kRetry);
  chosen.fault_choices = {2.0, 4.0, 8.0};
  mc::Explorer ex_chosen(mc::RecoveryModel::factory(chosen), core::Engine::Config{},
                         all_builtins(), mc::ExploreConfig{});
  const auto res_chosen = ex_chosen.run();

  EXPECT_TRUE(res_fixed.ok());
  EXPECT_TRUE(res_chosen.ok());
  EXPECT_TRUE(res_chosen.complete);
  // When the crash lands is one more explored dimension.
  EXPECT_GT(res_chosen.executions, res_fixed.executions);
}

TEST(Explorer, DepthCapReportedAndStillSound) {
  auto s = contended_scenario(mw::RecoveryPolicyKind::kRetry);
  mc::ExploreConfig ec;
  ec.max_depth = 1;
  mc::Explorer ex(mc::RecoveryModel::factory(s), core::Engine::Config{}, all_builtins(), ec);
  const auto res = ex.run();
  EXPECT_TRUE(res.ok());
  EXPECT_TRUE(res.depth_capped);
  EXPECT_FALSE(res.complete);  // capped exploration must not claim exhaustiveness
}

TEST(Explorer, StateCapReported) {
  auto s = contended_scenario(mw::RecoveryPolicyKind::kRetry);
  mc::ExploreConfig ec;
  ec.max_states = 1;
  mc::Explorer ex(mc::RecoveryModel::factory(s), core::Engine::Config{}, all_builtins(), ec);
  const auto res = ex.run();
  EXPECT_TRUE(res.state_capped);
  EXPECT_FALSE(res.complete);
}

// --- a deliberately broken recovery policy --------------------------------

// One host, one job, one crash. The killed-handler retry is careful (it
// checks the host is back before re-dispatching) but the online observer
// is not: on repair it re-dispatches whenever the job is unfinished,
// without checking for an in-flight copy. The retry and the repair tie at
// t = 3; in the default order the retry runs first, finds the host still
// down, and stands down — the bug is invisible. The explorer finds the
// other order: repair dispatches a copy, then the retry sees the host
// online and dispatches a second one.
class BrokenRecoveryModel : public mc::Model {
 public:
  explicit BrokenRecoveryModel(core::Engine& eng) : eng_(eng) {
    cpu_ = std::make_unique<hosts::CpuResource>(eng_, "c0", 1, 1.0,
                                                hosts::SharingPolicy::kSpaceShared);
    cpu_->set_failure_semantics(core::FailureSemantics::kFailStop);
    cpu_->set_killed_handler([this](hosts::JobId, double) {
      eng_.schedule_in(1.0, [this] {
        if (!finished_ && cpu_->online()) dispatch();
      });
    });
    cpu_->set_online_observer([this](bool up) {
      if (up && !finished_) dispatch();  // the bug: no in-flight check
    });
    eng_.schedule_at(0.0, [this] { dispatch(); });
    eng_.schedule_at(2.0, [this] {
      cpu_->set_online(false);  // kill fires first: the retry gets the lower seq
      eng_.schedule_in(1.0, [this] { cpu_->set_online(true); });
    });
  }

  void hash_state(core::StateHash& h) const override {
    h.mix(static_cast<std::uint64_t>(finished_));
    cpu_->state_digest(h);
  }

  mc::CheckContext context(bool terminal) override {
    mc::CheckContext ctx;
    ctx.engine = &eng_;
    ctx.cpus = {cpu_.get()};
    ctx.num_jobs = 1;
    ctx.terminal = terminal;
    return ctx;
  }

 private:
  void dispatch() {
    cpu_->submit(1, 4.0, [this](hosts::JobId) { finished_ = true; });
  }

  core::Engine& eng_;
  std::unique_ptr<hosts::CpuResource> cpu_;
  bool finished_ = false;
};

mc::ModelFactory broken_factory() {
  return [](core::Engine& eng) -> std::unique_ptr<mc::Model> {
    return std::make_unique<BrokenRecoveryModel>(eng);
  };
}

mc::Invariants single_copy_invariant() {
  mc::Invariants inv;
  inv.add("single-copy", [](const mc::CheckContext& ctx) -> std::string {
    std::size_t copies = 0;
    for (const auto* cpu : ctx.cpus) copies += cpu->running() + cpu->queued();
    if (copies <= 1) return "";
    return "the one job has " + std::to_string(copies) + " live copies";
  });
  return inv;
}

TEST(Explorer, BrokenPolicyYieldsMinimizedReplayableCounterexample) {
  mc::Explorer ex(broken_factory(), core::Engine::Config{}, single_copy_invariant(),
                  mc::ExploreConfig{});
  const auto res = ex.run();
  ASSERT_FALSE(res.ok());
  ASSERT_EQ(res.violations.size(), 1u);
  const mc::Violation& v = res.violations[0];
  EXPECT_EQ(v.invariant, "single-copy");
  EXPECT_DOUBLE_EQ(v.time, 3.0);  // the retry/repair tie
  EXPECT_GT(v.execution, 1u);     // the default order is clean

  // Minimization: exactly one non-default decision survives.
  ASSERT_EQ(v.schedule.size(), 1u);
  EXPECT_NE(v.schedule[0], 0u);
  ASSERT_FALSE(v.trace.empty());

  // The counterexample replays: same violation, byte-identical trace.
  const auto replay = mc::replay_schedule(broken_factory(), core::Engine::Config{},
                                          single_copy_invariant(), v.schedule);
  EXPECT_TRUE(replay.violated);
  EXPECT_EQ(replay.invariant, v.invariant);
  EXPECT_EQ(replay.message, v.message);
  EXPECT_DOUBLE_EQ(replay.violation_time, v.time);
  EXPECT_EQ(replay.trace, v.trace);

  // ...and the default order really is clean.
  const auto clean = mc::replay_schedule(broken_factory(), core::Engine::Config{},
                                         single_copy_invariant(), {});
  EXPECT_FALSE(clean.violated);
}

TEST(Explorer, ScheduleReplaysIdenticallyAcrossAllQueueKinds) {
  // Property (satellite of the paper's queue-interchangeability claim):
  // every queue implementation pops in ascending (time, seq) order, so a
  // recorded interleaving is queue-agnostic — the counterexample found on
  // the heap replays byte-for-byte on every other queue kind.
  mc::Explorer ex(broken_factory(), core::Engine::Config{}, single_copy_invariant(),
                  mc::ExploreConfig{});
  const auto res = ex.run();
  ASSERT_FALSE(res.ok());
  const auto& schedule = res.violations[0].schedule;

  const std::array<core::QueueKind, 5> kinds = {
      core::QueueKind::kSortedList, core::QueueKind::kBinaryHeap, core::QueueKind::kSplayTree,
      core::QueueKind::kCalendarQueue, core::QueueKind::kLadderQueue};
  std::vector<mc::ReplayOutcome> outcomes;
  for (const auto kind : kinds) {
    core::Engine::Config cfg;
    cfg.queue = kind;
    outcomes.push_back(
        mc::replay_schedule(broken_factory(), cfg, single_copy_invariant(), schedule));
  }
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    SCOPED_TRACE(to_string(kinds[i]));
    EXPECT_TRUE(outcomes[i].violated);
    EXPECT_EQ(outcomes[i].trace, outcomes[0].trace);
    EXPECT_EQ(outcomes[i].invariant, outcomes[0].invariant);
    EXPECT_DOUBLE_EQ(outcomes[i].violation_time, outcomes[0].violation_time);
  }
}

// --- sleep sets on a model with genuinely independent entities ------------

// Three no-op events tied at t = 1, each tagged as its own entity: all six
// orderings reach the same state. Sleep sets prove most orderings redundant
// without ever hashing a state.
class TaggedNopModel : public mc::Model {
 public:
  explicit TaggedNopModel(core::Engine& eng) : eng_(eng) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      core::TagScope scope(eng_, i + 1);
      eng_.schedule_at(1.0, [this, i] { ++fired_[i]; });
    }
  }
  void hash_state(core::StateHash& h) const override {
    for (int f : fired_) h.mix(static_cast<std::uint64_t>(f));
  }
  mc::CheckContext context(bool terminal) override {
    mc::CheckContext ctx;
    ctx.engine = &eng_;
    ctx.terminal = terminal;
    return ctx;
  }

 private:
  core::Engine& eng_;
  std::array<int, 3> fired_{};
};

TEST(Explorer, SleepSetsPruneIndependentOrderings) {
  const mc::ModelFactory factory = [](core::Engine& eng) -> std::unique_ptr<mc::Model> {
    return std::make_unique<TaggedNopModel>(eng);
  };
  mc::Invariants none;

  mc::ExploreConfig plain;
  plain.sleep_sets = false;
  plain.hash_pruning = false;
  mc::Explorer ex_plain(factory, core::Engine::Config{}, none, plain);
  const auto res_plain = ex_plain.run();
  EXPECT_TRUE(res_plain.ok());
  EXPECT_TRUE(res_plain.complete);
  EXPECT_EQ(res_plain.executions, 6u);  // 3! orderings, nothing pruned

  mc::ExploreConfig slept;
  slept.sleep_sets = true;
  slept.hash_pruning = false;
  mc::Explorer ex_slept(factory, core::Engine::Config{}, none, slept);
  const auto res_slept = ex_slept.run();
  EXPECT_TRUE(res_slept.ok());
  EXPECT_TRUE(res_slept.complete);
  EXPECT_LT(res_slept.executions, 6u);
  EXPECT_GT(res_slept.sleep_pruned, 0u);
}

}  // namespace
