// NWS-style load forecasting and its use in Bricks server selection.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "core/rng.hpp"
#include "middleware/forecast.hpp"
#include "sim/bricks/bricks.hpp"

namespace core = lsds::core;
namespace mw = lsds::middleware;

// --- individual predictors ---------------------------------------------

TEST(Predictors, LastValue) {
  mw::LastValuePredictor p;
  EXPECT_DOUBLE_EQ(p.predict(), 0.0);
  p.observe(3.0);
  EXPECT_DOUBLE_EQ(p.predict(), 3.0);
  p.observe(7.0);
  EXPECT_DOUBLE_EQ(p.predict(), 7.0);
}

TEST(Predictors, RunningMean) {
  mw::RunningMeanPredictor p;
  p.observe(2.0);
  p.observe(4.0);
  p.observe(6.0);
  EXPECT_DOUBLE_EQ(p.predict(), 4.0);
}

TEST(Predictors, SlidingWindowForgets) {
  mw::SlidingWindowPredictor p(2);
  p.observe(100.0);
  p.observe(1.0);
  p.observe(3.0);
  EXPECT_DOUBLE_EQ(p.predict(), 2.0);  // only the last two
}

TEST(Predictors, ExponentialSmoothingPrimesOnFirst) {
  mw::ExponentialSmoothingPredictor p(0.5);
  p.observe(10.0);
  EXPECT_DOUBLE_EQ(p.predict(), 10.0);
  p.observe(0.0);
  EXPECT_DOUBLE_EQ(p.predict(), 5.0);
}

// --- NWS meta-predictor ----------------------------------------------------

TEST(Nws, ConstantSeriesIsExact) {
  mw::NwsForecaster nws;
  for (int i = 0; i < 50; ++i) nws.observe(5.0);
  EXPECT_DOUBLE_EQ(nws.predict(), 5.0);
  EXPECT_NEAR(nws.mean_abs_error(), 0.0, 1e-12);
}

TEST(Nws, TrendFavorsReactivePredictors) {
  // Strictly increasing ramp: last-value (error 1/step) beats running-mean
  // (error grows with history).
  mw::NwsForecaster nws;
  for (int i = 0; i < 200; ++i) nws.observe(static_cast<double>(i));
  EXPECT_STREQ(nws.best_name(), "last-value");
  EXPECT_NEAR(nws.predict(), 199.0, 1.0);
}

TEST(Nws, NoisyStationaryFavorsAveragers) {
  // i.i.d. noise around a constant: averaging predictors beat last-value.
  core::RngStream rng(12);
  mw::NwsForecaster nws;
  for (int i = 0; i < 500; ++i) nws.observe(10.0 + rng.normal(0, 2.0));
  const std::string best = nws.best_name();
  EXPECT_NE(best, "last-value");
  EXPECT_NEAR(nws.predict(), 10.0, 1.5);
}

TEST(Nws, RegimeChangeAdapts) {
  // Stationary then ramp: the error horizon lets the winner switch.
  core::RngStream rng(13);
  mw::NwsForecaster nws(/*error_horizon=*/30);
  for (int i = 0; i < 200; ++i) nws.observe(5.0 + rng.normal(0, 0.5));
  for (int i = 0; i < 200; ++i) nws.observe(5.0 + i * 2.0);
  EXPECT_STREQ(nws.best_name(), "last-value");
}

TEST(Nws, MetaErrorBounded) {
  // The meta-forecast should not be much worse than the best member on a
  // mixed series.
  core::RngStream rng(14);
  mw::NwsForecaster nws;
  mw::LastValuePredictor last;
  double last_err = 0;
  double v = 0;
  for (int i = 0; i < 400; ++i) {
    v = 0.95 * v + rng.normal(0, 1.0);  // AR(1)
    if (i > 0) last_err += std::fabs(last.predict() - v);
    nws.observe(v);
    last.observe(v);
  }
  EXPECT_LT(nws.mean_abs_error(), (last_err / 399.0) * 1.3);
}

// --- Bricks multi-server selection ------------------------------------

namespace {

lsds::sim::bricks::Result run_selection(lsds::sim::bricks::ServerSelection sel,
                                        std::uint64_t seed) {
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = seed});
  lsds::sim::bricks::Config cfg;
  cfg.num_clients = 8;
  cfg.jobs_per_client = 12;
  cfg.mean_interarrival = 4.0;  // load the servers
  cfg.num_servers = 3;
  cfg.server_cores = 1;
  cfg.selection = sel;
  cfg.monitor_period = 2.0;
  return lsds::sim::bricks::run(eng, cfg);
}

}  // namespace

TEST(BricksSelection, AllSchemesCompleteAllJobs) {
  for (auto sel : {lsds::sim::bricks::ServerSelection::kRandom,
                   lsds::sim::bricks::ServerSelection::kRoundRobin,
                   lsds::sim::bricks::ServerSelection::kLeastQueue,
                   lsds::sim::bricks::ServerSelection::kForecast}) {
    const auto res = run_selection(sel, 21);
    EXPECT_EQ(res.jobs, 96u) << to_string(sel);
    std::uint64_t total = 0;
    for (auto c : res.per_server) total += c;
    EXPECT_EQ(total, 96u) << to_string(sel);
  }
}

TEST(BricksSelection, LoadAwareBeatsRandom) {
  const auto random = run_selection(lsds::sim::bricks::ServerSelection::kRandom, 22);
  const auto oracle = run_selection(lsds::sim::bricks::ServerSelection::kLeastQueue, 22);
  EXPECT_LT(oracle.queue_waits.mean(), random.queue_waits.mean());
}

TEST(BricksSelection, ForecastApproachesOracle) {
  // Forecast uses stale samples, so it sits between random and the oracle.
  const auto random = run_selection(lsds::sim::bricks::ServerSelection::kRandom, 23);
  const auto oracle = run_selection(lsds::sim::bricks::ServerSelection::kLeastQueue, 23);
  const auto fc = run_selection(lsds::sim::bricks::ServerSelection::kForecast, 23);
  EXPECT_LT(fc.queue_waits.mean(), random.queue_waits.mean());
  EXPECT_GE(fc.queue_waits.mean(), oracle.queue_waits.mean() * 0.8);
}

TEST(BricksSelection, SingleServerUnaffectedBySelection) {
  core::Engine a({.queue = core::QueueKind::kBinaryHeap, .seed = 5});
  lsds::sim::bricks::Config cfg;
  cfg.num_clients = 3;
  cfg.jobs_per_client = 5;
  cfg.num_servers = 1;
  cfg.selection = lsds::sim::bricks::ServerSelection::kRandom;
  const auto r1 = lsds::sim::bricks::run(a, cfg);
  core::Engine b({.queue = core::QueueKind::kBinaryHeap, .seed = 5});
  cfg.selection = lsds::sim::bricks::ServerSelection::kLeastQueue;
  const auto r2 = lsds::sim::bricks::run(b, cfg);
  EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
}
