// Host substrate: CPU sharing policies, storage devices, sites, grid
// organizations (central and tier models).
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hpp"
#include "hosts/cpu.hpp"
#include "hosts/organizations.hpp"
#include "hosts/site.hpp"
#include "hosts/storage.hpp"
#include "stats/analytical.hpp"
#include "stats/summary.hpp"

namespace core = lsds::core;
namespace hosts = lsds::hosts;

// --- CPU: space-shared ------------------------------------------------

TEST(CpuSpaceShared, FifoQueueing) {
  core::Engine eng;
  hosts::CpuResource cpu(eng, "node", 2, 100.0, hosts::SharingPolicy::kSpaceShared);
  std::vector<std::pair<hosts::JobId, double>> done;
  for (hosts::JobId id = 1; id <= 4; ++id) {
    cpu.submit(id, 1000.0, [&, id](hosts::JobId jid) {
      EXPECT_EQ(jid, id);
      done.emplace_back(id, eng.now());
    });
  }
  EXPECT_EQ(cpu.running(), 2u);
  EXPECT_EQ(cpu.queued(), 2u);
  eng.run();
  ASSERT_EQ(done.size(), 4u);
  // 2 cores, 10s per job: jobs 1&2 at t=10, jobs 3&4 at t=20.
  EXPECT_DOUBLE_EQ(done[0].second, 10.0);
  EXPECT_DOUBLE_EQ(done[1].second, 10.0);
  EXPECT_DOUBLE_EQ(done[2].second, 20.0);
  EXPECT_DOUBLE_EQ(done[3].second, 20.0);
  EXPECT_EQ(cpu.jobs_completed(), 4u);
}

TEST(CpuSpaceShared, RateIsFullCoreSpeed) {
  core::Engine eng;
  hosts::CpuResource cpu(eng, "node", 4, 100.0, hosts::SharingPolicy::kSpaceShared);
  double t1 = -1;
  cpu.submit(1, 500.0, [&](hosts::JobId) { t1 = eng.now(); });
  cpu.submit(2, 1000.0, nullptr);
  eng.run();
  EXPECT_DOUBLE_EQ(t1, 5.0);  // unaffected by the other job
}

TEST(CpuSpaceShared, HasIdleCore) {
  core::Engine eng;
  hosts::CpuResource cpu(eng, "node", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
  EXPECT_TRUE(cpu.has_idle_core());
  cpu.submit(1, 1000.0, nullptr);
  EXPECT_FALSE(cpu.has_idle_core());
  eng.run();
  EXPECT_TRUE(cpu.has_idle_core());
}

// --- CPU: time-shared ---------------------------------------------------

TEST(CpuTimeShared, ProcessorSharingSlowdown) {
  // Two equal jobs on one core: each at half speed, both finish together.
  core::Engine eng;
  hosts::CpuResource cpu(eng, "node", 1, 100.0, hosts::SharingPolicy::kTimeShared);
  std::vector<double> done;
  cpu.submit(1, 500.0, [&](hosts::JobId) { done.push_back(eng.now()); });
  cpu.submit(2, 500.0, [&](hosts::JobId) { done.push_back(eng.now()); });
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 10.0);
  EXPECT_DOUBLE_EQ(done[1], 10.0);
}

TEST(CpuTimeShared, DepartureSpeedsUpSurvivor) {
  // Jobs of 250 and 750 ops on a 100 ops/s core: share until t=5 (250 each),
  // then the long job runs alone: 500 left at full speed -> t=10.
  core::Engine eng;
  hosts::CpuResource cpu(eng, "node", 1, 100.0, hosts::SharingPolicy::kTimeShared);
  double t_short = -1, t_long = -1;
  cpu.submit(1, 250.0, [&](hosts::JobId) { t_short = eng.now(); });
  cpu.submit(2, 750.0, [&](hosts::JobId) { t_long = eng.now(); });
  eng.run();
  EXPECT_DOUBLE_EQ(t_short, 5.0);
  EXPECT_DOUBLE_EQ(t_long, 10.0);
}

TEST(CpuTimeShared, PerJobRateCappedAtCoreSpeed) {
  // 2 jobs on a 4-core node: each gets one core's speed, not 2x.
  core::Engine eng;
  hosts::CpuResource cpu(eng, "node", 4, 100.0, hosts::SharingPolicy::kTimeShared);
  double t1 = -1;
  cpu.submit(1, 1000.0, [&](hosts::JobId) { t1 = eng.now(); });
  cpu.submit(2, 1000.0, nullptr);
  eng.run();
  EXPECT_DOUBLE_EQ(t1, 10.0);  // full core speed
}

TEST(CpuTimeShared, ManyJobsShareTotalCapacity) {
  // 8 equal jobs on a 4x100 node: total 400 ops/s, 50 ops/s each.
  core::Engine eng;
  hosts::CpuResource cpu(eng, "node", 4, 100.0, hosts::SharingPolicy::kTimeShared);
  std::vector<double> done;
  for (hosts::JobId id = 1; id <= 8; ++id) {
    cpu.submit(id, 500.0, [&](hosts::JobId) { done.push_back(eng.now()); });
  }
  eng.run();
  ASSERT_EQ(done.size(), 8u);
  for (double t : done) EXPECT_DOUBLE_EQ(t, 10.0);
}

TEST(CpuTimeShared, LateArrivalProgressAccounting) {
  core::Engine eng;
  hosts::CpuResource cpu(eng, "node", 1, 100.0, hosts::SharingPolicy::kTimeShared);
  double t1 = -1;
  cpu.submit(1, 1000.0, [&](hosts::JobId) { t1 = eng.now(); });
  // At t=5, job1 has done 500 ops. Job2 arrives; both at 50 ops/s.
  // Job1's remaining 500 take 10s -> t=15.
  eng.schedule_at(5.0, [&] { cpu.submit(2, 2000.0, nullptr); });
  eng.run();
  EXPECT_DOUBLE_EQ(t1, 15.0);
}

TEST(Cpu, UtilizationAccounting) {
  core::Engine eng;
  hosts::CpuResource cpu(eng, "node", 2, 100.0, hosts::SharingPolicy::kSpaceShared);
  cpu.submit(1, 1000.0, nullptr);  // one core busy 10s
  eng.run();
  // 1000 ops delivered over 10s on 200 ops/s capacity: 50%.
  EXPECT_NEAR(cpu.utilization(10.0), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(cpu.busy_ops(), 1000.0);
}

TEST(Cpu, LoadSeriesTracksQueue) {
  core::Engine eng;
  hosts::CpuResource cpu(eng, "node", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
  for (hosts::JobId id = 1; id <= 3; ++id) cpu.submit(id, 100.0, nullptr);
  eng.run();
  EXPECT_DOUBLE_EQ(cpu.load_series().max_value(), 3.0);
  EXPECT_DOUBLE_EQ(cpu.load_series().value_at(100.0), 0.0);
}

// PS validation: M/M/1-PS mean sojourn matches 1/(mu - lambda).
TEST(CpuTimeShared, MM1PSMeanSojournMatchesTheory) {
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 1234});
  hosts::CpuResource cpu(eng, "node", 1, 1.0, hosts::SharingPolicy::kTimeShared);
  auto& arrivals = eng.rng("arrivals");
  auto& sizes = eng.rng("sizes");
  const double lambda = 0.5, mu = 1.0;
  lsds::stats::Accumulator sojourn;
  const int n_jobs = 20000;
  double t = 0;
  struct Rec {
    double submit;
  };
  auto recs = std::make_shared<std::unordered_map<hosts::JobId, Rec>>();
  for (int i = 1; i <= n_jobs; ++i) {
    t += arrivals.exponential(1.0 / lambda);
    const double ops = sizes.exponential(1.0 / mu);
    const auto id = static_cast<hosts::JobId>(i);
    eng.schedule_at(t, [&, id, ops] {
      (*recs)[id] = {eng.now()};
      cpu.submit(id, ops, [&, id](hosts::JobId) {
        sojourn.add(eng.now() - (*recs)[id].submit);
        recs->erase(id);
      });
    });
  }
  eng.run();
  lsds::stats::MM1PS theory{lambda, mu};
  EXPECT_NEAR(sojourn.mean(), theory.mean_sojourn(), 0.15);  // 2.0 +- CI
}

// --- storage -------------------------------------------------------------

TEST(Storage, CapacityEnforced) {
  core::Engine eng;
  hosts::StorageDevice disk(eng, "d", {1000, 100, 100, 0});
  EXPECT_TRUE(disk.store("a", 600));
  EXPECT_FALSE(disk.store("b", 600));  // would exceed
  EXPECT_TRUE(disk.store("b", 400));
  EXPECT_DOUBLE_EQ(disk.free(), 0.0);
  EXPECT_FALSE(disk.store("a", 1));  // duplicate
  EXPECT_TRUE(disk.evict("a"));
  EXPECT_DOUBLE_EQ(disk.used(), 400.0);
  EXPECT_FALSE(disk.evict("a"));
}

TEST(Storage, LruLfuCandidates) {
  core::Engine eng;
  hosts::StorageDevice disk(eng, "d", {1e6, 1e6, 1e6, 0});
  eng.schedule_at(1.0, [&] { disk.store("old", 10); });
  eng.schedule_at(2.0, [&] { disk.store("mid", 10); });
  eng.schedule_at(3.0, [&] { disk.store("new", 10); });
  eng.schedule_at(4.0, [&] {
    // Access "old" twice and "mid" once: LRU is "new"? No — "new" accessed
    // never but created at 3 (last_access=3). Touch old at t=4: old.last=4.
    disk.read("old", nullptr);
    disk.read("old", nullptr);
    disk.read("mid", nullptr);
  });
  eng.schedule_at(5.0, [&] {
    EXPECT_EQ(*disk.lru_candidate(), "new");  // last_access = 3.0
    EXPECT_EQ(*disk.lfu_candidate(), "new");  // 0 accesses
  });
  eng.run();
}

TEST(Storage, PinnedFilesNeverCandidates) {
  core::Engine eng;
  hosts::StorageDevice disk(eng, "d", {1e6, 1e6, 1e6, 0});
  disk.store("pinned", 10, /*pinned=*/true);
  EXPECT_FALSE(disk.lru_candidate().has_value());
  disk.store("normal", 10);
  EXPECT_EQ(*disk.lru_candidate(), "normal");
}

TEST(Storage, TimedReadSerializes) {
  core::Engine eng;
  hosts::StorageDevice disk(eng, "d", {1e9, 100.0, 100.0, 0.5});
  disk.store("f1", 100);  // 1s read + 0.5s latency
  disk.store("f2", 200);  // 2s read + 0.5s latency
  std::vector<double> done;
  disk.read("f1", [&] { done.push_back(eng.now()); });
  disk.read("f2", [&] { done.push_back(eng.now()); });
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 1.5);
  EXPECT_DOUBLE_EQ(done[1], 4.0);  // starts after f1 head time
  EXPECT_EQ(disk.reads(), 2u);
  EXPECT_DOUBLE_EQ(disk.bytes_read(), 300.0);
}

TEST(Storage, ReadMissingReturnsFalse) {
  core::Engine eng;
  hosts::StorageDevice disk(eng, "d", {1e9, 100, 100, 0});
  EXPECT_FALSE(disk.read("ghost", [] { FAIL() << "must not fire"; }));
  eng.run();
}

TEST(Storage, WriteBecomesVisibleOnCompletion) {
  core::Engine eng;
  hosts::StorageDevice disk(eng, "d", {1e9, 100.0, 100.0, 0});
  bool done = false;
  EXPECT_TRUE(disk.write("f", 200, [&] { done = true; }));
  EXPECT_FALSE(disk.has("f"));          // not yet visible
  EXPECT_DOUBLE_EQ(disk.used(), 200.0); // capacity reserved
  EXPECT_FALSE(disk.write("f", 10, nullptr));  // pending duplicate rejected
  eng.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(disk.has("f"));
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
}

TEST(Storage, WriteOverCapacityRejected) {
  core::Engine eng;
  hosts::StorageDevice disk(eng, "d", {100, 100, 100, 0});
  EXPECT_FALSE(disk.write("big", 200, nullptr));
  EXPECT_DOUBLE_EQ(disk.used(), 0.0);
}

TEST(Storage, MassStorageSpecHasMountLatency) {
  core::Engine eng;
  hosts::StorageDevice tape(eng, "t", hosts::mass_storage_spec(1e15, 30e6, 30.0));
  tape.store("dataset", 30e6);  // 1s transfer
  double done_at = -1;
  tape.read("dataset", [&] { done_at = eng.now(); });
  eng.run();
  EXPECT_DOUBLE_EQ(done_at, 31.0);  // 30s mount + 1s read
}

// --- facade awaitable adapters (sim/common.hpp) ----------------------------

#include "core/process.hpp"
#include "sim/common.hpp"

namespace {

lsds::core::Process writer_proc(core::Engine& eng, hosts::StorageDevice& disk,
                                std::vector<std::pair<std::string, bool>>& results) {
  const bool ok1 = co_await lsds::sim::disk_write(disk, "a", 400);
  results.emplace_back("a", ok1);
  const bool ok2 = co_await lsds::sim::disk_write(disk, "too-big", 1e9);
  results.emplace_back("too-big", ok2);
  co_await lsds::sim::disk_read(disk, "a");
  results.emplace_back("read-done", true);
  (void)eng;
}

}  // namespace

TEST(SimCommon, DiskWriteAwaiterReportsAcceptance) {
  core::Engine eng;
  hosts::StorageDevice disk(eng, "d", {1000, 100.0, 100.0, 0});
  std::vector<std::pair<std::string, bool>> results;
  writer_proc(eng, disk, results);
  eng.run();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].second);    // 400 bytes accepted, awaited 4s
  EXPECT_FALSE(results[1].second);   // over capacity: rejected, no suspend
  EXPECT_TRUE(disk.has("a"));
  EXPECT_FALSE(disk.has("too-big"));
  EXPECT_DOUBLE_EQ(eng.now(), 8.0);  // 4s write + 4s read
}

// --- sites & organizations ------------------------------------------------

TEST(Grid, SiteWiring) {
  core::Engine eng;
  hosts::Grid grid(eng);
  hosts::SiteSpec spec;
  spec.name = "T1_DE";
  spec.cores = 8;
  spec.has_mass_storage = true;
  auto& site = grid.add_site(spec);
  EXPECT_EQ(site.name(), "T1_DE");
  EXPECT_EQ(site.cpu().cores(), 8u);
  EXPECT_TRUE(site.has_tape());
  EXPECT_EQ(grid.find_site("T1_DE"), site.id());
  EXPECT_EQ(grid.find_site("nope"), hosts::kInvalidSite);
}

TEST(Grid, CentralModelTransfersAndComputes) {
  core::Engine eng;
  hosts::Grid grid(eng);
  hosts::CentralModelSpec spec;
  spec.num_clients = 4;
  spec.server.cores = 2;
  spec.server.cpu_speed = 100;
  build_central_model(grid, spec);
  ASSERT_EQ(grid.site_count(), 5u);  // server + 4 clients
  EXPECT_TRUE(grid.topology().connected());
  EXPECT_TRUE(grid.finalized());

  // Client 1 ships 1 MB input to the server, which computes 1000 ops.
  auto& server = grid.site(0);
  auto& client = grid.site(1);
  double done_at = -1;
  grid.net().start_flow(client.node(), server.node(), 1e6, [&](lsds::net::FlowId) {
    server.cpu().submit(1, 1000.0, [&](hosts::JobId) { done_at = eng.now(); });
  });
  eng.run();
  // Transfer: min(12.5 MB/s, 125 MB/s) bottleneck at client link: 0.08s +
  // 0.022s latency; compute 10s.
  EXPECT_NEAR(done_at, 0.08 + 0.022 + 10.0, 1e-6);
}

TEST(Grid, TierModelShape) {
  core::Engine eng;
  hosts::Grid grid(eng);
  hosts::TierModelSpec spec;
  spec.t0.cores = 32;
  spec.levels.push_back({4, hosts::SiteSpec{}, 312.5e6, 0.02});  // 4 T1s
  spec.levels.push_back({2, hosts::SiteSpec{}, 125e6, 0.01});    // 2 T2s each
  build_tier_model(grid, spec);
  ASSERT_EQ(grid.site_count(), 1u + 4u + 8u);
  EXPECT_TRUE(grid.topology().connected());
  const auto t1s = tier_sites(grid, spec, 1);
  ASSERT_EQ(t1s.size(), 4u);
  EXPECT_EQ(grid.site(t1s[0]).name(), "T1_0");
  const auto t2s = tier_sites(grid, spec, 2);
  ASSERT_EQ(t2s.size(), 8u);
  EXPECT_EQ(grid.site(t2s.back()).name(), "T2_7");
  const auto t0 = tier_sites(grid, spec, 0);
  ASSERT_EQ(t0.size(), 1u);
  EXPECT_EQ(grid.site(t0[0]).name(), "T0");
}
