// Stats library: accumulators, sample sets, histograms, time series, tables
// and the analytical queueing formulas.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "stats/analytical.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "stats/timeseries.hpp"

namespace stats = lsds::stats;

// --- Accumulator ------------------------------------------------------

TEST(Accumulator, EmptyIsZero) {
  stats::Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  stats::Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.variance(), 4.0);  // textbook population variance example
  EXPECT_DOUBLE_EQ(a.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, MergeEqualsCombined) {
  stats::Accumulator a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10 + i * 0.1;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  stats::Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  stats::Accumulator c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(Accumulator, Ci95ShrinksWithSamples) {
  stats::Accumulator small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 3);
  for (int i = 0; i < 1000; ++i) large.add(i % 3);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

// --- SampleSet ----------------------------------------------------------

TEST(SampleSet, QuantilesExact) {
  stats::SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.median(), 50.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.p95(), 95.05, 0.01);
}

TEST(SampleSet, QuantileAfterInterleavedAdds) {
  stats::SampleSet s;
  s.add(5);
  s.add(1);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  s.add(9);  // invalidates sorted cache
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
}

TEST(SampleSet, EmptyQuantileIsZero) {
  stats::SampleSet s;
  EXPECT_DOUBLE_EQ(s.median(), 0.0);
}

// --- Histogram ----------------------------------------------------------

TEST(Histogram, BinningAndOverflow) {
  stats::Histogram h(0, 10, 10);
  h.add(-1);            // underflow
  h.add(0);             // bin 0
  h.add(9.999);         // bin 9
  h.add(10);            // overflow (hi is exclusive)
  h.add(5.5);           // bin 5
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, NonFiniteSamplesAreCountedInvalid) {
  // Regression: NaN slipped past both range guards into an undefined
  // float -> size_t cast; ±inf landed in under/overflow.
  stats::Histogram h(0, 10, 10);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(5.0);
  EXPECT_EQ(h.invalid(), 3u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.total(), 4u);
  for (std::size_t b = 0; b < h.nbins(); ++b) {
    EXPECT_EQ(h.bin_count(b), b == 5 ? 1u : 0u);
  }
  // cdf excludes the invalid samples: the single finite sample is the whole
  // distribution.
  EXPECT_DOUBLE_EQ(h.cdf_at_bin(h.nbins() - 1), 1.0);
  EXPECT_DOUBLE_EQ(h.cdf_at_bin(4), 0.0);
}

TEST(Histogram, AllInvalidCdfIsZero) {
  stats::Histogram h(0, 1, 4);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.invalid(), 1u);
  EXPECT_DOUBLE_EQ(h.cdf_at_bin(3), 0.0);  // no finite mass, no div-by-zero
}

TEST(Histogram, CdfMonotone) {
  stats::Histogram h(0, 100, 20);
  for (int i = 0; i < 1000; ++i) h.add((i * 37) % 100);
  double prev = 0;
  for (std::size_t b = 0; b < h.nbins(); ++b) {
    const double c = h.cdf_at_bin(b);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

TEST(Histogram, CsvHasHeaderAndRows) {
  stats::Histogram h(0, 2, 2);
  h.add(0.5);
  const auto csv = h.to_csv();
  EXPECT_NE(csv.find("bin_lo,bin_hi,count"), std::string::npos);
  EXPECT_NE(csv.find("0,1,1"), std::string::npos);
}

// --- TimeSeries -----------------------------------------------------------

TEST(TimeSeries, TimeWeightedMean) {
  stats::TimeSeries ts;
  ts.record(0, 1.0);
  ts.record(10, 3.0);  // value 1 for 10s, then 3 for 10s
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(20), 2.0);
}

TEST(TimeSeries, IntegralStopsAtTEnd) {
  stats::TimeSeries ts;
  ts.record(0, 2.0);
  ts.record(5, 0.0);
  EXPECT_DOUBLE_EQ(ts.integral(3), 6.0);
  EXPECT_DOUBLE_EQ(ts.integral(100), 10.0);
}

TEST(TimeSeries, ValueAt) {
  stats::TimeSeries ts;
  ts.record(1, 10.0);
  ts.record(5, 20.0);
  EXPECT_DOUBLE_EQ(ts.value_at(0.5), 0.0);  // before first record
  EXPECT_DOUBLE_EQ(ts.value_at(1), 10.0);
  EXPECT_DOUBLE_EQ(ts.value_at(4.9), 10.0);
  EXPECT_DOUBLE_EQ(ts.value_at(5), 20.0);
  EXPECT_DOUBLE_EQ(ts.value_at(100), 20.0);
}

TEST(TimeSeries, SameInstantOverwrites) {
  stats::TimeSeries ts;
  ts.record(1, 10.0);
  ts.record(1, 12.0);
  EXPECT_EQ(ts.size(), 1u);
  EXPECT_DOUBLE_EQ(ts.value_at(1), 12.0);
}

TEST(TimeSeries, MaxValue) {
  stats::TimeSeries ts;
  ts.record(0, -5);
  ts.record(1, 7);
  ts.record(2, 3);
  EXPECT_DOUBLE_EQ(ts.max_value(), 7.0);
}

// --- tables -------------------------------------------------------------

TEST(AsciiTable, RendersAligned) {
  stats::AsciiTable t({"name", "value"});
  t.row().cell(std::string("alpha")).cell(1.5);
  t.row().cell(std::string("b")).cell(std::uint64_t{42});
  const auto out = t.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1.5   |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 42    |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(CsvWriter, WritesHeaderAndRows) {
  std::ostringstream out;
  stats::CsvWriter w(out, {"x", "y"});
  w.row({1.0, 2.5});
  w.row_strings({"a", "b"});
  EXPECT_EQ(out.str(), "x,y\n1,2.5\na,b\n");
}

// --- analytical queueing ----------------------------------------------

TEST(Analytical, MM1KnownValues) {
  stats::MM1 q{0.5, 1.0};
  EXPECT_DOUBLE_EQ(q.rho(), 0.5);
  EXPECT_TRUE(q.stable());
  EXPECT_DOUBLE_EQ(q.mean_in_system(), 1.0);
  EXPECT_DOUBLE_EQ(q.mean_in_queue(), 0.5);
  EXPECT_DOUBLE_EQ(q.mean_sojourn(), 2.0);
  EXPECT_DOUBLE_EQ(q.mean_wait(), 1.0);
}

TEST(Analytical, MM1LittlesLaw) {
  stats::MM1 q{0.8, 1.25};
  EXPECT_NEAR(q.mean_in_system(), q.lambda * q.mean_sojourn(), 1e-12);
  EXPECT_NEAR(q.mean_in_queue(), q.lambda * q.mean_wait(), 1e-12);
}

TEST(Analytical, MMcReducesToMM1) {
  stats::MM1 ref{0.7, 1.0};
  stats::MMc q{0.7, 1.0, 1};
  EXPECT_NEAR(q.erlang_c(), ref.rho(), 1e-12);  // for c=1, P(wait) = rho
  EXPECT_NEAR(q.mean_wait(), ref.mean_wait(), 1e-12);
  EXPECT_NEAR(q.mean_sojourn(), ref.mean_sojourn(), 1e-12);
}

TEST(Analytical, MMcKnownValue) {
  // Textbook: lambda=2, mu=1, c=3 => rho=2/3, ErlangC = 0.4444..
  stats::MMc q{2.0, 1.0, 3};
  EXPECT_NEAR(q.erlang_c(), 4.0 / 9.0, 1e-9);
  EXPECT_NEAR(q.mean_wait(), (4.0 / 9.0) / 1.0, 1e-9);
}

TEST(Analytical, MMcMoreServersLessWait) {
  stats::MMc a{4.0, 1.0, 5};
  stats::MMc b{4.0, 1.0, 8};
  EXPECT_GT(a.mean_wait(), b.mean_wait());
}

TEST(Analytical, MM1PSMatchesFCFSMean) {
  stats::MM1PS ps{0.6, 1.0};
  stats::MM1 fcfs{0.6, 1.0};
  EXPECT_DOUBLE_EQ(ps.mean_sojourn(), fcfs.mean_sojourn());
  EXPECT_DOUBLE_EQ(ps.conditional_sojourn(2.0), 2.0 / 0.4);
}

TEST(Analytical, MaxMinEqualShare) {
  // 4 flows of 1 GB over a 1 GB/s link: each gets 0.25 GB/s -> 4 s.
  EXPECT_DOUBLE_EQ(stats::maxmin_equal_share_completion(1e9, 1e9, 4), 4.0);
}
