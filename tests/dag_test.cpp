// DAG model and workflow scheduling (HEFT vs round-robin).
#include <gtest/gtest.h>

#include <memory>

#include "core/engine.hpp"
#include "hosts/cpu.hpp"
#include "middleware/dag.hpp"
#include "net/flow.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"

namespace core = lsds::core;
namespace hosts = lsds::hosts;
namespace mw = lsds::middleware;
namespace net = lsds::net;

// --- Dag model ---------------------------------------------------------

TEST(Dag, TopologicalOrderRespectsEdges) {
  mw::Dag d;
  const auto a = d.add_task("a", 1);
  const auto b = d.add_task("b", 1);
  const auto c = d.add_task("c", 1);
  d.add_edge(a, c, 0);
  d.add_edge(b, c, 0);
  const auto order = d.topological_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.back(), c);
}

TEST(Dag, CycleRejected) {
  mw::Dag d;
  const auto a = d.add_task("a", 1);
  const auto b = d.add_task("b", 1);
  d.add_edge(a, b, 0);
  EXPECT_THROW(d.add_edge(b, a, 0), std::invalid_argument);
  EXPECT_THROW(d.add_edge(a, a, 0), std::invalid_argument);
}

TEST(Dag, TransitiveCycleRejected) {
  mw::Dag d;
  const auto a = d.add_task("a", 1);
  const auto b = d.add_task("b", 1);
  const auto c = d.add_task("c", 1);
  d.add_edge(a, b, 0);
  d.add_edge(b, c, 0);
  EXPECT_THROW(d.add_edge(c, a, 0), std::invalid_argument);
}

TEST(Dag, GeneratorsProduceExpectedShapes) {
  const auto chain = mw::Dag::chain(5, 100, 10);
  EXPECT_EQ(chain.task_count(), 5u);
  EXPECT_EQ(chain.successors(0).size(), 1u);
  EXPECT_EQ(chain.predecessors(4).size(), 1u);

  const auto fj = mw::Dag::fork_join(4, 50, 100, 10);
  EXPECT_EQ(fj.task_count(), 6u);       // fork + join + 4 branches
  EXPECT_EQ(fj.successors(0).size(), 4u);
  EXPECT_EQ(fj.predecessors(1).size(), 4u);

  core::RngStream rng(5);
  const auto rl = mw::Dag::random_layered(4, 5, 0.3, 100, 1e6, rng);
  EXPECT_EQ(rl.task_count(), 20u);
  // Every non-first-layer task has at least one predecessor.
  const auto order = rl.topological_order();
  EXPECT_EQ(order.size(), 20u);
  for (mw::TaskId t = 5; t < 20; ++t) EXPECT_GE(rl.predecessors(t).size(), 1u);
}

// --- DagScheduler ------------------------------------------------------

namespace {

struct DagWorld {
  core::Engine eng{{.queue = core::QueueKind::kBinaryHeap, .seed = 6}};
  net::Topology topo;
  std::unique_ptr<net::Routing> routing;
  std::unique_ptr<net::FlowNetwork> fnet;
  std::vector<std::unique_ptr<hosts::CpuResource>> cpus;
  std::vector<mw::DagScheduler::Resource> resources;

  DagWorld(std::vector<double> speeds, double bw) {
    for (std::size_t i = 0; i < speeds.size(); ++i) {
      topo.add_node("host" + std::to_string(i));
    }
    const auto hub = topo.add_node("hub", net::NodeKind::kRouter);
    for (std::size_t i = 0; i < speeds.size(); ++i) {
      topo.add_link(static_cast<net::NodeId>(i), hub, bw, 0.001);
    }
    routing = std::make_unique<net::Routing>(topo);
    fnet = std::make_unique<net::FlowNetwork>(eng, *routing);
    for (std::size_t i = 0; i < speeds.size(); ++i) {
      cpus.push_back(std::make_unique<hosts::CpuResource>(
          eng, "cpu" + std::to_string(i), 1, speeds[i], hosts::SharingPolicy::kSpaceShared));
      resources.push_back({cpus.back().get(), static_cast<net::NodeId>(i)});
    }
  }
};

}  // namespace

TEST(DagScheduler, ChainMakespanExactWithoutComm) {
  DagWorld w({100.0}, 1e9);
  const auto dag = mw::Dag::chain(5, 200, 0);  // 5 x 2s, zero-byte edges
  mw::DagScheduler sched(w.eng, dag, w.resources, w.fnet.get(), mw::DagAlgorithm::kHeft);
  sched.start();
  w.eng.run();
  EXPECT_DOUBLE_EQ(sched.result().makespan, 10.0);
  EXPECT_EQ(sched.result().transfers, 0u);
}

TEST(DagScheduler, ForkJoinParallelizesBranches) {
  DagWorld w({100.0, 100.0, 100.0, 100.0}, 1e9);
  // fork(1s) -> 4 branches(10s each) -> join(1s); tiny data.
  const auto dag = mw::Dag::fork_join(4, 100, 1000, 1e3);
  mw::DagScheduler sched(w.eng, dag, w.resources, w.fnet.get(), mw::DagAlgorithm::kHeft);
  sched.start();
  w.eng.run();
  // Perfect parallelism would be 1 + 10 + 1 = 12s (+epsilon comm).
  EXPECT_LT(sched.result().makespan, 13.0);
  EXPECT_GE(sched.result().makespan, 12.0);
}

TEST(DagScheduler, AllTasksFinishOnce) {
  DagWorld w({100.0, 200.0}, 1e8);
  core::RngStream rng(11);
  const auto dag = mw::Dag::random_layered(5, 4, 0.4, 500, 1e5, rng);
  int done = 0;
  mw::DagScheduler sched(w.eng, dag, w.resources, w.fnet.get(), mw::DagAlgorithm::kHeft);
  sched.start([&](mw::TaskId) { ++done; });
  w.eng.run();
  EXPECT_EQ(done, 20);
  for (mw::TaskId t = 0; t < 20; ++t) EXPECT_GT(sched.result().task_finish[t], 0.0);
  // Precedence respected: every task finishes after all predecessors.
  for (mw::TaskId t = 0; t < 20; ++t) {
    for (const auto& [p, bytes] : dag.predecessors(t)) {
      EXPECT_GE(sched.result().task_finish[t], sched.result().task_finish[p]);
    }
  }
}

TEST(DagScheduler, HeftBeatsRoundRobinOnHeterogeneous) {
  auto run_algo = [](mw::DagAlgorithm algo) {
    DagWorld w({50.0, 100.0, 800.0}, 1e8);
    core::RngStream rng(13);
    const auto dag = mw::Dag::random_layered(6, 5, 0.35, 2000, 1e5, rng);
    mw::DagScheduler sched(w.eng, dag, w.resources, w.fnet.get(), algo);
    sched.start();
    w.eng.run();
    return sched.result().makespan;
  };
  const double heft = run_algo(mw::DagAlgorithm::kHeft);
  const double rr = run_algo(mw::DagAlgorithm::kRoundRobin);
  EXPECT_LT(heft, rr * 0.8);
}

TEST(DagScheduler, CommAwarenessReducesTraffic) {
  // Heavy edges, equal speeds: HEFT co-locates chains; round-robin ships
  // every edge across the network.
  auto run_algo = [](mw::DagAlgorithm algo) {
    DagWorld w({100.0, 100.0}, 1e6);
    const auto dag = mw::Dag::chain(8, 100, 5e6);  // 5 MB per edge, 5s to ship
    mw::DagScheduler sched(w.eng, dag, w.resources, w.fnet.get(), algo);
    sched.start();
    w.eng.run();
    return sched.result();
  };
  const auto heft = run_algo(mw::DagAlgorithm::kHeft);
  const auto rr = run_algo(mw::DagAlgorithm::kRoundRobin);
  EXPECT_EQ(heft.transfers, 0u);  // whole chain on one machine
  EXPECT_EQ(rr.transfers, 7u);    // every edge crosses
  EXPECT_LT(heft.makespan, rr.makespan);
}

TEST(DagScheduler, NullNetworkMeansFreeComm) {
  core::Engine eng;
  hosts::CpuResource cpu(eng, "c", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
  std::vector<mw::DagScheduler::Resource> res{{&cpu, net::kInvalidNode}};
  const auto dag = mw::Dag::chain(3, 100, 1e9);  // huge edges, no network
  mw::DagScheduler sched(eng, dag, res, nullptr, mw::DagAlgorithm::kHeft);
  sched.start();
  eng.run();
  EXPECT_DOUBLE_EQ(sched.result().makespan, 3.0);
  EXPECT_EQ(sched.result().transfers, 0u);
}
