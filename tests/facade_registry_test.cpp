// FacadeRegistry: name -> runnable-study dispatch, duplicate rejection, and
// strict INI key validation with near-miss suggestions.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "sim/facade_registry.hpp"
#include "util/ini.hpp"

namespace {

using namespace lsds;

TEST(FacadeRegistry, AllBuiltinsResolve) {
  sim::register_builtin_facades();
  const auto& reg = sim::FacadeRegistry::global();
  EXPECT_EQ(reg.size(), 10u);
  for (const char* name : {"bricks", "optorsim", "monarc", "gridsim", "chicsim", "simg", "chaos",
                           "explore", "platform", "p2p"}) {
    const auto* entry = reg.find(name);
    ASSERT_NE(entry, nullptr) << name;
    EXPECT_EQ(entry->name, name);
    EXPECT_TRUE(static_cast<bool>(entry->run)) << name;
  }
}

TEST(FacadeRegistry, RegisterBuiltinsIsIdempotent) {
  sim::register_builtin_facades();
  sim::register_builtin_facades();
  EXPECT_EQ(sim::FacadeRegistry::global().size(), 10u);
}

TEST(FacadeRegistry, NamesAreSorted) {
  sim::register_builtin_facades();
  const auto names = sim::FacadeRegistry::global().names();
  ASSERT_EQ(names.size(), 10u);
  for (std::size_t i = 1; i < names.size(); ++i) {
    EXPECT_LT(names[i - 1], names[i]);
  }
}

TEST(FacadeRegistry, UnknownNameReturnsNull) {
  sim::register_builtin_facades();
  EXPECT_EQ(sim::FacadeRegistry::global().find("nope"), nullptr);
}

TEST(FacadeRegistry, DuplicateRegistrationThrows) {
  sim::FacadeRegistry reg;  // fresh, not the global one
  sim::register_simg_facade(reg);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_THROW(sim::register_simg_facade(reg), std::invalid_argument);
}

// --- strict key validation --------------------------------------------------

sim::FacadeRegistry::Entry demo_entry() {
  sim::FacadeRegistry::Entry e;
  e.name = "demo";
  e.keys["demo"] = {"hosts", "jobs", "mean_ops"};
  return e;
}

TEST(StrictKeys, AcceptsDeclaredAndRunnerKeys) {
  const auto ini = util::IniConfig::parse(
      "[scenario]\nfacade = demo\nseed = 1\nstrict = true\n"
      "[observability]\nenabled = true\n"
      "[demo]\nhosts = 4\njobs = 10\n");
  EXPECT_NO_THROW(sim::validate_scenario_keys(ini, demo_entry()));
}

TEST(StrictKeys, UnknownKeySuggestsNearMiss) {
  const auto ini = util::IniConfig::parse("[demo]\nhots = 4\n");
  try {
    sim::validate_scenario_keys(ini, demo_entry());
    FAIL() << "expected ConfigError";
  } catch (const std::exception& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("hots"), std::string::npos) << msg;
    EXPECT_NE(msg.find("hosts"), std::string::npos) << msg;  // the suggestion
  }
}

TEST(StrictKeys, UnknownSectionRejected) {
  const auto ini = util::IniConfig::parse("[demos]\nhosts = 4\n");
  EXPECT_THROW(sim::validate_scenario_keys(ini, demo_entry()), std::exception);
}

TEST(StrictKeys, FarTypoGetsNoSuggestion) {
  const auto ini = util::IniConfig::parse("[demo]\nzzzzzzzz = 4\n");
  try {
    sim::validate_scenario_keys(ini, demo_entry());
    FAIL() << "expected ConfigError";
  } catch (const std::exception& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.find("did you mean"), std::string::npos) << msg;
  }
}

}  // namespace
