// Network substrate: topology builders, routing, flow-level max-min model,
// transfer service, packet-level model.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/engine.hpp"
#include "net/flow.hpp"
#include "net/packet.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "net/transfer.hpp"
#include "stats/analytical.hpp"
#include "util/units.hpp"

namespace core = lsds::core;
namespace net = lsds::net;
namespace u = lsds::util;

// --- topology -------------------------------------------------------------

TEST(Topology, StarShape) {
  const auto t = net::Topology::star(5, u::gbps(1), 0.001);
  EXPECT_EQ(t.node_count(), 6u);
  EXPECT_EQ(t.link_count(), 5u);
  EXPECT_TRUE(t.connected());
  EXPECT_EQ(t.node(0).kind, net::NodeKind::kRouter);
  EXPECT_EQ(t.links_of(0).size(), 5u);
}

TEST(Topology, DumbbellShape) {
  const auto t = net::Topology::dumbbell(3, 3, u::gbps(10), 1e-4, u::gbps(1), 0.01);
  EXPECT_EQ(t.node_count(), 8u);
  EXPECT_EQ(t.link_count(), 7u);
  EXPECT_TRUE(t.connected());
  EXPECT_EQ(t.link(0).name, "bottleneck");
  EXPECT_DOUBLE_EQ(t.link(0).bandwidth, u::gbps(1));
}

TEST(Topology, TierTreeShape) {
  // T0 -> 4 T1s -> 3 T2s each: 1 + 4 + 12 nodes.
  const auto t = net::Topology::tier_tree({4, 3}, {u::gbps(2.5), u::gbps(1)}, {0.02, 0.01});
  EXPECT_EQ(t.node_count(), 17u);
  EXPECT_EQ(t.link_count(), 16u);
  EXPECT_TRUE(t.connected());
  EXPECT_NE(t.find_node("T1_0"), net::kInvalidNode);
  EXPECT_NE(t.find_node("T2_11"), net::kInvalidNode);
  EXPECT_EQ(t.find_node("T3_0"), net::kInvalidNode);
}

TEST(Topology, RingAndMesh) {
  const auto ring = net::Topology::ring(6, 1e8, 0.001);
  EXPECT_EQ(ring.link_count(), 6u);
  EXPECT_TRUE(ring.connected());
  const auto mesh = net::Topology::full_mesh(5, 1e8, 0.001);
  EXPECT_EQ(mesh.link_count(), 10u);
  EXPECT_TRUE(mesh.connected());
}

TEST(Topology, RandomConnectedIsConnected) {
  core::RngStream rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const auto t = net::Topology::random_connected(30, 15, 1e8, 0.001, rng);
    EXPECT_EQ(t.node_count(), 30u);
    EXPECT_EQ(t.link_count(), 29u + 15u);
    EXPECT_TRUE(t.connected());
  }
}

TEST(Topology, OtherEnd) {
  net::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto l = t.add_link(a, b, 1e6, 0.001);
  EXPECT_EQ(t.other_end(l, a), b);
  EXPECT_EQ(t.other_end(l, b), a);
}

// --- topology text serialization ------------------------------------------

TEST(TopologyText, RoundTrip) {
  auto t = net::Topology::dumbbell(2, 2, u::mbps(100), 0.0005, u::gbps(1), 0.01);
  const auto text = t.to_text();
  const auto back = net::Topology::from_text(text);
  ASSERT_EQ(back.node_count(), t.node_count());
  ASSERT_EQ(back.link_count(), t.link_count());
  for (net::NodeId n = 0; n < t.node_count(); ++n) {
    EXPECT_EQ(back.node(n).name, t.node(n).name);
    EXPECT_EQ(back.node(n).kind, t.node(n).kind);
  }
  for (net::LinkId l = 0; l < t.link_count(); ++l) {
    EXPECT_EQ(back.link(l).a, t.link(l).a);
    EXPECT_EQ(back.link(l).b, t.link(l).b);
    EXPECT_NEAR(back.link(l).bandwidth, t.link(l).bandwidth, t.link(l).bandwidth * 1e-6);
    EXPECT_NEAR(back.link(l).latency, t.link(l).latency, 1e-12);
  }
  EXPECT_TRUE(back.connected());
}

TEST(TopologyText, ParsesUnitsAndComments) {
  const auto t = net::Topology::from_text(R"(
# a tiny WAN
node cern
node fnal
node hub router
link cern hub 2.5Gbps 15ms transatlantic
link hub fnal 10Gbps 5ms
)");
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_EQ(t.link_count(), 2u);
  EXPECT_EQ(t.node(2).kind, net::NodeKind::kRouter);
  EXPECT_DOUBLE_EQ(t.link(0).bandwidth, u::gbps(2.5));
  EXPECT_DOUBLE_EQ(t.link(0).latency, 0.015);
  EXPECT_EQ(t.link(0).name, "transatlantic");
}

TEST(TopologyText, RejectsMalformedInput) {
  EXPECT_THROW(net::Topology::from_text("node\n"), std::runtime_error);
  EXPECT_THROW(net::Topology::from_text("node a\nnode a\n"), std::runtime_error);
  EXPECT_THROW(net::Topology::from_text("node a\nlink a ghost 1Gbps 1ms\n"),
               std::runtime_error);
  EXPECT_THROW(net::Topology::from_text("node a\nnode b\nlink a b 100 1ms\n"),
               std::runtime_error);  // bandwidth without unit
  EXPECT_THROW(net::Topology::from_text("frobnicate\n"), std::runtime_error);
}

// --- routing ------------------------------------------------------------

TEST(Routing, ShortestByLatency) {
  // Triangle with a slow direct edge and a fast two-hop detour.
  net::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto c = t.add_node("c");
  t.add_link(a, b, 1e8, 0.100);  // direct, slow
  const auto l_ac = t.add_link(a, c, 1e8, 0.010);
  const auto l_cb = t.add_link(c, b, 1e8, 0.010);
  net::Routing r(t);
  const auto& route = r.route(a, b);
  ASSERT_TRUE(route.valid);
  ASSERT_EQ(route.links.size(), 2u);
  EXPECT_EQ(route.links[0], l_ac);
  EXPECT_EQ(route.links[1], l_cb);
  EXPECT_DOUBLE_EQ(route.total_latency, 0.020);
}

TEST(Routing, HopMetricPrefersDirect) {
  net::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto c = t.add_node("c");
  const auto l_ab = t.add_link(a, b, 1e8, 0.100);
  t.add_link(a, c, 1e8, 0.010);
  t.add_link(c, b, 1e8, 0.010);
  net::Routing r(t, net::RouteMetric::kHops);
  const auto& route = r.route(a, b);
  ASSERT_EQ(route.links.size(), 1u);
  EXPECT_EQ(route.links[0], l_ab);
}

TEST(Routing, SelfRouteIsEmpty) {
  net::Topology t;
  const auto a = t.add_node("a");
  t.add_node("b");
  t.add_link(0, 1, 1e8, 0.001);
  net::Routing r(t);
  const auto& route = r.route(a, a);
  EXPECT_TRUE(route.valid);
  EXPECT_TRUE(route.links.empty());
  EXPECT_DOUBLE_EQ(route.total_latency, 0.0);
}

TEST(Routing, UnreachableIsInvalid) {
  net::Topology t;
  t.add_node("a");
  t.add_node("b");  // no link
  net::Routing r(t);
  EXPECT_FALSE(r.route(0, 1).valid);
}

TEST(Topology, EpochAdvancesOnMutation) {
  net::Topology t;
  const auto e0 = t.epoch();
  t.add_node("a");
  EXPECT_GT(t.epoch(), e0);
  t.add_node("b");
  const auto e1 = t.epoch();
  t.add_link(0, 1, 1e8, 0.001);
  EXPECT_GT(t.epoch(), e1);
}

// Regression: Routing::route() used to return references into a cache built
// from a topology that could keep growing — mutating the topology after the
// first query silently dangled every previously returned Route. The epoch
// check turns that into an immediate assert.
TEST(RoutingDeathTest, TopologyMutationAfterQueryAsserts) {
#ifdef NDEBUG
  GTEST_SKIP() << "epoch check is assert-based (debug only)";
#else
  net::Topology t;
  t.add_node("a");
  t.add_node("b");
  t.add_node("c");
  t.add_link(0, 1, 1e8, 0.001);
  t.add_link(1, 2, 1e8, 0.001);
  net::Routing r(t);
  ASSERT_TRUE(r.route(0, 1).valid);  // caches + captures the epoch
  t.add_link(0, 2, 1e8, 0.005);     // mutation invalidates cached paths
  EXPECT_DEATH(r.route(0, 2), "Topology mutated after Routing cached routes");
#endif
}

// --- flow-level model --------------------------------------------------

namespace {

struct FlowFixtureResult {
  std::vector<double> completion_times;
};

}  // namespace

TEST(FlowNetwork, SingleFlowLatencyPlusBandwidth) {
  core::Engine eng;
  auto topo = net::Topology::star(2, 1e6, 0.05);  // two hosts via hub: 2 hops
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  double done_at = -1;
  fn.start_flow(1, 2, 1e6, [&](net::FlowId) { done_at = eng.now(); });
  eng.run();
  // Route latency 0.1s; 1 MB over two 1 MB/s links (the flow is the only
  // user, so rate = 1 MB/s): 0.1 + 1.0.
  EXPECT_NEAR(done_at, 1.1, 1e-9);
  EXPECT_EQ(fn.flows_completed(), 1u);
  EXPECT_NEAR(fn.total_bytes_delivered(), 1e6, 1.0);
}

TEST(FlowNetwork, EqualSharesOnSharedBottleneck) {
  core::Engine eng;
  auto topo = net::Topology::dumbbell(4, 4, 1e9, 0, 1e6, 0);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) {
    fn.start_flow(static_cast<net::NodeId>(2 + i), static_cast<net::NodeId>(6 + i), 1e6,
                  [&](net::FlowId) { done.push_back(eng.now()); });
  }
  eng.run();
  ASSERT_EQ(done.size(), 4u);
  const double expect =
      lsds::stats::maxmin_equal_share_completion(1e6, 1e6, 4);
  for (double t : done) EXPECT_NEAR(t, expect, 1e-6);
}

TEST(FlowNetwork, RatesRecomputeOnDeparture) {
  // Two flows share a 1 MB/s link; one is 0.5 MB, the other 1 MB. The short
  // one finishes at t=1 (rate 0.5); the long one then speeds up:
  // remaining 0.5 MB at 1 MB/s -> finishes at 1.5.
  core::Engine eng;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_link(a, b, 1e6, 0);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  double t_short = -1, t_long = -1;
  fn.start_flow(a, b, 0.5e6, [&](net::FlowId) { t_short = eng.now(); });
  fn.start_flow(a, b, 1e6, [&](net::FlowId) { t_long = eng.now(); });
  eng.run();
  EXPECT_NEAR(t_short, 1.0, 1e-9);
  EXPECT_NEAR(t_long, 1.5, 1e-9);
}

TEST(FlowNetwork, MidStreamArrivalSlowsExisting) {
  // Flow A alone for 1s (moves 1 MB), then B joins: both at 0.5 MB/s.
  // A has 1 MB left -> finishes at 1 + 2 = 3.
  core::Engine eng;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_link(a, b, 1e6, 0);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  double t_a = -1;
  fn.start_flow(a, b, 2e6, [&](net::FlowId) { t_a = eng.now(); });
  eng.schedule_at(1.0, [&] { fn.start_flow(a, b, 10e6, nullptr); });
  eng.run_until(3.5);
  EXPECT_NEAR(t_a, 3.0, 1e-6);
}

TEST(FlowNetwork, MaxMinUnevenPaths) {
  // Two-link line a-m-b. Flow1: a->b (both links). Flow2: a->m (link0 only),
  // Flow3: m->b (link1 only). Max-min: each link shared by 2 flows -> all
  // rates C/2.
  core::Engine eng;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto m = topo.add_node("m");
  const auto b = topo.add_node("b");
  topo.add_link(a, m, 1e6, 0);
  topo.add_link(m, b, 1e6, 0);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  fn.start_flow(a, b, 1e9);
  fn.start_flow(a, m, 1e9);
  fn.start_flow(m, b, 1e9);
  eng.run_until(0.001);  // let activations happen (latency 0)
  EXPECT_NEAR(fn.link_load(0), 1e6, 1.0);
  EXPECT_NEAR(fn.link_load(1), 1e6, 1.0);
  EXPECT_NEAR(fn.link_utilization(0), 1.0, 1e-6);
}

TEST(FlowNetwork, BottleneckRestrictedFlowLeavesSpare) {
  // Flow1 a->b via bottleneck 1 MB/s; Flow2 on a separate fat path keeps
  // its full share: classic max-min (not proportional) behavior.
  core::Engine eng;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const auto c = topo.add_node("c");
  topo.add_link(a, b, 1e6, 0);   // narrow
  topo.add_link(a, c, 4e6, 0);   // fat
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  fn.start_flow(a, b, 1e9);
  fn.start_flow(a, c, 1e9);
  eng.run_until(0.001);
  EXPECT_NEAR(fn.link_load(0), 1e6, 1.0);
  EXPECT_NEAR(fn.link_load(1), 4e6, 1.0);
}

TEST(FlowNetwork, CancelReleasesBandwidth) {
  core::Engine eng;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_link(a, b, 1e6, 0);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  double t_done = -1;
  fn.start_flow(a, b, 1e6, [&](net::FlowId) { t_done = eng.now(); });
  const auto victim = fn.start_flow(a, b, 1e6);
  eng.schedule_at(0.5, [&] { EXPECT_TRUE(fn.cancel(victim)); });
  eng.run();
  // Both at 0.5 MB/s until t=0.5 (0.25 MB moved), then full speed:
  // 0.75 MB remaining at 1 MB/s -> done at 1.25.
  EXPECT_NEAR(t_done, 1.25, 1e-6);
  EXPECT_EQ(fn.flows_completed(), 1u);
}

TEST(FlowNetwork, ZeroByteFlowCompletesAfterLatency) {
  core::Engine eng;
  auto topo = net::Topology::star(2, 1e6, 0.05);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  double done_at = -1;
  fn.start_flow(1, 2, 0, [&](net::FlowId) { done_at = eng.now(); });
  eng.run();
  EXPECT_NEAR(done_at, 0.1, 1e-12);
}

TEST(FlowNetwork, SameNodeTransferInstant) {
  core::Engine eng;
  auto topo = net::Topology::star(2, 1e6, 0.05);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  double done_at = -1;
  fn.start_flow(1, 1, 5e6, [&](net::FlowId) { done_at = eng.now(); });
  eng.run();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
}

TEST(FlowNetwork, UnreachableThrows) {
  core::Engine eng;
  net::Topology topo;
  topo.add_node("a");
  topo.add_node("b");
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  EXPECT_THROW(fn.start_flow(0, 1, 100), std::invalid_argument);
}

TEST(FlowNetwork, TrackedSeriesRecordsUtilization) {
  core::Engine eng;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_link(a, b, 1e6, 0);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  fn.track_link(0);
  fn.start_flow(a, b, 1e6);
  eng.run();
  const auto& series = fn.link_series(0);
  ASSERT_GE(series.size(), 1u);
  EXPECT_NEAR(series.max_value(), 1.0, 1e-9);
}

// Property suite: max-min invariants on randomized scenarios across
// several topologies. Invariants checked at a probe instant:
//  (1) no link carries more than its capacity;
//  (2) every active flow has a saturated link on its path (bottleneck);
//  (3) rates are positive for all sharing flows.
class MaxMinProperty : public ::testing::TestWithParam<int> {};

TEST_P(MaxMinProperty, InvariantsHold) {
  const int seed = GetParam();
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = static_cast<std::uint64_t>(seed)});
  core::RngStream topo_rng(static_cast<std::uint64_t>(seed) * 13 + 1);
  auto topo = net::Topology::random_connected(12, 8, 1e6, 0.0, topo_rng);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  auto& rng = eng.rng("flows");
  std::vector<net::FlowId> ids;
  std::vector<std::vector<net::LinkId>> routes;
  for (int i = 0; i < 30; ++i) {
    const auto s = static_cast<net::NodeId>(rng.uniform_int(0, 11));
    auto d = static_cast<net::NodeId>(rng.uniform_int(0, 10));
    if (d >= s) ++d;
    ids.push_back(fn.start_flow(s, d, 1e12));  // huge: stays active
    routes.push_back(routing.route(s, d).links);
  }
  eng.run_until(0.5);  // all active now

  // (1) capacity respected
  for (net::LinkId l = 0; l < topo.link_count(); ++l) {
    EXPECT_LE(fn.link_load(l), topo.link(l).bandwidth * (1 + 1e-9));
  }
  // (2)+(3): every flow bottlenecked and positive
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const double r = fn.flow_rate(ids[i]);
    EXPECT_GT(r, 0.0);
    bool saturated = false;
    for (auto l : routes[i]) {
      if (fn.link_load(l) >= topo.link(l).bandwidth * (1 - 1e-6)) saturated = true;
    }
    EXPECT_TRUE(saturated) << "flow " << i << " has no saturated link";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinProperty, ::testing::Range(1, 11));

// --- transfer service ------------------------------------------------------

TEST(TransferService, StreamLimitQueues) {
  core::Engine eng;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_link(a, b, 1e6, 0);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  net::TransferService::Config cfg;
  cfg.max_streams_per_pair = 1;
  net::TransferService svc(eng, fn, cfg);
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    svc.submit(a, b, 1e6, [&](const net::TransferRecord& r) { done.push_back(r.finish_time); });
  }
  eng.run();
  // Serialized: 1s each.
  ASSERT_EQ(done.size(), 3u);
  EXPECT_NEAR(done[0], 1.0, 1e-6);
  EXPECT_NEAR(done[1], 2.0, 1e-6);
  EXPECT_NEAR(done[2], 3.0, 1e-6);
  EXPECT_NEAR(svc.queue_waits().max(), 2.0, 1e-6);
  EXPECT_EQ(svc.completed(), 3u);
  EXPECT_NEAR(svc.bytes_completed(), 3e6, 1.0);
}

TEST(TransferService, UnlimitedSharesBandwidth) {
  core::Engine eng;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_link(a, b, 1e6, 0);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  net::TransferService svc(eng, fn);
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    svc.submit(a, b, 1e6, [&](const net::TransferRecord& r) { done.push_back(r.finish_time); });
  }
  eng.run();
  ASSERT_EQ(done.size(), 3u);
  for (double t : done) EXPECT_NEAR(t, 3.0, 1e-6);  // all share: 3x slower
}

TEST(TransferService, RetryBackoffSequenceRespectsCapAndFailsOnce) {
  // Dial-delay sequence is retry_backoff × backoff_factor^k clamped at
  // backoff_cap, and exhausting max_attempts marks the record failed exactly
  // once. With backoff 0.5, factor 2 and cap 1.5 the dead-link dials land at
  // t = 0, 0.5, 1.5 (0.5 + 1.0), 3.0 (+1.5 capped, not +2.0).
  core::Engine eng;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_link(a, b, 1e6, 0);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  fn.set_failure_semantics(lsds::core::FailureSemantics::kFailStop);
  fn.set_link_up(0, false);  // dead for the whole run

  net::TransferService::Config cfg;
  cfg.max_attempts = 4;
  cfg.retry_backoff = 0.5;
  cfg.backoff_factor = 2.0;
  cfg.backoff_cap = 1.5;
  net::TransferService svc(eng, fn, cfg);

  int done_calls = 0;
  net::TransferRecord rec;
  svc.submit(a, b, 1e6, [&](const net::TransferRecord& r) {
    ++done_calls;
    rec = r;
  });
  // Each dead dial aborts one flow; probe the abort counter between the
  // expected dial times to pin the whole delay sequence.
  eng.schedule_at(0.25, [&] { EXPECT_EQ(fn.flows_aborted(), 1u); });
  eng.schedule_at(1.0, [&] { EXPECT_EQ(fn.flows_aborted(), 2u); });   // redial at 0.5
  eng.schedule_at(2.0, [&] { EXPECT_EQ(fn.flows_aborted(), 3u); });   // redial at 1.5
  eng.schedule_at(2.9, [&] { EXPECT_EQ(fn.flows_aborted(), 3u); });   // cap: not before 3.0
  eng.run();

  EXPECT_EQ(fn.flows_aborted(), 4u);  // final dial at 3.0
  EXPECT_EQ(done_calls, 1);           // failure reported exactly once
  EXPECT_TRUE(rec.failed);
  EXPECT_EQ(rec.attempts, 4u);
  EXPECT_DOUBLE_EQ(rec.finish_time, 3.0);
  EXPECT_EQ(svc.retries(), 3u);
  EXPECT_EQ(svc.failed(), 1u);
  EXPECT_EQ(svc.completed(), 0u);
  EXPECT_EQ(eng.tombstone_count(), 0u);
}

// --- packet-level model ------------------------------------------------

TEST(PacketNetwork, SingleTransferCompletes) {
  core::Engine eng;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_link(a, b, 1e6, 0.001);
  net::Routing routing(topo);
  net::PacketNetwork pn(eng, routing);
  double done_at = -1;
  pn.start_transfer(a, b, 150000, [&](net::TransferId) { done_at = eng.now(); });
  eng.run();
  EXPECT_GT(done_at, 0.15);  // >= serialization time of 100 packets
  EXPECT_LT(done_at, 1.0);
  EXPECT_EQ(pn.stats().transfers_completed, 1u);
  EXPECT_EQ(pn.stats().packets_delivered, 100u);
  EXPECT_EQ(pn.stats().packets_dropped, 0u);
}

TEST(PacketNetwork, PacketizationRoundsUp) {
  core::Engine eng;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_link(a, b, 1e8, 0.0001);
  net::Routing routing(topo);
  net::PacketNetwork pn(eng, routing);
  pn.start_transfer(a, b, 1, nullptr);       // 1 byte -> 1 packet
  pn.start_transfer(a, b, 1501, nullptr);    // -> 2 packets
  eng.run();
  EXPECT_EQ(pn.stats().packets_delivered, 3u);
}

TEST(PacketNetwork, CongestionCausesDropsAndRecovery) {
  // Many simultaneous transfers through a slow bottleneck with a tiny queue:
  // drops must occur, and every transfer must still complete (retransmits).
  core::Engine eng;
  auto topo = net::Topology::dumbbell(4, 4, 1e7, 0.0005, 1e6, 0.005);
  net::Routing routing(topo);
  net::PacketNetwork::Config cfg;
  cfg.queue_packets = 10;
  net::PacketNetwork pn(eng, routing, cfg);
  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    pn.start_transfer(static_cast<net::NodeId>(2 + i), static_cast<net::NodeId>(6 + i), 300000,
                      [&](net::TransferId) { ++completed; });
  }
  eng.run();
  EXPECT_EQ(completed, 4);
  EXPECT_GT(pn.stats().packets_dropped, 0u);
  EXPECT_EQ(pn.stats().retransmits, pn.stats().packets_dropped);
  EXPECT_EQ(pn.active_transfers(), 0u);
}

TEST(PacketNetwork, AgreesWithFlowModelOnUncongestedPath) {
  // On an uncongested single flow the two granularities should agree within
  // ~15% (window ramp-up causes a small slowdown at packet level).
  const double bytes = 1.5e6;
  const double bw = 1e6;
  double t_flow = -1, t_packet = -1;
  {
    core::Engine eng;
    net::Topology topo;
    const auto a = topo.add_node("a");
    const auto b = topo.add_node("b");
    topo.add_link(a, b, bw, 0.001);
    net::Routing routing(topo);
    net::FlowNetwork fn(eng, routing);
    fn.start_flow(a, b, bytes, [&](net::FlowId) { t_flow = eng.now(); });
    eng.run();
  }
  {
    core::Engine eng;
    net::Topology topo;
    const auto a = topo.add_node("a");
    const auto b = topo.add_node("b");
    topo.add_link(a, b, bw, 0.001);
    net::Routing routing(topo);
    net::PacketNetwork pn(eng, routing);
    pn.start_transfer(a, b, bytes, [&](net::TransferId) { t_packet = eng.now(); });
    eng.run();
  }
  ASSERT_GT(t_flow, 0);
  ASSERT_GT(t_packet, 0);
  EXPECT_NEAR(t_packet / t_flow, 1.0, 0.15);
}

TEST(PacketNetwork, PerPacketCostExceedsFlowCost) {
  // The paper's granularity trade-off: count engine events for the same
  // scenario under both models.
  const double bytes = 1.5e6;
  std::uint64_t ev_flow = 0, ev_packet = 0;
  {
    core::Engine eng;
    net::Topology topo;
    const auto a = topo.add_node("a");
    const auto b = topo.add_node("b");
    topo.add_link(a, b, 1e6, 0.001);
    net::Routing routing(topo);
    net::FlowNetwork fn(eng, routing);
    fn.start_flow(a, b, bytes);
    eng.run();
    ev_flow = eng.stats().executed;
  }
  {
    core::Engine eng;
    net::Topology topo;
    const auto a = topo.add_node("a");
    const auto b = topo.add_node("b");
    topo.add_link(a, b, 1e6, 0.001);
    net::Routing routing(topo);
    net::PacketNetwork pn(eng, routing);
    pn.start_transfer(a, b, bytes);
    eng.run();
    ev_packet = eng.stats().executed;
  }
  EXPECT_GT(ev_packet, 100 * ev_flow);
}

TEST(TransferService, RejectsInvalidRetryConfig) {
  core::Engine eng;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_link(a, b, 1e6, 0);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);

  auto make = [&](double backoff, double factor, double cap) {
    net::TransferService::Config cfg;
    cfg.retry_backoff = backoff;
    cfg.backoff_factor = factor;
    cfg.backoff_cap = cap;
    net::TransferService svc(eng, fn, cfg);
  };
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  EXPECT_NO_THROW(make(1.0, 2.0, 60.0));
  EXPECT_NO_THROW(make(1e-9, 1.0, 0.0));  // boundary values are legal

  // A zero or negative backoff would re-dial a dead link in a tight loop at
  // the same timestamp — reject at construction, not mid-simulation.
  EXPECT_THROW(make(0.0, 2.0, 60.0), std::invalid_argument);
  EXPECT_THROW(make(-1.0, 2.0, 60.0), std::invalid_argument);
  EXPECT_THROW(make(nan, 2.0, 60.0), std::invalid_argument);

  EXPECT_THROW(make(1.0, 0.5, 60.0), std::invalid_argument);  // shrinking backoff
  EXPECT_THROW(make(1.0, nan, 60.0), std::invalid_argument);

  EXPECT_THROW(make(1.0, 2.0, -1.0), std::invalid_argument);
  EXPECT_THROW(make(1.0, 2.0, inf), std::invalid_argument);
  EXPECT_THROW(make(1.0, 2.0, nan), std::invalid_argument);
}
