// Logger: levels, sink capture, formatting.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/log.hpp"

namespace u = lsds::util;

namespace {

class LogCapture {
 public:
  LogCapture() {
    u::Log::set_sink([this](u::LogLevel lvl, const std::string& msg) {
      lines.emplace_back(lvl, msg);
    });
  }
  ~LogCapture() {
    u::Log::set_sink(nullptr);
    u::Log::set_level(u::LogLevel::kWarn);  // restore default
  }
  std::vector<std::pair<u::LogLevel, std::string>> lines;
};

}  // namespace

TEST(Log, LevelFiltering) {
  LogCapture cap;
  u::Log::set_level(u::LogLevel::kWarn);
  LSDS_LOG_DEBUG("dropped %d", 1);
  LSDS_LOG_INFO("dropped too");
  LSDS_LOG_WARN("kept %d", 2);
  LSDS_LOG_ERROR("kept also");
  ASSERT_EQ(cap.lines.size(), 2u);
  EXPECT_EQ(cap.lines[0].first, u::LogLevel::kWarn);
  EXPECT_EQ(cap.lines[0].second, "kept 2");
  EXPECT_EQ(cap.lines[1].first, u::LogLevel::kError);
}

TEST(Log, AllLevelsWhenTrace) {
  LogCapture cap;
  u::Log::set_level(u::LogLevel::kTrace);
  LSDS_LOG_TRACE("t");
  LSDS_LOG_DEBUG("d");
  LSDS_LOG_INFO("i");
  EXPECT_EQ(cap.lines.size(), 3u);
}

TEST(Log, OffSilencesEverything) {
  LogCapture cap;
  u::Log::set_level(u::LogLevel::kOff);
  LSDS_LOG_ERROR("even errors");
  EXPECT_TRUE(cap.lines.empty());
}

TEST(Log, EnabledCheck) {
  u::Log::set_level(u::LogLevel::kInfo);
  EXPECT_TRUE(u::Log::enabled(u::LogLevel::kError));
  EXPECT_TRUE(u::Log::enabled(u::LogLevel::kInfo));
  EXPECT_FALSE(u::Log::enabled(u::LogLevel::kDebug));
  u::Log::set_level(u::LogLevel::kWarn);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(u::to_string(u::LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(u::to_string(u::LogLevel::kError), "ERROR");
  EXPECT_STREQ(u::to_string(u::LogLevel::kOff), "OFF");
}
