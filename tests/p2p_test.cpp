// P2P overlays: Chord DHT correctness and scaling, Gnutella flooding.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/engine.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "p2p/chord.hpp"
#include "p2p/gnutella.hpp"
#include "stats/summary.hpp"

namespace core = lsds::core;
namespace net = lsds::net;
namespace p2p = lsds::p2p;

namespace {

struct P2pWorld {
  core::Engine eng{{.queue = core::QueueKind::kBinaryHeap, .seed = 5}};
  net::Topology topo;
  std::unique_ptr<net::Routing> routing;

  explicit P2pWorld(std::size_t n) {
    core::RngStream rng(17);
    topo = net::Topology::random_connected(n, n / 2, 1e8, 0.005, rng);
    routing = std::make_unique<net::Routing>(topo);
  }
};

}  // namespace

// --- Chord ----------------------------------------------------------------

TEST(Chord, SinglePeerOwnsEverything) {
  P2pWorld w(2);
  p2p::ChordNetwork chord(w.eng, *w.routing);
  chord.add_peer(0);
  chord.build();
  EXPECT_EQ(chord.responsible_peer(0), 0u);
  EXPECT_EQ(chord.responsible_peer(12345), 0u);
  bool done = false;
  chord.lookup(0, 999, [&](const p2p::ChordNetwork::LookupResult& r) {
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.home, 0u);
    done = true;
  });
  w.eng.run();
  EXPECT_TRUE(done);
}

TEST(Chord, LookupFindsResponsiblePeer) {
  P2pWorld w(64);
  p2p::ChordNetwork chord(w.eng, *w.routing);
  for (std::size_t i = 0; i < 64; ++i) chord.add_peer(static_cast<net::NodeId>(i));
  chord.build();
  auto& rng = w.eng.rng("keys");
  int checked = 0;
  for (int q = 0; q < 200; ++q) {
    const auto key = static_cast<p2p::ChordId>(rng.uniform_int(0, (1ll << 32) - 1));
    const auto origin = static_cast<std::size_t>(rng.uniform_int(0, 63));
    const auto expect = chord.responsible_peer(key);
    chord.lookup(origin, key, [&, expect](const p2p::ChordNetwork::LookupResult& r) {
      ASSERT_TRUE(r.ok);
      EXPECT_EQ(r.home, expect);
      ++checked;
    });
  }
  w.eng.run();
  EXPECT_EQ(checked, 200);
}

TEST(Chord, HopsAreLogarithmic) {
  auto mean_hops = [](std::size_t n) {
    P2pWorld w(n);
    p2p::ChordNetwork chord(w.eng, *w.routing);
    for (std::size_t i = 0; i < n; ++i) chord.add_peer(static_cast<net::NodeId>(i));
    chord.build();
    auto& rng = w.eng.rng("keys");
    lsds::stats::Accumulator hops;
    for (int q = 0; q < 300; ++q) {
      const auto key = static_cast<p2p::ChordId>(rng.uniform_int(0, (1ll << 32) - 1));
      const auto origin =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      chord.lookup(origin, key, [&](const p2p::ChordNetwork::LookupResult& r) {
        ASSERT_TRUE(r.ok);
        hops.add(static_cast<double>(r.hops));
      });
    }
    w.eng.run();
    return hops.mean();
  };
  const double h64 = mean_hops(64);
  const double h512 = mean_hops(512);
  // Chord theory: ~log2(n)/2 hops. 64 -> ~3, 512 -> ~4.5. Sub-linear growth:
  // 8x peers must cost far less than 8x hops.
  EXPECT_LT(h512, h64 * 2.5);
  EXPECT_GT(h512, h64);  // but it does grow
  EXPECT_NEAR(h64, std::log2(64.0) / 2, 1.5);
  EXPECT_NEAR(h512, std::log2(512.0) / 2, 1.5);
}

TEST(Chord, LatencyAccumulatesOverHops) {
  P2pWorld w(64);
  p2p::ChordNetwork chord(w.eng, *w.routing);
  for (std::size_t i = 0; i < 64; ++i) chord.add_peer(static_cast<net::NodeId>(i));
  chord.build();
  bool saw_multi_hop = false;
  auto& rng = w.eng.rng("keys");
  for (int q = 0; q < 50; ++q) {
    const auto key = static_cast<p2p::ChordId>(rng.uniform_int(0, (1ll << 32) - 1));
    chord.lookup(0, key, [&](const p2p::ChordNetwork::LookupResult& r) {
      if (r.hops >= 2) {
        saw_multi_hop = true;
        EXPECT_GT(r.latency, 0.005);  // at least one overlay hop of latency
      }
    });
  }
  w.eng.run();
  EXPECT_TRUE(saw_multi_hop);
}

TEST(Chord, ChurnRebuildKeepsCorrectness) {
  P2pWorld w(32);
  p2p::ChordNetwork chord(w.eng, *w.routing);
  std::vector<p2p::PeerIndex> peers;
  for (std::size_t i = 0; i < 32; ++i) peers.push_back(chord.add_peer(static_cast<net::NodeId>(i)));
  chord.build();
  // Remove a quarter of the peers, rebuild, verify lookups still resolve.
  for (std::size_t i = 0; i < 8; ++i) chord.remove_peer(peers[i * 4]);
  chord.build();
  EXPECT_EQ(chord.size(), 24u);
  auto& rng = w.eng.rng("keys");
  int checked = 0;
  for (int q = 0; q < 100; ++q) {
    const auto key = static_cast<p2p::ChordId>(rng.uniform_int(0, (1ll << 32) - 1));
    const auto expect = chord.responsible_peer(key);
    chord.lookup(peers[1], key, [&, expect](const p2p::ChordNetwork::LookupResult& r) {
      ASSERT_TRUE(r.ok);
      EXPECT_EQ(r.home, expect);
      ++checked;
    });
  }
  w.eng.run();
  EXPECT_EQ(checked, 100);
}

// --- protocol mode: stabilization under churn -------------------------------

namespace {

// Fraction of 100 random lookups that resolve to the correct live owner.
double lookup_correctness(P2pWorld& w, p2p::ChordNetwork& chord, std::size_t n_peers,
                          double horizon) {
  auto& rng = w.eng.rng("churn.keys");
  int ok = 0, total = 0;
  for (int q = 0; q < 100; ++q) {
    const auto key = static_cast<p2p::ChordId>(rng.uniform_int(0, (1ll << 32) - 1));
    p2p::PeerIndex origin;
    do {
      origin = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n_peers) - 1));
    } while (chord.id_of(origin) == 0 && false);
    const auto expect = chord.responsible_peer(key);
    ++total;
    chord.lookup(origin, key, [&, expect](const p2p::ChordNetwork::LookupResult& r) {
      if (r.ok && r.home == expect) ++ok;
    });
  }
  w.eng.run_until(horizon);
  return static_cast<double>(ok) / total;
}

}  // namespace

TEST(ChordProtocol, StabilizationHealsChurn) {
  P2pWorld w(64);
  p2p::ChordNetwork chord(w.eng, *w.routing);
  std::vector<p2p::PeerIndex> peers;
  for (std::size_t i = 0; i < 64; ++i) {
    peers.push_back(chord.add_peer(static_cast<net::NodeId>(i)));
  }
  chord.build();
  chord.enable_protocol_mode(/*stabilize_period=*/0.5, /*horizon=*/300.0);

  // Crash 16 peers (no rebuild). Lookups start from surviving peers.
  auto& rng = w.eng.rng("churn.kill");
  std::set<p2p::PeerIndex> dead;
  while (dead.size() < 16) {
    const auto victim =
        static_cast<p2p::PeerIndex>(rng.uniform_int(1, 63));  // keep peer 0 alive
    if (dead.insert(victim).second) chord.fail_peer(victim);
  }

  // Immediately after the crash, some lookups land on stale owners.
  auto survivors_lookup = [&](double until) {
    auto& krng = w.eng.rng("churn.keys2");
    int ok = 0;
    for (int q = 0; q < 150; ++q) {
      const auto key = static_cast<p2p::ChordId>(krng.uniform_int(0, (1ll << 32) - 1));
      const auto expect = chord.responsible_peer(key);
      chord.lookup(0, key, [&, expect](const p2p::ChordNetwork::LookupResult& r) {
        if (r.ok && r.home == expect) ++ok;
      });
    }
    w.eng.run_until(until);
    return ok / 150.0;
  };

  const double fresh = survivors_lookup(w.eng.now() + 2.0);
  // Let stabilization + fix-fingers run for many rounds.
  w.eng.run_until(150.0);
  const double healed = survivors_lookup(w.eng.now() + 10.0);

  EXPECT_LT(fresh, 0.95);    // churn visibly broke routing
  EXPECT_GT(healed, 0.97);   // maintenance repaired it
  EXPECT_GT(chord.stabilize_rounds(), 1000u);
}

TEST(ChordProtocol, JoinIntegratesNewPeer) {
  P2pWorld w(40);
  p2p::ChordNetwork chord(w.eng, *w.routing);
  for (std::size_t i = 0; i < 32; ++i) chord.add_peer(static_cast<net::NodeId>(i));
  chord.build();
  chord.enable_protocol_mode(0.5, 400.0);

  // Eight protocol joins while the network runs.
  for (std::size_t j = 0; j < 8; ++j) {
    w.eng.schedule_at(5.0 + 2.0 * static_cast<double>(j), [&chord, j] {
      chord.join_via(static_cast<net::NodeId>(32 + j), /*bootstrap=*/j % 4);
    });
  }
  w.eng.run_until(200.0);
  EXPECT_EQ(chord.size(), 40u);

  // After integration, lookups from an old peer route correctly, including
  // keys now owned by the newcomers.
  const double correct = lookup_correctness(w, chord, 40, 250.0);
  EXPECT_GT(correct, 0.97);
}

TEST(ChordProtocol, MaintenanceStopsAtHorizon) {
  P2pWorld w(8);
  p2p::ChordNetwork chord(w.eng, *w.routing);
  for (std::size_t i = 0; i < 8; ++i) chord.add_peer(static_cast<net::NodeId>(i));
  chord.build();
  chord.enable_protocol_mode(0.5, 20.0);
  w.eng.run();  // must terminate: loops end at the horizon
  EXPECT_GE(w.eng.now(), 20.0);
  EXPECT_LT(w.eng.now(), 30.0);
}

TEST(Chord, HashKeyDeterministic) {
  P2pWorld w(2);
  p2p::ChordNetwork chord(w.eng, *w.routing);
  EXPECT_EQ(chord.hash_key("a"), chord.hash_key("a"));
  EXPECT_NE(chord.hash_key("a"), chord.hash_key("b"));
}

// --- Gnutella ------------------------------------------------------------

TEST(Gnutella, FindsLocalObjectWithZeroMessages) {
  P2pWorld w(16);
  p2p::GnutellaNetwork g(w.eng, *w.routing);
  for (std::size_t i = 0; i < 16; ++i) g.add_peer(static_cast<net::NodeId>(i));
  auto& rng = w.eng.rng("overlay");
  g.build_random_overlay(3, rng);
  g.place_object(5, "obj");
  bool done = false;
  g.search(5, "obj", 4, [&](const p2p::GnutellaNetwork::SearchResult& r) {
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.holder, 5u);
    EXPECT_EQ(r.hops, 0u);
    done = true;
  });
  w.eng.run();
  EXPECT_TRUE(done);
}

TEST(Gnutella, TtlLimitsReach) {
  // Ring-like sparse overlay: an object far away is unreachable with a
  // small TTL but reachable with a large one.
  core::Engine eng;
  net::Topology topo = net::Topology::ring(20, 1e8, 0.001);
  net::Routing routing(topo);
  p2p::GnutellaNetwork g(eng, routing);
  for (std::size_t i = 0; i < 20; ++i) g.add_peer(static_cast<net::NodeId>(i));
  // Manual ring overlay via a degree-1 trick is impossible with the random
  // builder, so use degree 2 random and rely on statistics instead:
  auto& rng = eng.rng("overlay");
  g.build_random_overlay(2, rng);
  g.place_object(10, "needle");
  bool found_small = false, found_big = false;
  g.search(0, "needle", 1, [&](const auto& r) { found_small = r.found; });
  g.search(0, "needle", 20, [&](const auto& r) { found_big = r.found; });
  eng.run();
  EXPECT_TRUE(found_big);        // full flood over a connected overlay finds it
  EXPECT_FALSE(found_small && !found_big);  // sanity: small <= big reach
}

TEST(Gnutella, MessagesBoundedByEdgeCount) {
  P2pWorld w(30);
  p2p::GnutellaNetwork g(w.eng, *w.routing);
  for (std::size_t i = 0; i < 30; ++i) g.add_peer(static_cast<net::NodeId>(i));
  auto& rng = w.eng.rng("overlay");
  g.build_random_overlay(4, rng);
  std::size_t total_degree = 0;
  for (std::size_t i = 0; i < 30; ++i) total_degree += g.degree_of(i);
  std::size_t messages = 0;
  g.search(0, "ghost", 30, [&](const auto& r) {
    EXPECT_FALSE(r.found);
    messages = r.messages;
  });
  w.eng.run();
  // Full flood sends at most one message per directed edge.
  EXPECT_LE(messages, total_degree);
  EXPECT_GT(messages, 25u);  // and actually covers the network
}

TEST(Gnutella, FloodCostExceedsChordCost) {
  // The headline structured-vs-unstructured comparison, as a test.
  P2pWorld w(128);
  p2p::ChordNetwork chord(w.eng, *w.routing);
  p2p::GnutellaNetwork flood(w.eng, *w.routing);
  for (std::size_t i = 0; i < 128; ++i) {
    chord.add_peer(static_cast<net::NodeId>(i));
    flood.add_peer(static_cast<net::NodeId>(i));
  }
  chord.build();
  auto& rng = w.eng.rng("overlay");
  flood.build_random_overlay(4, rng);

  lsds::stats::Accumulator chord_msgs, flood_msgs;
  for (int q = 0; q < 40; ++q) {
    const auto target = static_cast<std::size_t>(rng.uniform_int(0, 127));
    const std::string obj = "o" + std::to_string(q);
    flood.place_object(target, obj);
    const std::uint64_t before = chord.messages_sent();
    chord.lookup(0, chord.hash_key(obj), [&, before](const auto& r) {
      ASSERT_TRUE(r.ok);
    });
    flood.search(0, obj, 6, [&](const auto& r) {
      flood_msgs.add(static_cast<double>(r.messages));
    });
    (void)before;
  }
  w.eng.run();
  // Chord: total messages / lookups ~ hops+1; flooding floods hundreds.
  const double chord_per_lookup = static_cast<double>(chord.messages_sent()) / 40.0;
  EXPECT_LT(chord_per_lookup * 10, flood_msgs.mean());
}

// --- PlotWriter (visual output axis) ---------------------------------------

#include "stats/gnuplot.hpp"

TEST(PlotWriter, EmitsDatAndGp) {
  lsds::stats::PlotWriter pw("/tmp/lsds_plot_test", "test plot");
  pw.set_axis_labels("n", "cost");
  pw.set_logscale(true, false);
  pw.add_series({"s1", {1, 2, 4}, {10, 20, 40}});
  pw.add_series({"s2", {1, 2}, {5, 9}});
  const auto dat = pw.dat_contents();
  EXPECT_NE(dat.find("# series 0: s1"), std::string::npos);
  EXPECT_NE(dat.find("4 40"), std::string::npos);
  const auto gp = pw.gp_contents();
  EXPECT_NE(gp.find("set logscale x"), std::string::npos);
  EXPECT_EQ(gp.find("set logscale y"), std::string::npos);
  EXPECT_NE(gp.find("index 1"), std::string::npos);
  EXPECT_NE(gp.find("lsds_plot_test.dat"), std::string::npos);
  EXPECT_TRUE(pw.write());
}

TEST(PlotWriter, TimeSeriesAdapter) {
  lsds::stats::TimeSeries ts;
  ts.record(0, 1);
  ts.record(5, 2);
  lsds::stats::PlotWriter pw("/tmp/lsds_plot_test2", "ts");
  pw.add_time_series("backlog", ts);
  EXPECT_NE(pw.dat_contents().find("5 2"), std::string::npos);
}
