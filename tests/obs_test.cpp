// Observability layer: JSON serialization, metrics registry, span bus,
// structured run reports — and the load-bearing invariant: observing a run
// must not change it (the event trace of an observed engine is
// byte-identical to an unobserved one).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/observability.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "sim/chaos/chaos.hpp"
#include "sim/gridsim/gridsim.hpp"
#include "util/ini.hpp"

namespace {

using namespace lsds;

// --- Json -------------------------------------------------------------------

TEST(Json, ScalarsAndNesting) {
  obs::Json j = obs::Json::object();
  j.set("b", true);
  j.set("i", std::int64_t{-3});
  j.set("d", 0.5);
  j.set("s", "hi");
  j["nested"].set("k", 1);
  j["arr"].push(1).push(2);
  EXPECT_EQ(j.dump(0),
            R"({"b":true,"i":-3,"d":0.5,"s":"hi","nested":{"k":1},"arr":[1,2]})");
}

TEST(Json, InsertionOrderPreserved) {
  obs::Json j = obs::Json::object();
  j.set("zebra", 1);
  j.set("alpha", 2);
  const std::string out = j.dump(0);
  EXPECT_LT(out.find("zebra"), out.find("alpha"));
}

TEST(Json, StringQuoting) {
  EXPECT_EQ(obs::Json::quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(obs::Json::quote(std::string_view("\x01", 1)), "\"\\u0001\"");
}

TEST(Json, DoublesRoundTrip) {
  for (double d : {0.1, 1.0 / 3.0, 2.5e9, 619.3793386205052, -0.0, 1e308}) {
    const std::string s = obs::Json::number(d);
    EXPECT_EQ(std::stod(s), d) << s;
  }
  EXPECT_EQ(obs::Json::number(42.0), "42");
  EXPECT_EQ(obs::Json::number(std::nan("")), "NaN");
}

TEST(JsonParse, DumpParseDumpIsIdentity) {
  // The distributed campaign protocol depends on parse(dump(x)).dump() ==
  // dump(x): partials travel between processes as printed JSON.
  obs::Json j = obs::Json::object();
  j.set("b", true);
  j.set("i", std::int64_t{-3});
  j.set("d", 1.0 / 3.0);
  j.set("s", "quote \" backslash \\ newline \n");
  j["nested"].set("tiny", 1e-308);
  j["arr"].push(1).push(0.1).push("x");
  j.set("none", obs::Json());
  const std::string once = j.dump();
  EXPECT_EQ(obs::Json::parse(once).dump(), once);
}

TEST(JsonParse, TypesAndEscapes) {
  using Kind = obs::Json::Kind;
  const obs::Json j = obs::Json::parse(
      R"({"i": 42, "d": 2.5, "neg": -7, "big": 1e300, "u": "a\u00e9\u20acb",)"
      R"( "t": true, "n": null, "arr": [1, [2]], "nan": NaN})");
  EXPECT_EQ(j.find("i")->kind(), Kind::kInt);
  EXPECT_EQ(j.find("i")->as_int(), 42);
  EXPECT_EQ(j.find("d")->kind(), Kind::kDouble);
  EXPECT_DOUBLE_EQ(j.find("d")->as_double(), 2.5);
  EXPECT_EQ(j.find("neg")->as_int(), -7);
  EXPECT_EQ(j.find("big")->kind(), Kind::kDouble);  // too big for int64
  EXPECT_EQ(j.find("u")->as_string(), "a\xc3\xa9\xe2\x82\xac" "b");  // UTF-8 from \u
  EXPECT_TRUE(j.find("t")->as_bool());
  EXPECT_EQ(j.find("n")->kind(), Kind::kNull);
  EXPECT_EQ(j.find("arr")->items()[1].items()[0].as_int(), 2);
  EXPECT_TRUE(std::isnan(j.find("nan")->as_double()));
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(obs::Json::parse(""), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("{"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("{\"a\": 1,}"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("[1, 2] trailing"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("tru"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("{1: 2}"), std::runtime_error);
}

// --- MetricsRegistry --------------------------------------------------------

TEST(Metrics, CountersGaugesTimers) {
  obs::MetricsRegistry m(1.0);
  m.bump("jobs", 1);
  m.bump("jobs", 2);
  double level = 5;
  m.gauge("level", [&] { return level; });
  m.time("svc", 0.25);
  m.time("svc", 0.75);
  m.advance(0.5);   // before the first boundary: no sample yet
  m.advance(2.3);   // crosses t=2 -> samples at 2.0
  level = 9;
  m.sample(3.0);    // explicit closing sample

  const obs::Json j = m.to_json(3.0);
  EXPECT_EQ(j.find("counters")->find("jobs")->as_double(), 3.0);
  const auto* svc = j.find("timers")->find("svc");
  EXPECT_EQ(svc->find("count")->as_int(), 2);
  EXPECT_DOUBLE_EQ(svc->find("mean_s")->as_double(), 0.5);
  const auto* series = j.find("series")->find("level");
  EXPECT_EQ(series->find("last")->as_double(), 9.0);
  EXPECT_EQ(series->find("last_t")->as_double(), 3.0);
}

TEST(Metrics, AdvanceSamplesAtCadenceBoundary) {
  obs::MetricsRegistry m(2.0);
  m.bump("c", 1);
  m.advance(5.1);  // boundary floor(5.1/2)*2 = 4
  m.sample(5.1);   // closing sample, as finalize() takes
  const obs::Json j = m.to_json(5.1);
  // one cadence sample at t=4 plus the closing sample at 5.1
  EXPECT_EQ(j.find("series")->find("c")->find("samples")->as_int(), 2);
}

// --- SpanBus ----------------------------------------------------------------

TEST(SpanBus, DisabledBusDropsAndEnabledDelivers) {
  auto& bus = obs::SpanBus::global();
  bus.reset();
  EXPECT_FALSE(bus.enabled());
  int seen = 0;
  obs::Span s;
  s.kind = "flow";
  s.status = "done";
  bus.publish(s);  // unarmed: dropped
  bus.subscribe([&](const obs::Span&) { ++seen; });
  EXPECT_TRUE(bus.enabled());
  bus.publish(s);
  EXPECT_EQ(seen, 1);
  bus.reset();
  bus.publish(s);
  EXPECT_EQ(seen, 1);
}

// --- RunReport --------------------------------------------------------------

TEST(RunReport, GoldenSkeleton) {
  obs::RunReport report;
  report.set_scenario("demo", 7, "heap", "demo.ini");
  report.set_result_core(3, 1.5, 250.0);
  const std::string expected = R"({
  "schema": "lsds.run_report/1",
  "scenario": {
    "facade": "demo",
    "seed": 7,
    "queue": "heap",
    "source": "demo.ini"
  },
  "result": {
    "jobs_done": 3,
    "makespan": 1.5,
    "bytes_moved": 250
  }
})";
  EXPECT_EQ(report.to_json_string(), expected);
}

TEST(RunReport, EchoesConfigVerbatim) {
  const auto ini = util::IniConfig::parse("[scenario]\nfacade = simg\n[simg]\ntasks = 9\n");
  obs::RunReport report;
  report.echo_config(ini);
  const auto* cfg = report.root().find("config");
  ASSERT_NE(cfg, nullptr);
  EXPECT_EQ(cfg->find("simg")->find("tasks")->as_string(), "9");
}

TEST(RunReport, WriteProducesParseableFile) {
  const std::string path = ::testing::TempDir() + "obs_report_test.json";
  obs::RunReport report;
  report.set_scenario("x", 1, "heap");
  report.write(path);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), report.to_json_string() + "\n");
  std::remove(path.c_str());
}

// --- the determinism invariant ---------------------------------------------

using Trace = std::vector<std::pair<double, core::EventId>>;

Trace run_chaos_traced(obs::Observability* o) {
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 11});
  Trace trace;
  eng.set_trace_hook([&](double t, core::EventId id) { trace.emplace_back(t, id); });
  if (o) o->attach(eng);
  sim::chaos::Config cfg;
  cfg.num_hosts = 4;
  cfg.num_jobs = 60;
  cfg.failures.mtbf = 40;
  cfg.failures.mttr = 5;
  sim::chaos::run(eng, cfg);
  if (o) o->detach();
  return trace;
}

TEST(ObservabilityDeterminism, ObservedTraceIsByteIdenticalToUnobserved) {
  const Trace bare = run_chaos_traced(nullptr);

  obs::Options opts;
  opts.enabled = true;
  opts.trace_path = ::testing::TempDir() + "obs_det_trace.jsonl";
  obs::Observability o(opts);
  const Trace observed = run_chaos_traced(&o);

  ASSERT_EQ(bare.size(), observed.size());
  EXPECT_EQ(bare, observed);  // same (time, seq) for every event
  std::remove(opts.trace_path.c_str());
}

TEST(ObservabilityDeterminism, DisabledIsANoOp) {
  obs::Options opts;  // enabled = false
  obs::Observability o(opts);
  const Trace bare = run_chaos_traced(nullptr);
  const Trace observed = run_chaos_traced(&o);
  EXPECT_EQ(bare, observed);
  EXPECT_FALSE(obs::SpanBus::global().enabled());
}

// --- end-to-end report finiteness -------------------------------------------

void expect_finite(const obs::Json& j, const std::string& path) {
  switch (j.kind()) {
    case obs::Json::Kind::kDouble:
      EXPECT_TRUE(std::isfinite(j.as_double())) << path;
      break;
    case obs::Json::Kind::kObject:
      for (const auto& [k, v] : j.members()) expect_finite(v, path + "." + k);
      break;
    case obs::Json::Kind::kArray: {
      for (const auto& v : j.items()) expect_finite(v, path + "[]");
      break;
    }
    default:
      break;
  }
}

TEST(RunReport, EndToEndGridsimReportIsFinite) {
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 3});
  obs::Options opts;
  opts.enabled = true;
  obs::Observability o(opts);
  o.attach(eng);

  sim::gridsim::Config cfg;
  cfg.num_jobs = 40;
  const auto res = sim::gridsim::run(eng, cfg);

  obs::RunReport report;
  report.set_scenario("gridsim", 3, "heap");
  res.to_report(report);
  o.finalize(eng, report);

  EXPECT_EQ(report.result().find("jobs_done")->as_int(),
            static_cast<std::int64_t>(res.completed));
  ASSERT_NE(report.root().find("metrics"), nullptr);
  ASSERT_NE(report.root().find("profiler"), nullptr);
  expect_finite(report.root(), "root");
}

}  // namespace
