// Cluster batch queue: FCFS vs EASY backfilling.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "middleware/batch_queue.hpp"

namespace core = lsds::core;
namespace mw = lsds::middleware;
using mw::BatchJob;
using mw::BatchPolicy;
using mw::BatchQueue;

namespace {

BatchJob job(lsds::hosts::JobId id, unsigned cores, double runtime, double estimate = 0) {
  BatchJob j;
  j.id = id;
  j.cores = cores;
  j.runtime_actual = runtime;
  j.runtime_estimate = estimate > 0 ? estimate : runtime;
  return j;
}

}  // namespace

TEST(BatchQueue, FcfsRunsInOrder) {
  core::Engine eng;
  BatchQueue q(eng, 4, BatchPolicy::kFcfs);
  std::vector<lsds::hosts::JobId> order;
  for (lsds::hosts::JobId i = 1; i <= 3; ++i) {
    q.submit(job(i, 4, 10), [&](const BatchJob& j) { order.push_back(j.id); });
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<lsds::hosts::JobId>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(eng.now(), 30.0);
  EXPECT_EQ(q.completed(), 3u);
  EXPECT_EQ(q.backfilled(), 0u);
}

TEST(BatchQueue, FcfsHeadOfLineBlocking) {
  // narrow(2 cores,10s) running; wide(4) queued; tiny(1, 1s) behind it.
  // FCFS: tiny waits for the wide job even though a core is free.
  core::Engine eng;
  BatchQueue q(eng, 4, BatchPolicy::kFcfs);
  double tiny_start = -1;
  q.submit(job(1, 2, 10));
  q.submit(job(2, 4, 10));
  q.submit(job(3, 1, 1), [&](const BatchJob&) { tiny_start = eng.now() - 1; });
  eng.run();
  EXPECT_DOUBLE_EQ(tiny_start, 20.0);  // after the wide job finishes
}

TEST(BatchQueue, EasyBackfillsWithoutDelayingHead) {
  // Same scenario under EASY: tiny(1s) fits in the 2 idle cores and ends
  // before the wide job's reservation (t=10), so it backfills immediately —
  // and the wide job still starts at t=10.
  core::Engine eng;
  BatchQueue q(eng, 4, BatchPolicy::kEasyBackfill);
  double tiny_start = -1, wide_start = -1;
  q.submit(job(1, 2, 10));
  q.submit(job(2, 4, 10), [&](const BatchJob&) { wide_start = eng.now() - 10; });
  q.submit(job(3, 1, 1), [&](const BatchJob&) { tiny_start = eng.now() - 1; });
  eng.run();
  EXPECT_DOUBLE_EQ(tiny_start, 0.0);   // backfilled at once
  EXPECT_DOUBLE_EQ(wide_start, 10.0);  // reservation honored
  EXPECT_EQ(q.backfilled(), 1u);
}

TEST(BatchQueue, BackfillRefusesJobsThatWouldDelayHead) {
  // A 2-core 20s job fits the idle cores but would overlap the wide job's
  // reservation at t=10 and exceed the spare — EASY must hold it back.
  core::Engine eng;
  BatchQueue q(eng, 4, BatchPolicy::kEasyBackfill);
  double wide_start = -1, long_start = -1;
  q.submit(job(1, 2, 10));                                                    // runs now
  q.submit(job(2, 4, 10), [&](const BatchJob&) { wide_start = eng.now() - 10; });
  q.submit(job(3, 2, 20), [&](const BatchJob&) { long_start = eng.now() - 20; });
  eng.run();
  EXPECT_DOUBLE_EQ(wide_start, 10.0);  // never delayed
  EXPECT_GE(long_start, 10.0);         // had to wait for the head
  EXPECT_EQ(q.backfilled(), 0u);
}

TEST(BatchQueue, SpareCoresAllowLongBackfill) {
  // Head needs 3 cores; shadow at t=10 frees 4 => spare = 1. A 1-core
  // long job may backfill into the spare even though it outlives the
  // shadow time.
  core::Engine eng;
  BatchQueue q(eng, 4, BatchPolicy::kEasyBackfill);
  double head_start = -1, long_start = -1;
  q.submit(job(1, 4, 10));  // occupies everything until t=10
  q.submit(job(2, 3, 5), [&](const BatchJob&) { head_start = eng.now() - 5; });
  q.submit(job(3, 1, 50), [&](const BatchJob&) { long_start = eng.now() - 50; });
  eng.run();
  EXPECT_DOUBLE_EQ(head_start, 10.0);
  EXPECT_DOUBLE_EQ(long_start, 10.0);  // started beside the head, in the spare
  EXPECT_EQ(q.backfilled(), 0u);       // started by the normal loop at t=10
}

TEST(BatchQueue, SpareShrinksAcrossBackfills) {
  // 8 cores; blocker holds 6 until t=10; head needs 8 (shadow t=10,
  // spare 0). Two 1-core 30s jobs fit the 2 idle cores but both outlive
  // the shadow and spare is 0 — neither may backfill.
  core::Engine eng;
  BatchQueue q(eng, 8, BatchPolicy::kEasyBackfill);
  double head_start = -1;
  q.submit(job(1, 6, 10));
  q.submit(job(2, 8, 5), [&](const BatchJob&) { head_start = eng.now() - 5; });
  q.submit(job(3, 1, 30));
  q.submit(job(4, 1, 30));
  eng.run();
  EXPECT_DOUBLE_EQ(head_start, 10.0);
  EXPECT_EQ(q.backfilled(), 0u);
}

TEST(BatchQueue, EasyImprovesUtilizationOnMixedLoad) {
  auto run_policy = [](BatchPolicy policy) {
    core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 9});
    BatchQueue q(eng, 16, policy);
    auto& rng = eng.rng("wl");
    for (lsds::hosts::JobId i = 1; i <= 120; ++i) {
      const auto cores = static_cast<unsigned>(rng.uniform_int(1, 16));
      const double rt = rng.exponential(20.0) + 1.0;
      eng.schedule_at(rng.uniform(0, 100), [&q, i, cores, rt] {
        BatchJob j;
        j.id = i;
        j.cores = cores;
        j.runtime_actual = rt;
        j.runtime_estimate = rt * 1.5;  // padded estimates, as users do
        q.submit(j);
      });
    }
    eng.run();
    return std::tuple{eng.now(), q.waits().mean(), q.backfilled()};
  };
  const auto [fcfs_end, fcfs_wait, fcfs_bf] = run_policy(BatchPolicy::kFcfs);
  const auto [easy_end, easy_wait, easy_bf] = run_policy(BatchPolicy::kEasyBackfill);
  EXPECT_EQ(fcfs_bf, 0u);
  EXPECT_GT(easy_bf, 0u);
  EXPECT_LE(easy_end, fcfs_end);    // backfilling never lengthens the schedule here
  EXPECT_LT(easy_wait, fcfs_wait);  // and cuts queue waits
}

TEST(BatchQueue, UnderestimatedRuntimesStillComplete) {
  // Actual runtime far beyond the estimate: reservations go stale but
  // nothing deadlocks or loses jobs.
  core::Engine eng;
  BatchQueue q(eng, 4, BatchPolicy::kEasyBackfill);
  int done = 0;
  q.submit(job(1, 4, 50, /*estimate=*/5), [&](const BatchJob&) { ++done; });
  q.submit(job(2, 2, 5), [&](const BatchJob&) { ++done; });
  q.submit(job(3, 2, 5), [&](const BatchJob&) { ++done; });
  eng.run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(q.queued(), 0u);
  EXPECT_EQ(q.running(), 0u);
}

TEST(BatchQueue, UtilizationAccounting) {
  core::Engine eng;
  BatchQueue q(eng, 4, BatchPolicy::kFcfs);
  q.submit(job(1, 2, 10));  // 20 core-seconds on 40 available
  eng.run();
  EXPECT_NEAR(q.utilization(10.0), 0.5, 1e-9);
}
