// Engine semantics: ordering, cancellation, run_until, stop, quantum,
// determinism across queue structures and across runs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/entity.hpp"

namespace core = lsds::core;

TEST(Engine, StartsAtZero) {
  core::Engine eng;
  EXPECT_DOUBLE_EQ(eng.now(), 0.0);
  EXPECT_EQ(eng.pending(), 0u);
}

TEST(Engine, ExecutesInTimeOrder) {
  core::Engine eng;
  std::vector<int> order;
  eng.schedule_at(3.0, [&] { order.push_back(3); });
  eng.schedule_at(1.0, [&] { order.push_back(1); });
  eng.schedule_at(2.0, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
}

TEST(Engine, SimultaneousEventsFifo) {
  core::Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, NestedSchedulingFromCallbacks) {
  core::Engine eng;
  std::vector<double> times;
  eng.schedule_at(1.0, [&] {
    times.push_back(eng.now());
    eng.schedule_in(0.5, [&] { times.push_back(eng.now()); });
  });
  eng.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(Engine, PastSchedulingClampsToNow) {
  core::Engine eng;
  double seen = -1;
  eng.schedule_at(10.0, [&] {
    eng.schedule_at(5.0, [&] { seen = eng.now(); });  // in the past
  });
  eng.run();
  EXPECT_DOUBLE_EQ(seen, 10.0);
  EXPECT_EQ(eng.stats().past_clamped, 1u);
}

TEST(Engine, CancelPreventsExecution) {
  core::Engine eng;
  bool ran = false;
  auto h = eng.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(eng.cancel(h));
  eng.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(eng.stats().cancelled, 1u);
  EXPECT_EQ(eng.stats().executed, 0u);
}

TEST(Engine, CancelAfterFireReturnsFalseAndLeavesNoTombstone) {
  // Regression: cancelling an already-executed event returned true, inflated
  // stats().cancelled, and left a tombstone in the engine forever.
  core::Engine eng;
  bool ran = false;
  auto h = eng.schedule_at(1.0, [&] { ran = true; });
  eng.schedule_at(2.0, [] {});  // keep the clock moving past h
  eng.run();
  EXPECT_TRUE(ran);
  EXPECT_FALSE(eng.cancel(h));
  EXPECT_EQ(eng.stats().cancelled, 0u);
  EXPECT_EQ(eng.tombstone_count(), 0u);
}

TEST(Engine, CancelAtCurrentTimeStillWorks) {
  // Only *strictly past* handles are rejected: an event scheduled at the
  // current instant but not yet popped must remain cancellable.
  core::Engine eng;
  bool ran = false;
  eng.schedule_at(1.0, [&] {
    auto h = eng.schedule_at(1.0, [&] { ran = true; });
    EXPECT_TRUE(eng.cancel(h));
  });
  eng.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(eng.tombstone_count(), 0u);  // tombstone consumed at pop
}

TEST(Engine, DoubleCancelReturnsFalse) {
  core::Engine eng;
  auto h = eng.schedule_at(1.0, [] {});
  EXPECT_TRUE(eng.cancel(h));
  EXPECT_FALSE(eng.cancel(h));
}

TEST(Engine, CancelInvalidHandle) {
  core::Engine eng;
  core::EventHandle h;  // invalid
  EXPECT_FALSE(eng.cancel(h));
}

TEST(Engine, CancelFromCallback) {
  core::Engine eng;
  bool ran = false;
  auto h = eng.schedule_at(2.0, [&] { ran = true; });
  eng.schedule_at(1.0, [&] { eng.cancel(h); });
  eng.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, RunUntilAdvancesClockToHorizon) {
  core::Engine eng;
  int count = 0;
  for (int i = 1; i <= 10; ++i) eng.schedule_at(i, [&] { ++count; });
  const auto n = eng.run_until(5.0);
  EXPECT_EQ(n, 5u);
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);
  EXPECT_EQ(eng.pending(), 5u);
  eng.run();
  EXPECT_EQ(count, 10);
}

TEST(Engine, RunUntilIsInclusive) {
  core::Engine eng;
  int count = 0;
  eng.schedule_at(5.0, [&] { ++count; });
  eng.run_until(5.0);
  EXPECT_EQ(count, 1);
}

TEST(Engine, StopHaltsRun) {
  core::Engine eng;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    eng.schedule_at(i, [&] {
      if (++count == 3) eng.stop();
    });
  }
  eng.run();
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(eng.stopped());
  eng.clear_stop();
  eng.run();
  EXPECT_EQ(count, 10);
}

TEST(Engine, StepExecutesExactlyOne) {
  core::Engine eng;
  int count = 0;
  eng.schedule_at(1.0, [&] { ++count; });
  eng.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(eng.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(eng.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(eng.step());
}

TEST(Engine, TimeQuantumRoundsUp) {
  core::Engine::Config cfg;
  cfg.time_quantum = 0.5;
  core::Engine eng(cfg);
  std::vector<double> times;
  eng.schedule_at(0.1, [&] { times.push_back(eng.now()); });
  eng.schedule_at(0.6, [&] { times.push_back(eng.now()); });
  eng.schedule_at(1.0, [&] { times.push_back(eng.now()); });
  eng.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 0.5);
  EXPECT_DOUBLE_EQ(times[1], 1.0);
  EXPECT_DOUBLE_EQ(times[2], 1.0);
}

TEST(Engine, StatsAreConsistent) {
  core::Engine eng;
  for (int i = 0; i < 20; ++i) eng.schedule_at(i, [] {});
  auto h = eng.schedule_at(30.0, [] {});
  eng.cancel(h);
  eng.run();
  EXPECT_EQ(eng.stats().scheduled, 21u);
  EXPECT_EQ(eng.stats().executed, 20u);
  EXPECT_EQ(eng.stats().cancelled, 1u);
}

// --- determinism ----------------------------------------------------------

namespace {

// A stochastic cascade model: every event schedules 0-2 children with random
// delays. Returns the (time, seq) trace.
std::vector<std::pair<double, core::EventId>> run_cascade(core::QueueKind kind,
                                                          std::uint64_t seed) {
  core::Engine eng({.queue = kind, .seed = seed});
  std::vector<std::pair<double, core::EventId>> trace;
  eng.set_trace_hook([&](double t, core::EventId id) { trace.emplace_back(t, id); });
  auto& rng = eng.rng("cascade");
  int budget = 2000;
  std::function<void()> node = [&] {
    if (--budget <= 0) return;
    const int kids = static_cast<int>(rng.uniform_int(0, 2));
    for (int i = 0; i < kids + 1; ++i) {
      eng.schedule_in(rng.exponential(1.0), node);
    }
  };
  for (int i = 0; i < 10; ++i) eng.schedule_at(0.0, node);
  eng.run_until(1e9);
  return trace;
}

}  // namespace

TEST(EngineDeterminism, SameSeedSameTrace) {
  const auto a = run_cascade(core::QueueKind::kBinaryHeap, 1);
  const auto b = run_cascade(core::QueueKind::kBinaryHeap, 1);
  EXPECT_EQ(a, b);
}

TEST(EngineDeterminism, DifferentSeedDifferentTrace) {
  const auto a = run_cascade(core::QueueKind::kBinaryHeap, 1);
  const auto b = run_cascade(core::QueueKind::kBinaryHeap, 2);
  EXPECT_NE(a, b);
}

class EngineQueueDeterminism : public ::testing::TestWithParam<core::QueueKind> {};

TEST_P(EngineQueueDeterminism, TraceIndependentOfQueueStructure) {
  // The pending-set implementation is an engine detail: the executed event
  // trace must be identical whichever structure is plugged in.
  const auto ref = run_cascade(core::QueueKind::kBinaryHeap, 99);
  const auto got = run_cascade(GetParam(), 99);
  EXPECT_EQ(got, ref);
}

INSTANTIATE_TEST_SUITE_P(AllStructures, EngineQueueDeterminism,
                         ::testing::ValuesIn(core::kAllQueueKinds),
                         [](const ::testing::TestParamInfo<core::QueueKind>& info) {
                           std::string n = core::to_string(info.param);
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

// --- named RNG streams -----------------------------------------------------

TEST(EngineRng, StreamsAreIndependentByName) {
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 7});
  auto& a = eng.rng("arrivals");
  // Interleaving draws from another stream must not perturb "arrivals".
  core::Engine eng2({.queue = core::QueueKind::kBinaryHeap, .seed = 7});
  auto& a2 = eng2.rng("arrivals");
  auto& b2 = eng2.rng("sizes");
  for (int i = 0; i < 100; ++i) {
    const double x = a.uniform();
    b2.uniform();  // extra draws on an unrelated stream
    EXPECT_DOUBLE_EQ(x, a2.uniform());
  }
}

TEST(EngineRng, SameNameIsSameStream) {
  core::Engine eng;
  auto& a = eng.rng("s");
  auto& b = eng.rng("s");
  EXPECT_EQ(&a, &b);
}

// --- entities ----------------------------------------------------------

namespace {

class Echo final : public core::Entity {
 public:
  using core::Entity::Entity;
  std::vector<std::pair<double, int>> received;
  void on_message(core::Message& msg) override { received.emplace_back(engine_.now(), msg.kind); }
};

class PingPong final : public core::Entity {
 public:
  PingPong(core::Engine& eng, std::string name, int limit)
      : core::Entity(eng, std::move(name)), limit_(limit) {}
  core::EntityId peer = 0;
  int count = 0;
  void on_message(core::Message& msg) override {
    ++count;
    if (msg.u0 < static_cast<std::uint64_t>(limit_)) {
      core::Message next;
      next.kind = msg.kind;
      next.u0 = msg.u0 + 1;
      send(peer, next, 1.0);
    }
  }

 private:
  int limit_;
};

}  // namespace

TEST(Entity, SendDeliversWithDelay) {
  core::Engine eng;
  Echo a(eng, "a"), b(eng, "b");
  core::Message m;
  m.kind = 42;
  a.send(b, m, 2.5);
  eng.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_DOUBLE_EQ(b.received[0].first, 2.5);
  EXPECT_EQ(b.received[0].second, 42);
  EXPECT_TRUE(a.received.empty());
}

TEST(Entity, PingPongRoundTrips) {
  core::Engine eng;
  PingPong a(eng, "a", 10), b(eng, "b", 10);
  a.peer = b.id();
  b.peer = a.id();
  core::Message m;
  m.u0 = 0;
  b.send(a, m, 0);  // kick off: a receives u0=0
  eng.run();
  EXPECT_EQ(a.count + b.count, 11);  // u0 = 0..10 inclusive
  EXPECT_DOUBLE_EQ(eng.now(), 10.0);
}

TEST(Entity, SendToDestroyedEntityIsDropped) {
  core::Engine eng;
  Echo a(eng, "a");
  {
    Echo b(eng, "b");
    core::Message m;
    a.send(b, m, 1.0);
  }  // b destroyed before delivery
  eng.run();  // must not crash
  EXPECT_EQ(eng.stats().executed, 1u);
}

TEST(Entity, SelfMessageTimer) {
  core::Engine eng;
  Echo a(eng, "a");
  core::Message m;
  m.kind = 1;
  a.send_self(m, 3.0);
  eng.run();
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_DOUBLE_EQ(a.received[0].first, 3.0);
}

TEST(Entity, RegistryCountsLiveEntities) {
  core::Engine eng;
  auto a = std::make_unique<Echo>(eng, "a");
  auto b = std::make_unique<Echo>(eng, "b");
  EXPECT_EQ(eng.entity_count(), 2u);
  b.reset();
  EXPECT_EQ(eng.entity_count(), 1u);
}

// --- choice points (exhaustive exploration hook) ---------------------------

namespace {

// Schedule three events tied at t=1 plus a lone one at t=2; record the
// execution order of the tied batch by label.
std::string run_tied_batch(core::Engine& eng, std::string& order) {
  for (char c : {'a', 'b', 'c'}) {
    eng.schedule_at(1.0, [&order, c] { order.push_back(c); });
  }
  eng.schedule_at(2.0, [&order] { order.push_back('z'); });
  eng.run();
  return order;
}

}  // namespace

TEST(ChoiceHook, IndexZeroReproducesDefaultOrder) {
  core::Engine plain, hooked;
  std::string plain_order, hooked_order;
  std::vector<std::pair<double, core::EventId>> plain_trace, hooked_trace;
  plain.set_trace_hook([&](double t, core::EventId id) { plain_trace.emplace_back(t, id); });
  hooked.set_trace_hook([&](double t, core::EventId id) { hooked_trace.emplace_back(t, id); });
  hooked.set_choice_hook([](double, const std::vector<core::EventId>&) { return 0u; });
  run_tied_batch(plain, plain_order);
  run_tied_batch(hooked, hooked_order);
  EXPECT_EQ(plain_order, "abcz");
  EXPECT_EQ(hooked_order, "abcz");
  EXPECT_EQ(plain_trace, hooked_trace);  // byte-identical (time, seq) schedule
}

TEST(ChoiceHook, SurfacesTiesAscendingAndReorders) {
  core::Engine eng;
  std::vector<std::vector<core::EventId>> calls;
  eng.set_choice_hook([&](double, const std::vector<core::EventId>& ids) {
    calls.push_back(ids);
    return ids.size() - 1;  // always run the newest tied event first
  });
  std::string order;
  run_tied_batch(eng, order);
  EXPECT_EQ(order, "cbaz");
  // Called once per multi-way tie: {a,b,c} then {a,b}; never for singletons.
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0].size(), 3u);
  EXPECT_TRUE(std::is_sorted(calls[0].begin(), calls[0].end()));
  EXPECT_EQ(calls[1].size(), 2u);
}

TEST(ChoiceHook, RequeuedTiesKeepSeqAndStayCancellable) {
  core::Engine eng;
  std::string order;
  eng.set_choice_hook(
      [](double, const std::vector<core::EventId>& ids) { return ids.size() - 1; });
  core::EventHandle a, b;
  a = eng.schedule_at(1.0, [&] { order.push_back('a'); });
  b = eng.schedule_at(1.0, [&] {
    order.push_back('b');
    eng.cancel(a);  // cancel a not-chosen, requeued tie
  });
  eng.run();
  EXPECT_EQ(order, "b");
}

TEST(EventTags, InheritanceAndScopes) {
  core::Engine eng;
  eng.enable_event_tags();
  core::EventId child = 0;
  core::EventId scoped = 0;
  {
    core::TagScope scope(eng, 7);
    eng.schedule_at(1.0, [&] {
      // Events scheduled during execution inherit the executing tag.
      child = eng.schedule_at(2.0, [] {}).id;
      {
        core::TagScope inner(eng, 9);
        scoped = eng.schedule_at(2.0, [] {}).id;
      }
    }).id;
  }
  EXPECT_EQ(eng.current_tag(), 0u);  // scope restored
  eng.step();
  EXPECT_EQ(eng.event_tag(child), 7u);
  EXPECT_EQ(eng.event_tag(scoped), 9u);
  eng.run();
  EXPECT_EQ(eng.event_tag(child), 0u);  // tags retire with their event
}

TEST(EventTags, OffByDefault) {
  core::Engine eng;
  core::TagScope scope(eng, 5);
  const auto h = eng.schedule_at(1.0, [] {});
  EXPECT_EQ(eng.event_tag(h.id), 0u);  // not recorded while disabled
}
