// Middleware: bag schedulers, economy broker, replica catalog, replication
// strategies, GIS, monitoring.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/engine.hpp"
#include "hosts/site.hpp"
#include "middleware/broker.hpp"
#include "middleware/gis.hpp"
#include "middleware/monitor.hpp"
#include "middleware/replica_catalog.hpp"
#include "middleware/replication.hpp"
#include "middleware/scheduler.hpp"

namespace core = lsds::core;
namespace hosts = lsds::hosts;
namespace mw = lsds::middleware;

namespace {

std::vector<std::unique_ptr<hosts::CpuResource>> make_pool(core::Engine& eng,
                                                           std::vector<double> speeds,
                                                           unsigned cores = 1) {
  std::vector<std::unique_ptr<hosts::CpuResource>> out;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    out.push_back(std::make_unique<hosts::CpuResource>(
        eng, "r" + std::to_string(i), cores, speeds[i], hosts::SharingPolicy::kSpaceShared));
  }
  return out;
}

std::vector<hosts::CpuResource*> ptrs(
    const std::vector<std::unique_ptr<hosts::CpuResource>>& v) {
  std::vector<hosts::CpuResource*> out;
  for (const auto& p : v) out.push_back(p.get());
  return out;
}

hosts::Job job(hosts::JobId id, double ops) {
  hosts::Job j;
  j.id = id;
  j.ops = ops;
  return j;
}

}  // namespace

// --- BagScheduler --------------------------------------------------------

TEST(BagScheduler, AllJobsCompleteUnderEveryHeuristic) {
  for (auto h : mw::kAllHeuristics) {
    core::Engine eng;
    auto pool = make_pool(eng, {100, 200, 400});
    mw::BagScheduler sched(eng, ptrs(pool), h);
    for (hosts::JobId i = 1; i <= 20; ++i) sched.submit(job(i, 100.0 * static_cast<double>(i)));
    sched.run();
    eng.run();
    EXPECT_EQ(sched.completed(), 20u) << mw::to_string(h);
    EXPECT_GT(sched.makespan(), 0) << mw::to_string(h);
    std::uint64_t total = 0;
    for (auto c : sched.per_resource_counts()) total += c;
    EXPECT_EQ(total, 20u) << mw::to_string(h);
  }
}

TEST(BagScheduler, RoundRobinIsSpeedBlind) {
  core::Engine eng;
  auto pool = make_pool(eng, {100, 10000});
  mw::BagScheduler sched(eng, ptrs(pool), mw::Heuristic::kRoundRobin);
  for (hosts::JobId i = 1; i <= 10; ++i) sched.submit(job(i, 100));
  sched.run();
  eng.run();
  EXPECT_EQ(sched.per_resource_counts()[0], 5u);
  EXPECT_EQ(sched.per_resource_counts()[1], 5u);
}

TEST(BagScheduler, OnlinePullFavorsFastResource) {
  core::Engine eng;
  auto pool = make_pool(eng, {100, 1000});
  mw::BagScheduler sched(eng, ptrs(pool), mw::Heuristic::kFifo);
  for (hosts::JobId i = 1; i <= 22; ++i) sched.submit(job(i, 100));
  sched.run();
  eng.run();
  // The 10x faster resource should take ~10x the tasks.
  EXPECT_GT(sched.per_resource_counts()[1], sched.per_resource_counts()[0] * 5);
}

TEST(BagScheduler, MinMinBeatsRoundRobinOnHeterogeneous) {
  auto run_one = [](mw::Heuristic h) {
    core::Engine eng;
    auto pool = make_pool(eng, {100, 500, 2000});
    mw::BagScheduler sched(eng, ptrs(pool), h);
    auto& rng = eng.rng("wl");
    for (hosts::JobId i = 1; i <= 50; ++i) sched.submit(job(i, rng.exponential(1000)));
    sched.run();
    eng.run();
    return sched.makespan();
  };
  EXPECT_LT(run_one(mw::Heuristic::kMinMin), run_one(mw::Heuristic::kRoundRobin));
}

TEST(BagScheduler, StaticHeuristicsDifferInMapping) {
  auto mapping = [](mw::Heuristic h) {
    core::Engine eng;
    auto pool = make_pool(eng, {100, 300, 900});
    mw::BagScheduler sched(eng, ptrs(pool), h);
    auto& rng = eng.rng("wl");
    for (hosts::JobId i = 1; i <= 40; ++i) sched.submit(job(i, rng.exponential(500)));
    sched.run();
    eng.run();
    return sched.per_resource_counts();
  };
  // Different static heuristics should generally produce different mappings
  // on a heterogeneous pool (identical mappings would indicate the
  // selection rule is being ignored).
  const auto a = mapping(mw::Heuristic::kMinMin);
  const auto b = mapping(mw::Heuristic::kMaxMin);
  const auto c = mapping(mw::Heuristic::kSufferage);
  EXPECT_TRUE(a != b || b != c);
}

TEST(BagScheduler, SjfOrdersByLength) {
  core::Engine eng;
  auto pool = make_pool(eng, {100});
  mw::BagScheduler sched(eng, ptrs(pool), mw::Heuristic::kSjf);
  sched.submit(job(1, 3000));
  sched.submit(job(2, 1000));
  sched.submit(job(3, 2000));
  std::vector<hosts::JobId> order;
  sched.run([&](const hosts::Job& j) { order.push_back(j.id); });
  eng.run();
  EXPECT_EQ(order, (std::vector<hosts::JobId>{2, 3, 1}));
}

TEST(BagScheduler, ResponseTimesRecorded) {
  core::Engine eng;
  auto pool = make_pool(eng, {100});
  mw::BagScheduler sched(eng, ptrs(pool), mw::Heuristic::kFifo);
  sched.submit(job(1, 1000));
  sched.run();
  eng.run();
  EXPECT_EQ(sched.response_times().count(), 1u);
  EXPECT_DOUBLE_EQ(sched.response_times().mean(), 10.0);
}

// --- EconomyBroker --------------------------------------------------------

TEST(EconomyBroker, CostOptPrefersCheap) {
  core::Engine eng;
  auto pool = make_pool(eng, {100, 1000}, 4);
  std::vector<mw::EconomyResource> res{{pool[0].get(), 1.0}, {pool[1].get(), 100.0}};
  mw::EconomyBroker broker(eng, res, mw::DbcStrategy::kCostOptimization);
  for (hosts::JobId i = 1; i <= 4; ++i) broker.submit(job(i, 100));
  const auto plan = broker.run(1e9, 1e9);
  eng.run();
  EXPECT_EQ(plan.accepted, 4u);
  // All jobs fit on the cheap resource's 4 cores within the (infinite)
  // deadline: cost = 4 jobs * 1s * 1.0.
  EXPECT_NEAR(broker.actual_cost(), 4.0, 1e-9);
}

TEST(EconomyBroker, TimeOptPrefersFast) {
  core::Engine eng;
  auto pool = make_pool(eng, {100, 1000}, 4);
  std::vector<mw::EconomyResource> res{{pool[0].get(), 1.0}, {pool[1].get(), 100.0}};
  mw::EconomyBroker broker(eng, res, mw::DbcStrategy::kTimeOptimization);
  for (hosts::JobId i = 1; i <= 4; ++i) broker.submit(job(i, 100));
  broker.run(1e9, 1e9);
  eng.run();
  EXPECT_NEAR(broker.makespan(), 0.1, 1e-9);  // all on the fast resource
}

TEST(EconomyBroker, BudgetCapsSpending) {
  core::Engine eng;
  auto pool = make_pool(eng, {100}, 1);
  std::vector<mw::EconomyResource> res{{pool[0].get(), 1.0}};  // 1 unit per cpu-sec
  mw::EconomyBroker broker(eng, res, mw::DbcStrategy::kCostOptimization);
  for (hosts::JobId i = 1; i <= 10; ++i) broker.submit(job(i, 100));  // 1s = 1 unit each
  const auto plan = broker.run(3.0, 1e9);
  eng.run();
  EXPECT_EQ(plan.accepted, 3u);
  EXPECT_EQ(plan.rejected, 7u);
  EXPECT_LE(broker.actual_cost(), 3.0 + 1e-9);
  EXPECT_EQ(broker.rejected_jobs().size(), 7u);
}

TEST(EconomyBroker, DeadlineForcesFasterResource) {
  core::Engine eng;
  auto pool = make_pool(eng, {100, 1000}, 1);
  std::vector<mw::EconomyResource> res{{pool[0].get(), 1.0}, {pool[1].get(), 10.0}};
  mw::EconomyBroker broker(eng, res, mw::DbcStrategy::kCostOptimization);
  broker.submit(job(1, 500));  // 5s on cheap, 0.5s on fast
  const auto plan = broker.run(1e9, /*deadline=*/1.0);
  eng.run();
  EXPECT_EQ(plan.accepted, 1u);
  EXPECT_LE(broker.makespan(), 1.0);
  EXPECT_NEAR(broker.actual_cost(), 5.0, 1e-9);  // 0.5s * 10.0
}

TEST(EconomyBroker, ImpossibleConstraintsReject) {
  core::Engine eng;
  auto pool = make_pool(eng, {100}, 1);
  std::vector<mw::EconomyResource> res{{pool[0].get(), 1.0}};
  mw::EconomyBroker broker(eng, res, mw::DbcStrategy::kTimeOptimization);
  broker.submit(job(1, 1000));  // needs 10s
  const auto plan = broker.run(1e9, /*deadline=*/5.0);
  eng.run();
  EXPECT_EQ(plan.accepted, 0u);
  EXPECT_EQ(plan.rejected, 1u);
  EXPECT_EQ(broker.completed(), 0u);
}

// --- ReplicaCatalog --------------------------------------------------------

class CatalogFixture : public ::testing::Test {
 protected:
  CatalogFixture() : grid(eng) {
    for (int i = 0; i < 3; ++i) {
      hosts::SiteSpec s;
      s.name = "s" + std::to_string(i);
      sites.push_back(&grid.add_site(s));
    }
    // Line: s0 -(10ms)- s1 -(10ms)- s2
    grid.topology().add_link(sites[0]->node(), sites[1]->node(), 1e8, 0.01);
    grid.topology().add_link(sites[1]->node(), sites[2]->node(), 1e8, 0.01);
    grid.finalize();
    catalog = std::make_unique<mw::ReplicaCatalog>(grid.routing());
  }
  core::Engine eng;
  hosts::Grid grid;
  std::vector<hosts::Site*> sites;
  std::unique_ptr<mw::ReplicaCatalog> catalog;
};

TEST_F(CatalogFixture, AddRemoveLookup) {
  catalog->add_replica("f", 0, sites[0]->node());
  catalog->add_replica("f", 2, sites[2]->node());
  EXPECT_TRUE(catalog->exists("f"));
  EXPECT_EQ(catalog->replica_count("f"), 2u);
  EXPECT_TRUE(catalog->has_replica_at("f", 0));
  EXPECT_FALSE(catalog->has_replica_at("f", 1));
  EXPECT_TRUE(catalog->remove_replica("f", 0));
  EXPECT_FALSE(catalog->remove_replica("f", 0));
  EXPECT_EQ(catalog->replica_count("f"), 1u);
  EXPECT_TRUE(catalog->remove_replica("f", 2));
  EXPECT_FALSE(catalog->exists("f"));
}

TEST_F(CatalogFixture, BestSourcePicksClosest) {
  catalog->add_replica("f", 0, sites[0]->node());
  catalog->add_replica("f", 2, sites[2]->node());
  // From s1, both are 10ms away: tie broken deterministically (lowest id
  // encountered first with strictly-less comparison -> site 0).
  EXPECT_EQ(*catalog->best_source("f", sites[1]->node()), 0u);
  // From s2, the local replica wins.
  EXPECT_EQ(*catalog->best_source("f", sites[2]->node()), 2u);
  // Unknown file.
  EXPECT_FALSE(catalog->best_source("ghost", sites[0]->node()).has_value());
}

// --- replication strategies -------------------------------------------------

class ReplicationFixture : public ::testing::Test {
 protected:
  ReplicationFixture() : disk(eng, "d", {1000, 1e6, 1e6, 0}) {}
  core::Engine eng;
  hosts::StorageDevice disk;
};

TEST_F(ReplicationFixture, NoneAlwaysDeclines) {
  mw::NoReplication strat;
  EXPECT_FALSE(strat.plan_replication(0, disk, "f", 10).has_value());
}

TEST_F(ReplicationFixture, LruNoEvictionWhenRoom) {
  mw::LruReplication strat;
  const auto plan = strat.plan_replication(0, disk, "f", 500);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->evictions.empty());
}

TEST_F(ReplicationFixture, LruEvictsOldestFirst) {
  mw::LruReplication strat;
  eng.schedule_at(1.0, [&] { disk.store("old", 400); });
  eng.schedule_at(2.0, [&] { disk.store("new", 400); });
  eng.schedule_at(3.0, [&] {
    const auto plan = strat.plan_replication(0, disk, "f", 500);
    ASSERT_TRUE(plan.has_value());
    ASSERT_EQ(plan->evictions.size(), 1u);
    EXPECT_EQ(plan->evictions[0], "old");
  });
  eng.run();
}

TEST_F(ReplicationFixture, LfuEvictsColdestFirst) {
  mw::LfuReplication strat;
  disk.store("hot", 400);
  disk.store("cold", 400);
  disk.read("hot", nullptr);
  disk.read("hot", nullptr);
  const auto plan = strat.plan_replication(0, disk, "f", 500);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->evictions.size(), 1u);
  EXPECT_EQ(plan->evictions[0], "cold");
}

TEST_F(ReplicationFixture, PinnedBlocksEviction) {
  mw::LruReplication strat;
  disk.store("pinned", 900, /*pinned=*/true);
  EXPECT_FALSE(strat.plan_replication(0, disk, "f", 500).has_value());
}

TEST_F(ReplicationFixture, TooBigForDeviceDeclined) {
  mw::LruReplication strat;
  EXPECT_FALSE(strat.plan_replication(0, disk, "f", 2000).has_value());
}

TEST_F(ReplicationFixture, AlreadyLocalDeclined) {
  mw::LruReplication strat;
  disk.store("f", 10);
  EXPECT_FALSE(strat.plan_replication(0, disk, "f", 10).has_value());
}

TEST_F(ReplicationFixture, EconomicDeclinesLowValueIncoming) {
  mw::EconomicReplication strat;
  disk.store("valuable", 900);
  // "valuable" accessed often; incoming file never accessed.
  for (int i = 0; i < 5; ++i) strat.on_access(0, "valuable");
  EXPECT_FALSE(strat.plan_replication(0, disk, "new", 500).has_value());
  // Incoming becomes more popular than the stored file: now accepted.
  for (int i = 0; i < 6; ++i) strat.on_access(0, "new");
  const auto plan = strat.plan_replication(0, disk, "new", 500);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->evictions.size(), 1u);
  EXPECT_EQ(plan->evictions[0], "valuable");
}

TEST_F(ReplicationFixture, EconomicAcceptsWhenFreeSpace) {
  mw::EconomicReplication strat;
  const auto plan = strat.plan_replication(0, disk, "new", 500);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->evictions.empty());
}

TEST_F(ReplicationFixture, EconomicWindowSlides) {
  mw::EconomicReplication strat(/*window=*/3);
  strat.on_access(0, "a");
  strat.on_access(0, "a");
  strat.on_access(0, "a");
  EXPECT_EQ(strat.value_of(0, "a"), 3u);
  strat.on_access(0, "b");
  strat.on_access(0, "b");
  strat.on_access(0, "b");
  EXPECT_EQ(strat.value_of(0, "a"), 0u);  // aged out
  EXPECT_EQ(strat.value_of(0, "b"), 3u);
}

TEST(ReplicationFactory, MakesAllPolicies) {
  for (auto p : mw::kAllReplicationPolicies) {
    auto s = mw::make_replication_strategy(p);
    ASSERT_NE(s, nullptr);
    EXPECT_STREQ(s->name(), mw::to_string(p));
  }
}

// --- GIS -----------------------------------------------------------------

TEST(Gis, QueriesAndRanking) {
  core::Engine eng;
  hosts::Grid grid(eng);
  hosts::SiteSpec a;
  a.name = "a";
  a.cores = 4;
  hosts::SiteSpec b;
  b.name = "b";
  b.cores = 2;
  auto& sa = grid.add_site(a);
  auto& sb = grid.add_site(b);

  mw::GridInformationService gis;
  gis.register_site(sa, 2.0, {"tier1"});
  gis.register_site(sb, 1.0, {"tier2"});
  EXPECT_EQ(gis.size(), 2u);
  EXPECT_EQ(gis.cheapest(), &sb);
  EXPECT_EQ(gis.by_tag("tier1").size(), 1u);
  EXPECT_EQ(gis.by_tag("tier3").size(), 0u);

  // Load up site a: least-loaded flips to b.
  sa.cpu().submit(1, 1e6, nullptr);
  sa.cpu().submit(2, 1e6, nullptr);
  EXPECT_EQ(gis.least_loaded(), &sb);

  EXPECT_TRUE(gis.find(sa.id()).has_value());
  EXPECT_TRUE(gis.unregister_site(sa.id()));
  EXPECT_FALSE(gis.unregister_site(sa.id()));
  EXPECT_EQ(gis.size(), 1u);
}

// --- monitoring --------------------------------------------------------

TEST(Monitoring, SamplesPeriodically) {
  core::Engine eng;
  hosts::Grid grid(eng);
  hosts::SiteSpec s;
  s.name = "site";
  auto& site = grid.add_site(s);
  mw::MonitoringService mon(eng, 1.0);
  mon.watch(site);
  mon.start(5.0);
  site.cpu().submit(1, 2500, nullptr);  // busy until t=2.5
  eng.run();
  ASSERT_EQ(mon.samples().size(), 5u);
  EXPECT_EQ(*mon.samples()[0].attr("site"), "site");
  EXPECT_DOUBLE_EQ(mon.samples()[0].num("running", -1), 1.0);
  EXPECT_DOUBLE_EQ(mon.samples()[3].num("running", -1), 0.0);
}

TEST(Monitoring, TraceRoundTrip) {
  core::Engine eng;
  hosts::Grid grid(eng);
  hosts::SiteSpec s;
  s.name = "site";
  auto& site = grid.add_site(s);
  mw::MonitoringService mon(eng, 2.0);
  mon.watch(site);
  mon.start(4.0);
  eng.run();
  const auto text = mon.to_trace_text();
  const auto parsed = core::TraceReader::parse_text(text);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].kind, "monitor");
  EXPECT_DOUBLE_EQ(parsed[1].time, 4.0);
}
