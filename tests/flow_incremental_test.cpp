// Differential suite for the incremental (component-partitioned) max-min
// solver: Config::incremental = true must produce BYTE-identical behavior to
// the full reference solver — same completion/abort callbacks at bitwise-
// identical times, bitwise-identical rates at checkpoints, bitwise-identical
// delivered-byte totals — on fuzzed random topologies under flow churn and
// link failures, across all five event-queue kinds. Plus the component-
// isolation property (perturbing component A never changes component B) and
// the equal-fair-share tie-break regression.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <tuple>
#include <vector>

#include "core/engine.hpp"
#include "core/rng.hpp"
#include "net/flow.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "net/zone.hpp"

namespace core = lsds::core;
namespace net = lsds::net;

namespace {

std::uint64_t bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// One model-level trace entry: what happened ('C'ompleted, 'E'rrored,
// 'R'ate checkpoint, 'B'ytes total), to which flow, with the double payload
// (timestamp or rate) captured bit-for-bit.
using Trace = std::vector<std::tuple<char, net::FlowId, std::uint64_t>>;

struct Op {
  enum Kind { kStart, kCancel, kLinkDown, kLinkUp, kCheckpoint } kind = kStart;
  double t = 0;
  net::NodeId src = 0;
  net::NodeId dst = 0;
  double bytes = 0;
  double weight = 1;
  std::size_t flow_idx = 0;  // kCancel: index into the started-flow list
  net::LinkId link = 0;
};

// Deterministic, churn-heavy op script over a random connected topology.
std::vector<Op> make_script(const net::Topology& topo, std::uint64_t seed, std::size_t n_ops) {
  core::RngStream rng(seed);
  std::vector<Op> ops;
  double t = 0;
  std::size_t started = 0;
  for (std::size_t i = 0; i < n_ops; ++i) {
    t += rng.exponential(0.3);
    Op op;
    op.t = t;
    const double r = rng.uniform();
    if (r < 0.55 || started == 0) {
      op.kind = Op::kStart;
      op.src = static_cast<net::NodeId>(rng.uniform_int(0, topo.node_count() - 1));
      do {
        op.dst = static_cast<net::NodeId>(rng.uniform_int(0, topo.node_count() - 1));
      } while (op.dst == op.src);
      op.bytes = rng.uniform(1e5, 5e7);
      op.weight = rng.uniform(0.5, 4.0);
      ++started;
    } else if (r < 0.75) {
      op.kind = Op::kCancel;
      op.flow_idx = static_cast<std::size_t>(rng.uniform_int(0, started - 1));
    } else if (r < 0.85) {
      op.kind = Op::kLinkDown;
      op.link = static_cast<net::LinkId>(rng.uniform_int(0, topo.link_count() - 1));
    } else if (r < 0.95) {
      op.kind = Op::kLinkUp;
      op.link = static_cast<net::LinkId>(rng.uniform_int(0, topo.link_count() - 1));
    } else {
      op.kind = Op::kCheckpoint;
    }
    ops.push_back(op);
  }
  return ops;
}

Trace run_script_on(net::RouteProvider& routing, const std::vector<Op>& ops, core::QueueKind kind,
                    bool incremental, core::FailureSemantics sem) {
  core::Engine eng(core::Engine::Config{kind, 7, 0, 0});
  net::FlowNetwork fnet(eng, routing, net::FlowNetwork::Config{incremental});
  fnet.set_failure_semantics(sem);

  Trace trace;
  std::vector<net::FlowId> flows;
  for (const Op& op : ops) {
    eng.schedule_at(op.t, [&eng, &fnet, &trace, &flows, op] {
      switch (op.kind) {
        case Op::kStart:
          flows.push_back(fnet.start_flow_weighted(
              op.src, op.dst, op.bytes, op.weight,
              [&trace, &eng](net::FlowId id) { trace.emplace_back('C', id, bits(eng.now())); },
              [&trace, &eng](net::FlowId id) { trace.emplace_back('E', id, bits(eng.now())); }));
          break;
        case Op::kCancel:
          if (op.flow_idx < flows.size()) fnet.cancel(flows[op.flow_idx]);
          break;
        case Op::kLinkDown:
          fnet.set_link_up(op.link, false);
          break;
        case Op::kLinkUp:
          fnet.set_link_up(op.link, true);
          break;
        case Op::kCheckpoint:
          for (net::FlowId id : flows) trace.emplace_back('R', id, bits(fnet.flow_rate(id)));
          break;
      }
    });
  }
  eng.run();
  trace.emplace_back('B', 0, bits(fnet.total_bytes_delivered()));
  return trace;
}

Trace run_script(const net::Topology& topo, const std::vector<Op>& ops, core::QueueKind kind,
                 bool incremental, core::FailureSemantics sem) {
  net::Routing routing(topo);
  return run_script_on(routing, ops, kind, incremental, sem);
}

}  // namespace

// The core differential property: for every fuzz seed, every queue kind and
// both failure semantics, the incremental solver's model trace is byte-
// identical to the full solver's.
TEST(FlowIncremental, DifferentialFuzzFullVsIncremental) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    core::RngStream topo_rng(seed * 1000 + 17);
    const auto topo = net::Topology::random_connected(24, 10, 1e8, 0.002, topo_rng);
    const auto ops = make_script(topo, seed, 60);
    const auto sem = seed % 2 == 0 ? core::FailureSemantics::kFailStop
                                   : core::FailureSemantics::kFailResume;
    for (core::QueueKind kind : core::kAllQueueKinds) {
      const Trace full = run_script(topo, ops, kind, false, sem);
      const Trace inc = run_script(topo, ops, kind, true, sem);
      ASSERT_EQ(full, inc) << "seed " << seed << " queue " << core::to_string(kind);
      ASSERT_FALSE(full.empty());
    }
  }
}

// The trace must also agree ACROSS queue kinds (the engine's total order is
// queue-independent, and the model on top of it must stay so).
TEST(FlowIncremental, TraceAgreesAcrossQueueKinds) {
  core::RngStream topo_rng(99);
  const auto topo = net::Topology::random_connected(20, 8, 1e8, 0.002, topo_rng);
  const auto ops = make_script(topo, 99, 50);
  const Trace reference =
      run_script(topo, ops, core::QueueKind::kSortedList, true, core::FailureSemantics::kFailResume);
  for (core::QueueKind kind : core::kAllQueueKinds) {
    const Trace t = run_script(topo, ops, kind, true, core::FailureSemantics::kFailResume);
    ASSERT_EQ(reference, t) << "queue " << core::to_string(kind);
  }
}

namespace {

// Two disjoint 4-leaf stars in one topology. Returns the hub of each star.
net::Topology two_islands(std::vector<net::NodeId>& leaves_a, std::vector<net::NodeId>& leaves_b) {
  net::Topology topo;
  const auto hub_a = topo.add_node("hubA", net::NodeKind::kRouter);
  for (int i = 0; i < 4; ++i) {
    const auto n = topo.add_node("a" + std::to_string(i));
    topo.add_link(n, hub_a, 1e8, 0.001);
    leaves_a.push_back(n);
  }
  const auto hub_b = topo.add_node("hubB", net::NodeKind::kRouter);
  for (int i = 0; i < 4; ++i) {
    const auto n = topo.add_node("b" + std::to_string(i));
    topo.add_link(n, hub_b, 1e8, 0.001);
    leaves_b.push_back(n);
  }
  return topo;
}

}  // namespace

// Perturbing flows in component A (starts and cancels) must never change the
// rate of any flow in disconnected component B — not even in the last bit.
TEST(FlowIncremental, ComponentIsolationProperty) {
  std::vector<net::NodeId> la, lb;
  const auto topo = two_islands(la, lb);
  core::Engine eng;
  net::Routing routing(topo);
  net::FlowNetwork fnet(eng, routing, net::FlowNetwork::Config{true});

  std::vector<net::FlowId> b_flows;
  std::vector<std::uint64_t> before, after;
  net::FlowId a0 = 0, a1 = 0;
  eng.schedule_at(0.0, [&] {
    // Component B: three long flows contending on b0's access link.
    b_flows.push_back(fnet.start_flow_weighted(lb[0], lb[1], 1e12, 1.0));
    b_flows.push_back(fnet.start_flow_weighted(lb[0], lb[2], 1e12, 2.0));
    b_flows.push_back(fnet.start_flow_weighted(lb[0], lb[3], 1e12, 1.0));
    // Component A: two flows.
    a0 = fnet.start_flow_weighted(la[0], la[1], 1e12, 1.0);
    a1 = fnet.start_flow_weighted(la[0], la[2], 1e12, 1.0);
  });
  eng.schedule_at(5.0, [&] {
    for (net::FlowId id : b_flows) before.push_back(bits(fnet.flow_rate(id)));
  });
  eng.schedule_at(6.0, [&] {
    // Perturb A only: churn its membership and weights.
    fnet.cancel(a1);
    a1 = fnet.start_flow_weighted(la[3], la[0], 1e12, 3.0);
    fnet.start_flow_weighted(la[1], la[2], 1e12, 0.7);
  });
  eng.schedule_at(7.0, [&] {
    for (net::FlowId id : b_flows) after.push_back(bits(fnet.flow_rate(id)));
  });
  eng.run_until(8.0);
  ASSERT_EQ(before.size(), 3u);
  EXPECT_EQ(before, after);
  EXPECT_GT(fnet.flow_rate(a0), 0.0);
}

// Work counters prove the incremental solver actually solves LESS: starting
// a flow in an island re-rates only that island's flows.
TEST(FlowIncremental, IncrementalSolvesOnlyDirtyComponent) {
  std::vector<net::NodeId> la, lb;
  const auto topo = two_islands(la, lb);

  auto rerated_after_two_starts = [&](bool incremental) {
    core::Engine eng;
    net::Routing routing(topo);
    net::FlowNetwork fnet(eng, routing, net::FlowNetwork::Config{incremental});
    eng.schedule_at(0.0, [&] { fnet.start_flow_weighted(la[0], la[1], 1e12, 1.0); });
    eng.schedule_at(1.0, [&] { fnet.start_flow_weighted(lb[0], lb[1], 1e12, 1.0); });
    eng.run_until(2.0);
    return fnet.flows_rerated();
  };

  // Full: {A} then {A, B} = 3 re-rates. Incremental: {A} then {B} = 2.
  EXPECT_EQ(rerated_after_two_starts(false), 3u);
  EXPECT_EQ(rerated_after_two_starts(true), 2u);
}

// Regression for the bottleneck tie-break (satellite of the determinism
// work): two links with exactly equal fair shares must be processed in
// ascending LinkId order by construction, yielding the closed-form rates —
// bitwise reproducibly.
TEST(FlowDeterminism, EqualFairShareLinksTieBreakByLinkId) {
  auto run_once = [] {
    net::Topology topo;
    const auto a = topo.add_node("a");
    const auto b = topo.add_node("b");
    const auto c = topo.add_node("c");
    topo.add_link(a, b, 1e8, 0.001);  // link 0
    topo.add_link(b, c, 1e8, 0.001);  // link 1: identical capacity
    core::Engine eng;
    net::Routing routing(topo);
    net::FlowNetwork fnet(eng, routing, net::FlowNetwork::Config{true});
    std::vector<net::FlowId> ids;
    eng.schedule_at(0.0, [&] {
      ids.push_back(fnet.start_flow(a, c, 1e12));  // crosses links 0 and 1
      ids.push_back(fnet.start_flow(a, b, 1e12));  // link 0 only
      ids.push_back(fnet.start_flow(b, c, 1e12));  // link 1 only
    });
    eng.run_until(1.0);
    std::vector<std::uint64_t> rates;
    for (net::FlowId id : ids) rates.push_back(bits(fnet.flow_rate(id)));
    return rates;
  };
  const auto r1 = run_once();
  const auto r2 = run_once();
  ASSERT_EQ(r1.size(), 3u);
  // Both links tie at 1e8 / 2 flows = 5e7; every flow lands on exactly that.
  EXPECT_EQ(r1[0], bits(5e7));
  EXPECT_EQ(r1[1], bits(5e7));
  EXPECT_EQ(r1[2], bits(5e7));
  EXPECT_EQ(r1, r2);
}

// A FlowNetwork over a zone provider must behave byte-identically to one
// over the materialized flat topology: the whole churn script — starts,
// cancels, link failures, rate checkpoints — replayed on both, traces
// compared bit for bit. Locks the flow layer's independence from where
// routes come from.
TEST(FlowZoneDifferential, ClusterZoneTraceMatchesFlat) {
  const net::ClusterZone zone(net::ClusterSpec{24, 1e8, 0.002, 1e9, 0.01});
  const net::Topology topo = zone.to_topology();
  for (std::uint64_t seed : {11u, 12u}) {
    const auto ops = make_script(topo, seed, 70);
    const auto sem = seed % 2 == 0 ? core::FailureSemantics::kFailStop
                                   : core::FailureSemantics::kFailResume;
    for (bool incremental : {false, true}) {
      net::Routing flat(topo);
      net::ZoneRouting zoned(zone);
      const Trace reference =
          run_script_on(flat, ops, core::QueueKind::kBinaryHeap, incremental, sem);
      const Trace zone_trace =
          run_script_on(zoned, ops, core::QueueKind::kBinaryHeap, incremental, sem);
      ASSERT_EQ(reference, zone_trace) << "seed " << seed << " incremental " << incremental;
      ASSERT_FALSE(reference.empty());
    }
  }
}

// The over-merged-component rebuild path: heavy churn on one island forces
// stale member entries past the rebuild threshold; behavior must stay
// identical to the full solver throughout.
TEST(FlowIncremental, RebuildUnderChurnStaysDifferentialClean) {
  std::vector<net::NodeId> la, lb;
  const auto topo = two_islands(la, lb);
  auto run_churn = [&](bool incremental) {
    core::Engine eng;
    net::Routing routing(topo);
    net::FlowNetwork fnet(eng, routing, net::FlowNetwork::Config{incremental});
    Trace trace;
    eng.schedule_at(0.0, [&] {
      for (int i = 0; i < 100; ++i) {
        fnet.start_flow_weighted(
            la[static_cast<std::size_t>(i) % 4], la[(static_cast<std::size_t>(i) + 1) % 4],
            1e6 + 1e4 * i, 1.0,
            [&trace, &eng](net::FlowId id) { trace.emplace_back('C', id, bits(eng.now())); });
      }
      fnet.start_flow_weighted(lb[0], lb[1], 5e7, 1.0, [&trace, &eng](net::FlowId id) {
        trace.emplace_back('C', id, bits(eng.now()));
      });
    });
    eng.run();
    trace.emplace_back('B', 0, bits(fnet.total_bytes_delivered()));
    return trace;
  };
  EXPECT_EQ(run_churn(false), run_churn(true));
}
