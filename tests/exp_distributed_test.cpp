// Distributed campaign execution: shard planning, the campaign_partial wire
// protocol, and the byte-identity + failure-recovery contracts of the
// process-level coordinator (exp/dist_campaign.hpp).
//
// This binary doubles as its own worker fleet: main() dispatches
// --campaign-worker to exp::run_campaign_worker before gtest initializes,
// and DistributedCampaign's default worker binary is /proc/self/exe — so
// every spawn test exercises the real fork/exec/waitpid supervision path
// without depending on scenario_runner being built first.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/dist_campaign.hpp"
#include "exp/dist_protocol.hpp"
#include "obs/json.hpp"
#include "util/flags.hpp"
#include "util/ini.hpp"

namespace exp = lsds::exp;
namespace obs = lsds::obs;
namespace util = lsds::util;
namespace fs = std::filesystem;

namespace {

// The CI smoke campaign: 2 points x 3 replications of the bricks facade,
// small enough that a full distributed run is a sub-second test.
const char* kCampaignIni =
    "[scenario]\n"
    "facade = bricks\n"
    "seed = 7\n"
    "queue = heap\n"
    "[bricks]\n"
    "clients = 4\n"
    "jobs_per_client = 10\n"
    "interarrival = 5s\n"
    "mean_ops = 1500\n"
    "[sweep]\n"
    "bricks.server_cores = 2,4\n"
    "[campaign]\n"
    "replications = 3\n";

util::IniConfig campaign_ini() { return util::IniConfig::parse(kCampaignIni); }

/// Canonical report of the in-process runner — the byte-identity reference.
std::string in_process_report() {
  exp::Campaign campaign(campaign_ini());
  return campaign.run().to_json_string();
}

/// A scratch directory unique to this test process, removed by the caller.
fs::path scratch_dir(const std::string& tag) {
  const fs::path dir =
      fs::temp_directory_path() / ("lsds_dist_test_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

}  // namespace

// --- shard planning ----------------------------------------------------------

TEST(PlanShards, CoversGridContiguouslyWithRaggedLast) {
  const auto plan = exp::plan_shards(10, 3);
  ASSERT_EQ(plan.size(), 4u);
  std::size_t next = 0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].id, i);
    EXPECT_EQ(plan[i].begin, next);
    EXPECT_LT(plan[i].begin, plan[i].end);
    next = plan[i].end;
  }
  EXPECT_EQ(next, 10u);
  EXPECT_EQ(plan.back().size(), 1u);  // 10 = 3+3+3+1
}

TEST(PlanShards, EmptyGridAndOversizeShards) {
  EXPECT_TRUE(exp::plan_shards(0, 4).empty());
  const auto plan = exp::plan_shards(3, 100);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].size(), 3u);
}

TEST(PlanShards, RejectsZeroShardSize) {
  EXPECT_THROW(exp::plan_shards(5, 0), std::invalid_argument);
}

TEST(PlanShards, IndependentOfProcessCountByConstruction) {
  // The plan is a pure function of (n_runs, shard_size) — the property
  // --resume relies on when the fleet changes between runs.
  const auto a = exp::plan_shards(7, 2);
  const auto b = exp::plan_shards(7, 2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

// --- the partial wire protocol -----------------------------------------------

TEST(PartialProtocol, RoundTripsOutcomesBitExactly) {
  exp::Shard shard{2, 4, 6};
  std::vector<exp::RepOutcome> out(2);
  out[0].metrics = {{"makespan", 104.512345678901}, {"util", 0.3333333333333333}};
  out[1].metrics = {{"makespan", 1e-308}, {"util", 7.0}};
  out[1].rc = -1;
  out[1].error = "facade exploded";

  const obs::Json doc = exp::partial_to_json(shard, "deadbeef", out);
  // Through the printer and the parser, as it travels between processes.
  const obs::Json reparsed = obs::Json::parse(doc.dump());
  const auto back = exp::parse_partial(reparsed, shard, "deadbeef");

  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].metrics, out[0].metrics);  // bit-exact doubles
  EXPECT_EQ(back[1].metrics, out[1].metrics);
  EXPECT_EQ(back[1].rc, -1);
  EXPECT_EQ(back[1].error, "facade exploded");
}

TEST(PartialProtocol, RejectsMismatches) {
  exp::Shard shard{0, 0, 1};
  const obs::Json doc = exp::partial_to_json(shard, "sig", std::vector<exp::RepOutcome>(1));

  EXPECT_THROW(exp::parse_partial(doc, shard, "othersig"), std::runtime_error);
  exp::Shard other{0, 0, 2};
  EXPECT_THROW(exp::parse_partial(doc, other, "sig"), std::runtime_error);
  obs::Json bad_schema = obs::Json::parse(doc.dump());
  bad_schema.set("schema", obs::Json("lsds.other/9"));
  EXPECT_THROW(exp::parse_partial(bad_schema, shard, "sig"), std::runtime_error);
}

TEST(GridSignature, FingerprintsTheGrid) {
  exp::Campaign a(campaign_ini());
  exp::Campaign b(campaign_ini());
  EXPECT_EQ(exp::grid_signature(a), exp::grid_signature(b));

  auto changed = campaign_ini();
  changed.set("scenario", "seed", "8");
  exp::Campaign c(changed);
  EXPECT_NE(exp::grid_signature(a), exp::grid_signature(c));

  auto more_reps = campaign_ini();
  more_reps.set("campaign", "replications", "4");
  exp::Campaign d(more_reps);
  EXPECT_NE(exp::grid_signature(a), exp::grid_signature(d));
}

TEST(GridSignature, CoversEveryScenarioKey) {
  // Any base-scenario key steers slot outcomes, not just the campaign
  // fields — an edited workload parameter must invalidate old partials.
  exp::Campaign a(campaign_ini());
  auto edited = campaign_ini();
  edited.set("bricks", "mean_ops", "2000");
  exp::Campaign b(edited);
  EXPECT_NE(exp::grid_signature(a), exp::grid_signature(b));

  auto new_section = campaign_ini();
  new_section.set("network", "latency", "5ms");
  exp::Campaign c(new_section);
  EXPECT_NE(exp::grid_signature(a), exp::grid_signature(c));
}

TEST(GridSignature, IgnoresCampaignExecutionKeys) {
  // How and where the grid is computed must not invalidate partials:
  // --resume is allowed a different fleet, timeout or partial directory.
  exp::Campaign a(campaign_ini());
  auto other_fleet = campaign_ini();
  other_fleet.set("campaign", "distribute", "8");
  other_fleet.set("campaign", "timeout", "30s");
  other_fleet.set("campaign", "retries", "5");
  other_fleet.set("campaign", "partial_dir", "elsewhere/");
  other_fleet.set("campaign", "keep_partials", "true");
  other_fleet.set("campaign", "workers", "7");
  other_fleet.set("campaign", "timing", "true");
  exp::Campaign b(other_fleet);
  EXPECT_EQ(exp::grid_signature(a), exp::grid_signature(b));
}

TEST(GridSignature, StableAcrossTheCoordinatorWorkerIniRoundTrip) {
  // The worker recomputes the signature from the scenario.ini the
  // coordinator saved; both sides must agree or no partial ever merges.
  exp::Campaign a(campaign_ini());
  exp::Campaign b(util::IniConfig::parse(campaign_ini().dump()));
  EXPECT_EQ(exp::grid_signature(a), exp::grid_signature(b));
}

// --- DistConfig parsing ------------------------------------------------------

TEST(DistConfig, ParsesCampaignSection) {
  const auto ini = util::IniConfig::parse(
      "[campaign]\n"
      "distribute = 4\n"
      "shard_size = 2\n"
      "timeout = 30s\n"
      "retries = 1\n"
      "keep_partials = true\n");
  const auto cfg = exp::DistConfig::parse(ini);
  EXPECT_EQ(cfg.processes, 4u);
  EXPECT_EQ(cfg.shard_size, 2u);
  EXPECT_DOUBLE_EQ(cfg.timeout_sec, 30.0);
  EXPECT_EQ(cfg.retries, 1u);
  EXPECT_TRUE(cfg.keep_partials);
}

TEST(DistConfig, RejectsBadValues) {
  EXPECT_THROW(exp::DistConfig::parse(util::IniConfig::parse("[campaign]\ndistribute = -1\n")),
               util::ConfigError);
  EXPECT_THROW(exp::DistConfig::parse(util::IniConfig::parse("[campaign]\nshard_size = 0\n")),
               util::ConfigError);
  EXPECT_THROW(exp::DistConfig::parse(util::IniConfig::parse("[campaign]\nretries = -2\n")),
               util::ConfigError);
  EXPECT_THROW(exp::DistConfig::parse(util::IniConfig::parse("[campaign]\ntimeout = 0s\n")),
               util::ConfigError);
  EXPECT_THROW(exp::DistConfig::parse(
                   util::IniConfig::parse("[campaign]\nhosts = /nonexistent/hosts.txt\n")),
               util::ConfigError);

  exp::DistConfig cfg;  // processes defaults to 0 = not a distributed run
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// --- byte-identity of the distributed merge ----------------------------------

TEST(DistributedCampaign, TwoAndFourProcessReportsAreByteIdentical) {
  const std::string reference = in_process_report();

  for (const unsigned processes : {2u, 4u}) {
    exp::DistConfig cfg;
    cfg.processes = processes;
    exp::DistributedCampaign dist(campaign_ini(), cfg);
    const exp::CampaignResult result = dist.run();
    EXPECT_EQ(result.to_json_string(), reference)
        << "report diverged at processes=" << processes;
    ASSERT_TRUE(result.distribution.has_value());
    EXPECT_EQ(result.distribution->processes, processes);
    EXPECT_EQ(result.distribution->shards, 6u);  // 2 points x 3 reps, shard_size 1
    EXPECT_TRUE(result.distribution->failures.empty());
  }
}

TEST(DistributedCampaign, ShardSizeDoesNotChangeTheReport) {
  const std::string reference = in_process_report();
  exp::DistConfig cfg;
  cfg.processes = 2;
  cfg.shard_size = 4;  // ragged plan: 4 + 2 slots
  exp::DistributedCampaign dist(campaign_ini(), cfg);
  const exp::CampaignResult result = dist.run();
  EXPECT_EQ(result.to_json_string(), reference);
  ASSERT_TRUE(result.distribution.has_value());
  EXPECT_EQ(result.distribution->shards, 2u);
}

// --- failure recovery --------------------------------------------------------

TEST(DistributedCampaign, KilledWorkerIsReassignedAndReportConverges) {
  const std::string reference = in_process_report();
  exp::DistConfig cfg;
  cfg.processes = 2;
  cfg.kill_shard = 1;  // SIGKILL shard 1's first attempt right after spawn
  exp::DistributedCampaign dist(campaign_ini(), cfg);
  const exp::CampaignResult result = dist.run();

  EXPECT_EQ(result.to_json_string(), reference);
  ASSERT_TRUE(result.distribution.has_value());
  EXPECT_GE(result.distribution->retries_used, 1u);
  ASSERT_FALSE(result.distribution->failures.empty());
  EXPECT_EQ(result.distribution->failures[0].shard, 1u);
  EXPECT_EQ(result.distribution->failures[0].reason, "signal");
}

TEST(DistributedCampaign, HungWorkerTimesOutAndReportConverges) {
  const std::string reference = in_process_report();
  exp::DistConfig cfg;
  cfg.processes = 2;
  cfg.timeout_sec = 1.0;  // short budget so the test stays fast
  cfg.hang_shard = 0;     // first attempt of shard 0 sleeps forever
  exp::DistributedCampaign dist(campaign_ini(), cfg);
  const exp::CampaignResult result = dist.run();

  EXPECT_EQ(result.to_json_string(), reference);
  ASSERT_TRUE(result.distribution.has_value());
  ASSERT_FALSE(result.distribution->failures.empty());
  EXPECT_EQ(result.distribution->failures[0].shard, 0u);
  EXPECT_EQ(result.distribution->failures[0].reason, "timeout");
}

TEST(DistributedCampaign, ExhaustedRetriesThrowWithShardDiagnostic) {
  exp::DistConfig cfg;
  cfg.processes = 1;
  cfg.retries = 1;
  cfg.worker_binary = "/bin/false";  // every attempt exits 1
  exp::DistributedCampaign dist(campaign_ini(), cfg);
  try {
    dist.run();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard 0"), std::string::npos) << what;
    EXPECT_NE(what.find("2 attempt"), std::string::npos) << what;
  }
}

// --- resume ------------------------------------------------------------------

TEST(DistributedCampaign, ResumeFromCompletePartialDirIsByteIdentical) {
  const std::string reference = in_process_report();
  const fs::path dir = scratch_dir("resume");

  exp::DistConfig first;
  first.processes = 2;
  first.partial_dir = dir.string();
  first.keep_partials = true;
  exp::DistributedCampaign run1(campaign_ini(), first);
  EXPECT_EQ(run1.run().to_json_string(), reference);

  exp::DistConfig second = first;
  second.resume = true;
  exp::DistributedCampaign run2(campaign_ini(), second);
  const exp::CampaignResult resumed = run2.run();
  EXPECT_EQ(resumed.to_json_string(), reference);
  ASSERT_TRUE(resumed.distribution.has_value());
  EXPECT_EQ(resumed.distribution->shards_resumed, resumed.distribution->shards);

  fs::remove_all(dir);
}

TEST(DistributedCampaign, ResumeAfterScenarioEditRecomputesEverything) {
  // Editing any scenario key between a run and its --resume changes the
  // grid signature, so the old partials are stale: the resumed run must
  // recompute every shard and match a clean run of the *edited* scenario.
  const fs::path dir = scratch_dir("edited");

  exp::DistConfig first;
  first.processes = 2;
  first.partial_dir = dir.string();
  first.keep_partials = true;
  exp::DistributedCampaign run1(campaign_ini(), first);
  run1.run();

  auto edited = campaign_ini();
  edited.set("bricks", "mean_ops", "900");  // a workload key, not a campaign one
  exp::Campaign reference_campaign(edited);
  const std::string reference = reference_campaign.run().to_json_string();

  exp::DistConfig second = first;
  second.resume = true;
  exp::DistributedCampaign run2(edited, second);
  const exp::CampaignResult resumed = run2.run();
  EXPECT_EQ(resumed.to_json_string(), reference);
  ASSERT_TRUE(resumed.distribution.has_value());
  EXPECT_EQ(resumed.distribution->shards_resumed, 0u);

  fs::remove_all(dir);
}

TEST(DistributedCampaign, ResumeRecomputesStaleAndMissingPartials) {
  const std::string reference = in_process_report();
  const fs::path dir = scratch_dir("stale");

  exp::DistConfig first;
  first.processes = 2;
  first.partial_dir = dir.string();
  first.keep_partials = true;
  exp::DistributedCampaign run1(campaign_ini(), first);
  run1.run();

  // Corrupt one partial and delete another: resume must trust neither.
  const auto plan = exp::plan_shards(run1.campaign().run_count(), 1);
  {
    std::ofstream f(dir / exp::partial_filename(plan[0]), std::ios::trunc);
    f << "{\"schema\": \"lsds.campaign_partial/1\", \"signature\": \"feedface\"}";
  }
  fs::remove(dir / exp::partial_filename(plan[1]));

  exp::DistConfig second = first;
  second.resume = true;
  exp::DistributedCampaign run2(campaign_ini(), second);
  const exp::CampaignResult resumed = run2.run();
  EXPECT_EQ(resumed.to_json_string(), reference);
  ASSERT_TRUE(resumed.distribution.has_value());
  EXPECT_EQ(resumed.distribution->shards_resumed, resumed.distribution->shards - 2);

  fs::remove_all(dir);
}

// --- replication failures stay deterministic ---------------------------------

TEST(DistributedCampaign, ReplicationFailureDiagnosticMatchesInProcess) {
  // A malformed unit value makes every replication fail inside the worker
  // (the facade parses its section per run); the distributed run must
  // surface the same first-slot-in-grid-order diagnostic the in-process
  // runner picks, not an arrival-order one.
  auto ini = campaign_ini();
  ini.set("bricks", "interarrival", "notaduration");

  std::string in_process_what;
  try {
    exp::Campaign campaign(ini);
    campaign.run();
    FAIL() << "expected the in-process campaign to throw";
  } catch (const std::runtime_error& e) {
    in_process_what = e.what();
  }
  EXPECT_NE(in_process_what.find("point 0 replication 0"), std::string::npos)
      << in_process_what;

  exp::DistConfig cfg;
  cfg.processes = 4;
  exp::DistributedCampaign dist(ini, cfg);
  try {
    dist.run();
    FAIL() << "expected the distributed campaign to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), in_process_what);
  }
}

// --- worker entry point ------------------------------------------------------

TEST(CampaignWorker, RejectsMissingShardFlags) {
  const char* argv[] = {"self", "--campaign-worker", "--scenario=/nonexistent.ini"};
  util::Flags flags(3, argv);
  EXPECT_EQ(exp::run_campaign_worker(flags), 3);
}

// Custom main (this target links GTest::gtest, not gtest_main): a child
// spawned by DistributedCampaign re-enters this binary with
// --campaign-worker and must become a worker, not a second test run.
int main(int argc, char** argv) {
  {
    util::Flags flags(argc, argv);
    if (flags.has("campaign-worker")) return exp::run_campaign_worker(flags);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
