// Differential suite for hierarchical routing zones (net/zone.hpp): every
// zone kind, materialized to the equivalent flat Topology, must produce
// BYTE-identical answers to net::Routing's Dijkstra — same Route.links,
// bitwise-identical total_latency and bottleneck_bandwidth — for all
// addressable (src, dst) pairs. Plus fuzzed random-pair checks at 10k
// hosts, route-symmetry and ZoneTree-composition invariants, the D-mod-k
// policy's weaker differential (same metrics, valid alternative path), the
// zone-structure partitioner, and end-to-end plumbing through FlowNetwork /
// TransferService / ParallelGrid.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "core/rng.hpp"
#include "hosts/parallel_grid.hpp"
#include "net/flow.hpp"
#include "net/partition.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "net/transfer.hpp"
#include "net/zone.hpp"
#include "obs/report.hpp"
#include "sim/facade_registry.hpp"
#include "util/ini.hpp"

namespace core = lsds::core;
namespace net = lsds::net;
namespace hosts = lsds::hosts;
namespace sim = lsds::sim;
namespace obs = lsds::obs;
namespace util = lsds::util;

namespace {

std::uint64_t bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

std::vector<net::NodeId> endpoints_of(const net::Zone& zone) {
  std::vector<net::NodeId> eps;
  for (std::size_t i = 0; i < zone.host_count(); ++i) eps.push_back(zone.host(i));
  eps.push_back(zone.gateway());
  return eps;
}

// The differential contract: zone answers == flat Dijkstra answers, byte
// for byte, over every addressable (src, dst) pair.
void expect_zone_matches_flat(const net::Zone& zone, const char* label) {
  const net::Topology topo = zone.to_topology();
  ASSERT_EQ(topo.node_count(), zone.node_count()) << label;
  ASSERT_EQ(topo.link_count(), zone.link_count()) << label;
  ASSERT_TRUE(topo.connected()) << label;
  net::Routing flat(topo);
  net::ZoneRouting zr(zone);
  const auto eps = endpoints_of(zone);
  for (net::NodeId src : eps) {
    for (net::NodeId dst : eps) {
      const net::Route zroute = zr.route(src, dst);  // copy: scratch-backed
      const net::Route& froute = flat.route(src, dst);
      ASSERT_TRUE(froute.valid) << label;
      ASSERT_EQ(zroute.links, froute.links) << label << " " << src << "->" << dst;
      ASSERT_EQ(bits(zroute.total_latency), bits(froute.total_latency))
          << label << " " << src << "->" << dst;
      ASSERT_EQ(bits(zr.bottleneck_bandwidth(src, dst)), bits(flat.bottleneck_bandwidth(src, dst)))
          << label << " " << src << "->" << dst;
    }
  }
}

net::FatTreeSpec xgft(std::vector<std::uint32_t> m, std::vector<std::uint32_t> w,
                      double bw = 1e9, double lat = 1e-4) {
  net::FatTreeSpec s;
  s.children = std::move(m);
  s.parents = std::move(w);
  s.bandwidth.assign(s.children.size(), bw);
  s.latency.assign(s.children.size(), lat);
  // Distinct per-level values so a level mix-up cannot cancel out.
  for (std::size_t l = 0; l < s.children.size(); ++l) {
    s.bandwidth[l] = bw / static_cast<double>(l + 1);
    s.latency[l] = lat * static_cast<double>(l + 1);
  }
  return s;
}

std::unique_ptr<net::ZoneTree> make_mixed_tree() {
  auto tree = std::make_unique<net::ZoneTree>();
  tree->add_child(std::make_unique<net::StarZone>(net::StarSpec{5, 1e9, 2e-4}), 10e9, 3e-3);
  tree->add_child(
      std::make_unique<net::ClusterZone>(net::ClusterSpec{7, 1e9, 1e-4, 20e9, 1e-3}), 10e9, 5e-3);
  tree->add_child(std::make_unique<net::FatTreeZone>(xgft({2, 3}, {2, 2})), 40e9, 7e-3);
  return tree;
}

}  // namespace

// --- byte-identical differential, all zone kinds ---------------------------

TEST(ZoneVsFlat, StarAllPairs) {
  expect_zone_matches_flat(net::StarZone(net::StarSpec{16, 1e9, 5e-4}), "star16");
  // Zero-latency star: tree paths stay unique, so the contract must hold
  // even without link costs to break ties.
  expect_zone_matches_flat(net::StarZone(net::StarSpec{9, 2e9, 0.0}), "star9-zero-lat");
}

TEST(ZoneVsFlat, ClusterAllPairs) {
  expect_zone_matches_flat(net::ClusterZone(net::ClusterSpec{32, 1e9, 1e-4, 10e9, 2e-3}),
                           "cluster32");
}

// Cluster and star are trees: EVERY node pair (switches included) must
// match, not just hosts and gateway.
TEST(ZoneVsFlat, TreeShapedZonesMatchOnAllNodePairs) {
  const net::ClusterZone zone(net::ClusterSpec{6, 1e9, 1e-4, 10e9, 2e-3});
  const net::Topology topo = zone.to_topology();
  net::Routing flat(topo);
  net::ZoneRouting zr(zone);
  for (net::NodeId src = 0; src < zone.node_count(); ++src) {
    for (net::NodeId dst = 0; dst < zone.node_count(); ++dst) {
      const net::Route zroute = zr.route(src, dst);
      ASSERT_EQ(zroute.links, flat.route(src, dst).links) << src << "->" << dst;
      ASSERT_EQ(bits(zroute.total_latency), bits(flat.route(src, dst).total_latency));
    }
  }
}

TEST(ZoneVsFlat, FatTreeTwoLevelAllPairs) {
  // XGFT(2; 4,4; 1,2): 16 hosts, single-parent edge level, 2-way spines.
  expect_zone_matches_flat(net::FatTreeZone(xgft({4, 4}, {1, 2})), "xgft(2;4,4;1,2)");
  // Multi-parent at every level: equal-cost multipath from the very bottom.
  expect_zone_matches_flat(net::FatTreeZone(xgft({3, 3}, {2, 3})), "xgft(2;3,3;2,3)");
}

TEST(ZoneVsFlat, FatTreeThreeLevelAllPairs) {
  expect_zone_matches_flat(net::FatTreeZone(xgft({2, 2, 2}, {1, 2, 2})), "xgft(3;2,2,2;1,2,2)");
  expect_zone_matches_flat(net::FatTreeZone(xgft({2, 2, 2}, {2, 2, 2})), "xgft(3;2,2,2;2,2,2)");
}

TEST(ZoneVsFlat, FatTree256HostsAllPairs) {
  // The ISSUE's <=256-host ceiling for exhaustive all-pairs coverage.
  expect_zone_matches_flat(net::FatTreeZone(xgft({16, 16}, {1, 4})), "xgft(2;16,16;1,4)");
}

TEST(ZoneVsFlat, ZoneTreeAllPairs) {
  expect_zone_matches_flat(*make_mixed_tree(), "zonetree-mixed");
}

TEST(ZoneVsFlat, NestedZoneTreeAllPairs) {
  auto outer = std::make_unique<net::ZoneTree>();
  outer->add_child(make_mixed_tree(), 100e9, 0.02);
  outer->add_child(std::make_unique<net::ClusterZone>(net::ClusterSpec{4, 1e9, 1e-4, 10e9, 1e-3}),
                   100e9, 0.015);
  expect_zone_matches_flat(*outer, "zonetree-nested");
}

// --- fuzzed random pairs at 10k hosts --------------------------------------

TEST(ZoneVsFlatFuzz, FatTree10kHostsRandomPairs) {
  // XGFT(2; 100,100; 1,10): 10000 hosts, 100 edge switches, 10 spines.
  const net::FatTreeZone zone(xgft({100, 100}, {1, 10}));
  ASSERT_EQ(zone.host_count(), 10000u);
  const net::Topology topo = zone.to_topology();
  net::ZoneRouting zr(zone);
  core::RngStream rng(2026);
  for (int s = 0; s < 40; ++s) {
    const auto src = static_cast<net::NodeId>(rng.uniform_int(0, zone.host_count() - 1));
    // Fresh Routing per source: on-demand flat Dijkstra without holding a
    // 10k x 10k cache.
    net::Routing flat(topo);
    for (int d = 0; d < 8; ++d) {
      const auto dst = static_cast<net::NodeId>(rng.uniform_int(0, zone.host_count() - 1));
      const net::Route zroute = zr.route(src, dst);
      const net::Route& froute = flat.route(src, dst);
      ASSERT_EQ(zroute.links, froute.links) << src << "->" << dst;
      ASSERT_EQ(bits(zroute.total_latency), bits(froute.total_latency)) << src << "->" << dst;
      ASSERT_EQ(bits(zr.bottleneck_bandwidth(src, dst)), bits(flat.bottleneck_bandwidth(src, dst)));
    }
  }
}

// --- properties -------------------------------------------------------------

// Links are undirected and the canonical policy is destination-independent,
// so route(b, a) must be route(a, b) reversed.
TEST(ZoneProperties, CanonicalRoutesAreSymmetric) {
  const auto tree = make_mixed_tree();
  net::ZoneRouting zr(*tree);
  const auto eps = endpoints_of(*tree);
  for (net::NodeId a : eps) {
    for (net::NodeId b : eps) {
      net::Route fwd = zr.route(a, b);
      const net::Route& rev = zr.route(b, a);
      std::reverse(fwd.links.begin(), fwd.links.end());
      ASSERT_EQ(fwd.links, rev.links) << a << "<->" << b;
    }
  }
}

// Cross-child routes must be exactly src-side segment + both backbone links
// + dst-side segment — the composition law the recursive router is built on.
TEST(ZoneProperties, ZoneTreeCompositionLaw) {
  const auto tree = make_mixed_tree();
  net::ZoneRouting zr(*tree);
  const net::NodeId src = tree->child_offset(0) + tree->child(0).host(2);
  const net::NodeId dst = tree->child_offset(2) + tree->child(2).host(4);

  std::vector<net::LinkId> expected;
  tree->child(0).append_route(tree->child(0).host(2), tree->child(0).gateway(), expected);
  // Child 0's links sit first in the composed space (offset 0).
  const std::size_t child_links =
      tree->child(0).link_count() + tree->child(1).link_count() + tree->child(2).link_count();
  expected.push_back(static_cast<net::LinkId>(child_links + 0));  // backbone of child 0
  expected.push_back(static_cast<net::LinkId>(child_links + 2));  // backbone of child 2
  std::vector<net::LinkId> down;
  tree->child(2).append_route(tree->child(2).gateway(), tree->child(2).host(4), down);
  const std::size_t off2 = tree->child(0).link_count() + tree->child(1).link_count();
  for (net::LinkId l : down) expected.push_back(static_cast<net::LinkId>(l + off2));

  EXPECT_EQ(zr.route(src, dst).links, expected);
}

// D-mod-k spreads across equal-cost parents: the route may differ from the
// canonical one, but it must be a valid src->dst walk in the flat graph
// with bitwise-identical latency and bottleneck (all parents are equal
// cost by construction).
TEST(ZoneProperties, DmodKPolicyKeepsMetricsSpreadsLinks) {
  auto spec = xgft({4, 4}, {2, 4});
  spec.up = net::FatTreeSpec::UpPolicy::kDmodK;
  const net::FatTreeZone zone(spec);
  const net::Topology topo = zone.to_topology();
  net::Routing flat(topo);
  net::ZoneRouting zr(zone);

  bool any_link_diff = false;
  for (net::NodeId src = 0; src < zone.host_count(); ++src) {
    for (net::NodeId dst = 0; dst < zone.host_count(); ++dst) {
      if (src == dst) continue;
      const net::Route zroute = zr.route(src, dst);
      const net::Route& froute = flat.route(src, dst);
      ASSERT_EQ(bits(zroute.total_latency), bits(froute.total_latency)) << src << "->" << dst;
      ASSERT_EQ(bits(zr.bottleneck_bandwidth(src, dst)), bits(flat.bottleneck_bandwidth(src, dst)));
      ASSERT_EQ(zroute.links.size(), froute.links.size());
      if (zroute.links != froute.links) any_link_diff = true;
      // Validity: consecutive links must chain src -> dst through shared
      // endpoints in the flat graph.
      net::NodeId cur = src;
      for (net::LinkId l : zroute.links) {
        const auto& li = topo.link(l);
        ASSERT_TRUE(li.a == cur || li.b == cur) << "broken walk at link " << l;
        cur = topo.other_end(l, cur);
      }
      ASSERT_EQ(cur, dst);
    }
  }
  EXPECT_TRUE(any_link_diff) << "kDmodK never diverged from kLowestIndex — no spreading";
}

TEST(ZoneSpecs, ValidationRejectsDegenerateShapes) {
  EXPECT_THROW(net::StarZone(net::StarSpec{0, 1e9, 1e-4}), std::invalid_argument);
  EXPECT_THROW(net::ClusterZone(net::ClusterSpec{4, 0.0, 1e-4, 1e9, 1e-3}),
               std::invalid_argument);
  net::FatTreeSpec bad = xgft({2, 2}, {1, 2});
  bad.parents.pop_back();
  EXPECT_THROW(net::FatTreeZone{bad}, std::invalid_argument);
  net::FatTreeSpec zero_lat = xgft({2, 2}, {1, 2});
  zero_lat.latency[0] = 0.0;  // ties equal-cost paths: rejected by contract
  EXPECT_THROW(net::FatTreeZone{zero_lat}, std::invalid_argument);
  net::ZoneTree tree;
  EXPECT_THROW(tree.add_child(std::make_unique<net::StarZone>(net::StarSpec{2, 1e9, 1e-4}),
                              -1.0, 1e-3),
               std::invalid_argument);
}

// --- zone-structure partitioner ---------------------------------------------

TEST(ZonePartition, ZoneTreeLookaheadIsConservativeAndPositive) {
  const auto tree = make_mixed_tree();
  net::ZoneRouting zr(*tree);
  // One site per child host, spread over all three children.
  std::vector<net::NodeId> sites;
  for (std::size_t c = 0; c < tree->child_count(); ++c) {
    for (std::size_t i = 0; i < tree->child(c).host_count(); i += 2) {
      sites.push_back(tree->child_offset(c) + tree->child(c).host(i));
    }
  }
  const net::Partition p = net::partition_zone_tree(*tree, zr, sites, 3);
  ASSERT_EQ(p.parts, 3u);
  ASSERT_EQ(p.owner.size(), sites.size());
  // Children map to partitions whole.
  for (std::size_t i = 0; i < sites.size(); ++i) {
    EXPECT_EQ(p.owner[i], static_cast<unsigned>(tree->child_of(sites[i])));
  }
  // The closed-form lookahead must be conservative: no cross-partition pair
  // may be closer than it — and on this shape it must be strictly positive.
  EXPECT_GT(p.lookahead, 0.0);
  EXPECT_LE(p.lookahead, net::derive_lookahead(zr, sites, p.owner));
  EXPECT_GT(p.lookahead, 0.999 * net::derive_lookahead(zr, sites, p.owner));
}

// --- end-to-end plumbing ----------------------------------------------------

// TransferService (retry/recovery layer) over a zone-backed FlowNetwork:
// the full net stack runs on a provider with no Topology behind it.
TEST(ZonePlumbing, TransferServiceRunsOnZoneProvider) {
  const net::ClusterZone zone(net::ClusterSpec{8, 1e8, 1e-3, 1e9, 5e-3});
  core::Engine eng;
  net::ZoneRouting zr(zone);
  net::FlowNetwork fnet(eng, zr);
  net::TransferService xfer(eng, fnet, {});
  int done = 0;
  double done_at = -1;
  eng.schedule_at(0.0, [&] {
    xfer.submit(0, 5, 1e8, [&](const net::TransferRecord& rec) {
      EXPECT_FALSE(rec.failed);
      ++done;
      done_at = eng.now();
    });
  });
  eng.run();
  ASSERT_EQ(done, 1);
  // host0 -> switch -> host5: 2e-3 latency + 1e8 bytes at 1e8 B/s shared.
  EXPECT_GT(done_at, 1.0);
}

// A ParallelGrid on a ZoneTree platform: zone partitioning, closed-form
// lookahead, per-LP flow networks — and the parallel run produces the same
// channel traffic as the serial reference.
TEST(ZonePlumbing, ParallelGridOnZoneTreeMatchesSerial) {
  auto run = [](bool parallel) {
    auto tree = std::make_unique<net::ZoneTree>();
    tree->add_child(std::make_unique<net::ClusterZone>(net::ClusterSpec{4, 1e9, 1e-4, 10e9, 2e-3}),
                    10e9, 0.01);
    tree->add_child(std::make_unique<net::ClusterZone>(net::ClusterSpec{4, 1e9, 1e-4, 10e9, 2e-3}),
                    10e9, 0.012);
    hosts::ExecutionSpec spec;
    spec.parallel = parallel;
    spec.threads = 2;
    hosts::ParallelGrid grid(spec);
    grid.use_zone(*tree);
    std::vector<hosts::SiteId> ids;
    for (std::size_t c = 0; c < 2; ++c) {
      for (std::size_t i = 0; i < 4; ++i) {
        hosts::SiteSpec s;
        s.name = "s" + std::to_string(c) + "_" + std::to_string(i);
        ids.push_back(grid.add_site_at(s, tree->child_offset(c) + static_cast<net::NodeId>(i)));
      }
    }
    grid.finalize();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const hosts::SiteId from = ids[i];
      const hosts::SiteId to = ids[(i + 3) % ids.size()];
      grid.at(from, 0.0, [&grid, from, to] {
        grid.transfer(from, to, 1e6 * (static_cast<double>(from) + 1), [] {});
      });
    }
    const auto rep = grid.run(10.0);
    return std::make_pair(grid.channel_bytes(), rep.parallel);
  };
  const auto serial = run(false);
  const auto parallel = run(true);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_FALSE(serial.second);
  EXPECT_TRUE(parallel.second) << "zone lookahead should permit parallel execution";
}

// The `[platform]` facade: both arms of the zone-vs-flat A/B must produce
// identical results (same seed, same shape, different route provider), and
// the registry must expose + strictly validate the section.
TEST(PlatformFacade, ZoneAndFlatArmsAgreeBitForBit) {
  sim::register_builtin_facades();
  const auto* entry = sim::FacadeRegistry::global().find("platform");
  ASSERT_NE(entry, nullptr);
  auto run = [&](const char* zone_kind) {
    const auto ini = util::IniConfig::parse(
        std::string("[platform]\nzone = ") + zone_kind +
        "\nchildren = 4,4\nparents = 1,2\nflows = 32\nbytes = 1e7\n");
    core::Engine eng(core::Engine::Config{core::QueueKind::kBinaryHeap, 7, 0, 0});
    obs::RunReport report;
    EXPECT_EQ(entry->run(eng, ini, report), 0);
    return std::make_pair(bits(report.result()["makespan"].as_double()),
                          bits(report.result()["bytes_moved"].as_double()));
  };
  const auto zoned = run("fat-tree");
  const auto flat = run("flat");
  EXPECT_EQ(zoned.first, flat.first);
  EXPECT_EQ(zoned.second, flat.second);
  EXPECT_GT(flat.second, 0u);  // bytes actually moved

  // Strict key validation covers the new section.
  const auto typo = util::IniConfig::parse("[platform]\nzome = star\n");
  EXPECT_THROW(sim::validate_scenario_keys(typo, *entry), std::exception);
  const auto bad_zone = util::IniConfig::parse("[platform]\nzone = mesh\n");
  core::Engine eng;
  obs::RunReport report;
  EXPECT_THROW(entry->run(eng, bad_zone, report), util::ConfigError);
}

// Million-host construction cost smoke (the bench measures the real sweep):
// building the zone + provider is O(levels), with no per-pair or per-node
// allocation at all.
TEST(ZoneScale, MillionHostFatTreeConstructsInstantly) {
  const net::FatTreeZone zone(xgft({100, 100, 100}, {1, 10, 10}));
  EXPECT_EQ(zone.host_count(), 1000000u);
  net::ZoneRouting zr(zone);
  const net::Route r = zr.route(0, 999999);  // full-height crossing
  EXPECT_EQ(r.links.size(), 6u);
  EXPECT_TRUE(r.valid);
}
