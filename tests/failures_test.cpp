// Failure injection: CPU outages, link outages, the stochastic injector,
// and the engine's event-budget watchdog.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "hosts/cpu.hpp"
#include "middleware/failures.hpp"
#include "middleware/recovery.hpp"
#include "net/flow.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"

namespace core = lsds::core;
namespace hosts = lsds::hosts;
namespace net = lsds::net;
namespace mw = lsds::middleware;

// --- engine watchdog -------------------------------------------------------

TEST(EventBudget, ThrowsOnZeroDelayLoop) {
  core::Engine::Config cfg;
  cfg.max_events = 1000;
  core::Engine eng(cfg);
  std::function<void()> spin = [&] { eng.schedule_in(0, spin); };  // model bug
  eng.schedule_at(0, spin);
  EXPECT_THROW(eng.run(), core::EventBudgetExceeded);
  EXPECT_EQ(eng.stats().executed, 1000u);
}

TEST(EventBudget, HonestModelsUnaffected) {
  core::Engine::Config cfg;
  cfg.max_events = 1000;
  core::Engine eng(cfg);
  int n = 0;
  for (int i = 0; i < 500; ++i) eng.schedule_at(i, [&] { ++n; });
  EXPECT_NO_THROW(eng.run());
  EXPECT_EQ(n, 500);
}

TEST(EventBudget, AppliesToRunUntil) {
  core::Engine::Config cfg;
  cfg.max_events = 10;
  core::Engine eng(cfg);
  std::function<void()> spin = [&] { eng.schedule_in(0, spin); };
  eng.schedule_at(0, spin);
  EXPECT_THROW(eng.run_until(1.0), core::EventBudgetExceeded);
}

// --- CPU outages ------------------------------------------------------

TEST(CpuFailure, OutageStretchesJob) {
  core::Engine eng;
  hosts::CpuResource cpu(eng, "n", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
  double done_at = -1;
  cpu.submit(1, 1000.0, [&](hosts::JobId) { done_at = eng.now(); });  // 10s nominal
  // Down from t=3 to t=8: 5 seconds of paused progress.
  eng.schedule_at(3.0, [&] { cpu.set_online(false); });
  eng.schedule_at(8.0, [&] { cpu.set_online(true); });
  eng.run();
  EXPECT_DOUBLE_EQ(done_at, 15.0);
  EXPECT_EQ(cpu.outages(), 1u);
  EXPECT_TRUE(cpu.online());
}

TEST(CpuFailure, TimeSharedOutagePausesEveryone) {
  core::Engine eng;
  hosts::CpuResource cpu(eng, "n", 1, 100.0, hosts::SharingPolicy::kTimeShared);
  std::vector<double> done;
  cpu.submit(1, 250.0, [&](hosts::JobId) { done.push_back(eng.now()); });
  cpu.submit(2, 250.0, [&](hosts::JobId) { done.push_back(eng.now()); });
  // Nominal completion at t=5 (two jobs at 50 ops/s). Outage 1..2.
  eng.schedule_at(1.0, [&] { cpu.set_online(false); });
  eng.schedule_at(2.0, [&] { cpu.set_online(true); });
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 6.0);
  EXPECT_DOUBLE_EQ(done[1], 6.0);
}

TEST(CpuFailure, SetOnlineIsIdempotent) {
  core::Engine eng;
  hosts::CpuResource cpu(eng, "n", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
  cpu.set_online(false);
  cpu.set_online(false);
  EXPECT_EQ(cpu.outages(), 1u);
  cpu.set_online(true);
  cpu.set_online(true);
  EXPECT_EQ(cpu.outages(), 1u);
}

TEST(CpuFailure, SubmitWhileOfflineQueuesUntilRepair) {
  core::Engine eng;
  hosts::CpuResource cpu(eng, "n", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
  cpu.set_online(false);
  double done_at = -1;
  cpu.submit(1, 100.0, [&](hosts::JobId) { done_at = eng.now(); });
  eng.schedule_at(5.0, [&] { cpu.set_online(true); });
  eng.run();
  EXPECT_DOUBLE_EQ(done_at, 6.0);  // 5s outage + 1s service
}

// --- link outages ------------------------------------------------------

TEST(LinkFailure, FlowStallsAndResumes) {
  core::Engine eng;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_link(a, b, 1e6, 0);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  double done_at = -1;
  fn.start_flow(a, b, 2e6, [&](net::FlowId) { done_at = eng.now(); });  // 2s nominal
  eng.schedule_at(1.0, [&] { fn.set_link_up(0, false); });
  eng.schedule_at(4.0, [&] { fn.set_link_up(0, true); });
  eng.run();
  EXPECT_NEAR(done_at, 5.0, 1e-6);  // 2s transfer + 3s outage
  EXPECT_TRUE(fn.link_up(0));
}

TEST(LinkFailure, FlowStartedDuringOutageWaits) {
  core::Engine eng;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_link(a, b, 1e6, 0);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  fn.set_link_up(0, false);
  double done_at = -1;
  fn.start_flow(a, b, 1e6, [&](net::FlowId) { done_at = eng.now(); });
  eng.schedule_at(10.0, [&] { fn.set_link_up(0, true); });
  eng.run();
  EXPECT_NEAR(done_at, 11.0, 1e-6);
}

TEST(LinkFailure, ParallelPathUnaffected) {
  core::Engine eng;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const auto c = topo.add_node("c");
  topo.add_link(a, b, 1e6, 0);
  topo.add_link(a, c, 1e6, 0);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  double t_b = -1, t_c = -1;
  fn.start_flow(a, b, 1e6, [&](net::FlowId) { t_b = eng.now(); });
  fn.start_flow(a, c, 1e6, [&](net::FlowId) { t_c = eng.now(); });
  eng.schedule_at(0.5, [&] { fn.set_link_up(0, false); });
  eng.schedule_at(10.0, [&] { fn.set_link_up(0, true); });
  eng.run();
  EXPECT_NEAR(t_c, 1.0, 1e-6);   // untouched path finishes on time
  EXPECT_NEAR(t_b, 10.5, 1e-6);  // stalled path rides out the outage
}

// --- stochastic injector ----------------------------------------------------

TEST(FailureInjector, ChaosRunStillCompletesAllWork) {
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 99});
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_link(a, b, 1e6, 0.001);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  hosts::CpuResource cpu(eng, "srv", 2, 100.0, hosts::SharingPolicy::kSpaceShared);

  mw::FailureInjector chaos(eng);
  chaos.add_cpu(cpu);
  chaos.add_link(fn, 0);
  chaos.start(/*mtbf=*/20.0, /*mttr=*/5.0, /*t_end=*/500.0);

  // 30 jobs, each: transfer 0.5 MB then compute 200 ops.
  int completed = 0;
  for (int i = 1; i <= 30; ++i) {
    eng.schedule_at(i * 2.0, [&, i] {
      fn.start_flow(a, b, 0.5e6, [&, i](net::FlowId) {
        cpu.submit(static_cast<hosts::JobId>(i), 200.0,
                   [&](hosts::JobId) { ++completed; });
      });
    });
  }
  eng.run();
  EXPECT_EQ(completed, 30);        // outages delay, never lose, work
  EXPECT_GT(chaos.outages_started(), 0u);
  EXPECT_EQ(chaos.outages_started(), chaos.repairs_completed());
  EXPECT_GT(chaos.total_downtime(), 0.0);
}

TEST(FailureInjector, DeterministicForSeed) {
  auto run_once = [] {
    core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 7});
    hosts::CpuResource cpu(eng, "n", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
    mw::FailureInjector chaos(eng);
    chaos.add_cpu(cpu);
    chaos.start(10.0, 2.0, 200.0);
    double done_at = -1;
    cpu.submit(1, 5000.0, [&](hosts::JobId) { done_at = eng.now(); });
    eng.run();
    return std::pair{done_at, chaos.outages_started()};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GT(a.first, 50.0);  // nominal 50s plus some downtime
}

TEST(FailureInjector, DoubleStartThrows) {
  core::Engine eng;
  hosts::CpuResource cpu(eng, "n", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
  mw::FailureInjector chaos(eng);
  chaos.add_cpu(cpu);
  chaos.start(10.0, 2.0, 100.0);
  EXPECT_TRUE(chaos.started());
  // A second start would silently double every target's failure rate.
  EXPECT_THROW(chaos.start(10.0, 2.0, 100.0), std::logic_error);
  EXPECT_THROW(chaos.start_weibull(1.5, 10.0, 2.0, 100.0), std::logic_error);
}

TEST(FailureInjector, DowntimeTruncatedAtHorizon) {
  constexpr std::uint64_t kSeed = 11;
  constexpr double kMtbf = 10.0, kMttr = 5.0, kHorizon = 40.0;
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = kSeed});
  hosts::CpuResource cpu(eng, "n", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
  mw::FailureInjector chaos(eng);
  chaos.add_cpu(cpu);
  chaos.start(kMtbf, kMttr, kHorizon);
  eng.run();

  // One target means the injector's draws are strictly sequential, so an
  // identical stream replays them: lifetime, then repair, per cycle.
  core::RngStream replay(kSeed, "failures");
  double t = 0, expected = 0;
  while (true) {
    t += replay.exponential(kMtbf);
    if (t > kHorizon) break;
    const double repair = replay.exponential(kMttr);
    // An outage still open at the horizon contributes only up to it.
    expected += std::min(repair, kHorizon - t);
    t += repair;
  }
  EXPECT_NEAR(chaos.total_downtime(), expected, 1e-9);
  EXPECT_GT(chaos.total_downtime(), 0.0);
}

TEST(FailureInjector, CorrelatedSiteOutage) {
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 5});
  hosts::CpuResource c1(eng, "a", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
  hosts::CpuResource c2(eng, "b", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
  mw::FailureInjector chaos(eng);
  chaos.add_site({&c1, &c2});  // one power feed for the whole site
  chaos.start(10.0, 2.0, 100.0);
  eng.run();
  EXPECT_GT(chaos.outages_started(), 0u);
  // Both CPUs fail and repair together: identical outage counts & downtime.
  EXPECT_EQ(c1.outages(), c2.outages());
  EXPECT_DOUBLE_EQ(c1.downtime(), c2.downtime());
}

TEST(FailureInjector, WeibullLifetimesDeterministicForSeed) {
  auto run_once = [] {
    core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 21});
    hosts::CpuResource cpu(eng, "n", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
    mw::FailureInjector chaos(eng);
    chaos.add_cpu(cpu);
    chaos.start_weibull(/*shape=*/0.7, /*mtbf=*/10.0, /*mttr=*/2.0, /*t_end=*/300.0);
    eng.run();
    return std::pair{chaos.outages_started(), chaos.total_downtime()};
  };
  const auto a = run_once();
  EXPECT_GT(a.first, 0u);
  EXPECT_EQ(a, run_once());
}

// --- whole-run determinism under chaos ---------------------------------------

namespace {

/// Full dependability stack: injector-driven fail-stop outages over a farm
/// run by the fault-tolerant scheduler. Returns the engine's (time, seq)
/// execution trace.
std::vector<std::pair<double, std::uint64_t>> chaos_trace(std::uint64_t seed) {
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = seed});
  std::vector<std::pair<double, std::uint64_t>> trace;
  eng.set_trace_hook([&](double t, core::EventId id) { trace.emplace_back(t, id); });

  std::vector<std::unique_ptr<hosts::CpuResource>> owned;
  std::vector<hosts::CpuResource*> cpus;
  for (int i = 0; i < 4; ++i) {
    owned.push_back(std::make_unique<hosts::CpuResource>(eng, "h" + std::to_string(i), 1,
                                                         1000.0, hosts::SharingPolicy::kSpaceShared));
    cpus.push_back(owned.back().get());
  }
  mw::FailureInjector chaos(eng);
  for (auto* cpu : cpus) chaos.add_cpu(*cpu);
  chaos.start(3.0, 1.0, 1e5);

  mw::RecoveryConfig cfg;
  cfg.policy = mw::RecoveryPolicyKind::kResubmit;
  mw::FaultTolerantScheduler sched(eng, cpus, mw::Heuristic::kMinMin, cfg);
  auto& rng = eng.rng("bag");
  for (hosts::JobId j = 1; j <= 100; ++j) {
    hosts::Job job;
    job.id = j;
    job.ops = rng.exponential(2000.0);
    sched.submit(std::move(job));
  }
  std::size_t settled = 0;
  const auto on_settled = [&](const hosts::Job&) {
    if (++settled == 100) eng.stop();
  };
  sched.run(on_settled, on_settled);
  eng.run();
  EXPECT_EQ(sched.completed(), 100u);
  return trace;
}

}  // namespace

TEST(ChaosDeterminism, EqualSeedsGiveIdenticalTraces) {
  const auto a = chaos_trace(77);
  const auto b = chaos_trace(77);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // byte-identical (time, seq) schedule
}

TEST(ChaosDeterminism, DifferentSeedsDiverge) {
  EXPECT_NE(chaos_trace(77), chaos_trace(78));
}

TEST(FailureInjector, NoFailuresBeyondHorizon) {
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 3});
  hosts::CpuResource cpu(eng, "n", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
  mw::FailureInjector chaos(eng);
  chaos.add_cpu(cpu);
  chaos.start(1e-3, 1e-3, /*t_end=*/1.0);  // rapid cycling, but only until t=1
  eng.run();
  EXPECT_LE(eng.now(), 1.1);
  EXPECT_EQ(chaos.outages_started(), chaos.repairs_completed());
}

// --- deterministic outages --------------------------------------------------

TEST(DeterministicOutage, FiresAtExactTimeAndRepairs) {
  core::Engine eng;
  hosts::CpuResource cpu(eng, "n", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
  mw::FailureInjector chaos(eng);
  chaos.add_cpu(cpu);
  ASSERT_EQ(chaos.target_count(), 1u);
  double down_at = -1, up_at = -1;
  cpu.set_online_observer([&](bool up) { (up ? up_at : down_at) = eng.now(); });
  chaos.schedule_outage(0, 3.0, 2.0);
  eng.run();
  EXPECT_DOUBLE_EQ(down_at, 3.0);
  EXPECT_DOUBLE_EQ(up_at, 5.0);
  EXPECT_EQ(chaos.outages_started(), 1u);
  EXPECT_EQ(chaos.repairs_completed(), 1u);
  EXPECT_DOUBLE_EQ(chaos.total_downtime(), 2.0);
}

TEST(DeterministicOutage, NegativeRepairIsPermanent) {
  core::Engine eng;
  hosts::CpuResource cpu(eng, "n", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
  mw::FailureInjector chaos(eng);
  chaos.add_cpu(cpu);
  chaos.schedule_outage(0, 1.0, -1.0);
  eng.run();
  EXPECT_FALSE(cpu.online());
  EXPECT_EQ(chaos.repairs_completed(), 0u);
}

TEST(DeterministicOutage, UnknownTargetThrows) {
  core::Engine eng;
  mw::FailureInjector chaos(eng);
  EXPECT_THROW(chaos.schedule_outage(0, 1.0, 1.0), std::out_of_range);
  EXPECT_THROW(chaos.schedule_outage_choice(0, {1.0}, 1.0), std::out_of_range);
}

TEST(DeterministicOutage, ChoiceDefaultsToFirstCandidate) {
  core::Engine eng;
  hosts::CpuResource cpu(eng, "n", 1, 100.0, hosts::SharingPolicy::kSpaceShared);
  mw::FailureInjector chaos(eng);
  chaos.add_cpu(cpu);
  double down_at = -1;
  cpu.set_online_observer([&](bool up) {
    if (!up) down_at = eng.now();
  });
  // Without an explorer steering the tie, the first selector event wins.
  chaos.schedule_outage_choice(0, {2.0, 5.0, 9.0}, 0.5);
  eng.run();
  EXPECT_DOUBLE_EQ(down_at, 2.0);
  EXPECT_EQ(chaos.outages_started(), 1u);  // exactly one candidate fired
}

// A crash whose repair lands at the *same* timestamp: the recovery layer
// sees kill + online-observer callbacks back to back at one instant and
// must not dispatch the job twice.
TEST(DeterministicOutage, SimultaneousCrashAndRecoverNoDoubleStart) {
  for (mw::RecoveryPolicyKind policy :
       {mw::RecoveryPolicyKind::kRetry, mw::RecoveryPolicyKind::kResubmit,
        mw::RecoveryPolicyKind::kCheckpoint, mw::RecoveryPolicyKind::kReplicate}) {
    core::Engine eng;
    hosts::CpuResource a(eng, "a", 1, 1.0, hosts::SharingPolicy::kSpaceShared);
    hosts::CpuResource b(eng, "b", 1, 1.0, hosts::SharingPolicy::kSpaceShared);
    mw::RecoveryConfig rcfg;
    rcfg.policy = policy;
    rcfg.backoff_base = 1.0;
    mw::FaultTolerantScheduler sched(eng, {&a, &b}, mw::Heuristic::kFifo, rcfg);
    for (hosts::JobId id = 1; id <= 3; ++id) {
      hosts::Job j;
      j.id = id;
      j.ops = 4;
      sched.submit(std::move(j));
    }
    mw::FailureInjector chaos(eng);
    chaos.add_cpu(a);
    chaos.add_cpu(b);
    chaos.schedule_outage(0, 2.0, 0.0);  // crash and repair tied at t = 2
    sched.run();
    // The invariant must hold at every instant, not just at the end.
    const std::size_t allowed = policy == mw::RecoveryPolicyKind::kReplicate ? rcfg.replicas : 1;
    while (eng.step()) {
      for (std::size_t slot = 0; slot < sched.task_count(); ++slot) {
        const auto v = sched.task_view(slot);
        EXPECT_LE(v.live_copies, allowed) << "policy " << mw::to_string(policy) << " job "
                                          << v.job_id << " at t=" << eng.now();
      }
    }
    EXPECT_EQ(sched.completed(), 3u) << mw::to_string(policy);
    EXPECT_EQ(sched.lost(), 0u) << mw::to_string(policy);
  }
}
