// RNG stream tests: determinism, independence, and distribution sanity
// (moment checks at large sample sizes with loose tolerances).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.hpp"

namespace core = lsds::core;

namespace {

template <typename F>
std::pair<double, double> sample_mean_var(F&& draw, int n) {
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = draw();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  return {mean, sum2 / n - mean * mean};
}

}  // namespace

TEST(Rng, DeterministicForSeed) {
  core::RngStream a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, NamedStreamsDiffer) {
  core::RngStream a(1, "alpha"), b(1, "beta");
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRange) {
  core::RngStream r(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMoments) {
  core::RngStream r(6);
  auto [mean, var] = sample_mean_var([&] { return r.uniform(); }, 200000);
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIntInclusiveBounds) {
  core::RngStream r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(3, 8);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 8);
    saw_lo |= (v == 3);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  core::RngStream r(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, ExponentialMoments) {
  core::RngStream r(9);
  auto [mean, var] = sample_mean_var([&] { return r.exponential(4.0); }, 200000);
  EXPECT_NEAR(mean, 4.0, 0.1);
  EXPECT_NEAR(var, 16.0, 0.8);
}

TEST(Rng, NormalMoments) {
  core::RngStream r(10);
  auto [mean, var] = sample_mean_var([&] { return r.normal(10.0, 3.0); }, 200000);
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, LognormalMoments) {
  core::RngStream r(11);
  const double mu = 1.0, sigma = 0.5;
  auto [mean, var] = sample_mean_var([&] { return r.lognormal(mu, sigma); }, 400000);
  const double expect_mean = std::exp(mu + sigma * sigma / 2);
  EXPECT_NEAR(mean, expect_mean, expect_mean * 0.02);
  (void)var;
}

TEST(Rng, WeibullMean) {
  core::RngStream r(12);
  // shape k=2, scale 1: mean = Gamma(1.5) = sqrt(pi)/2.
  auto [mean, var] = sample_mean_var([&] { return r.weibull(2.0, 1.0); }, 200000);
  EXPECT_NEAR(mean, std::sqrt(std::acos(-1.0)) / 2.0, 0.01);
  (void)var;
}

TEST(Rng, ParetoSupportAndMean) {
  core::RngStream r(13);
  // x_min=1, alpha=3: mean = alpha/(alpha-1) = 1.5.
  double sum = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double x = r.pareto(1.0, 3.0);
    ASSERT_GE(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.5, 0.02);
}

TEST(Rng, PoissonSmallMean) {
  core::RngStream r(14);
  auto [mean, var] = sample_mean_var([&] { return static_cast<double>(r.poisson(3.5)); }, 200000);
  EXPECT_NEAR(mean, 3.5, 0.05);
  EXPECT_NEAR(var, 3.5, 0.15);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  core::RngStream r(15);
  auto [mean, var] = sample_mean_var([&] { return static_cast<double>(r.poisson(200.0)); }, 50000);
  EXPECT_NEAR(mean, 200.0, 1.0);
  EXPECT_NEAR(var, 200.0, 10.0);
}

TEST(Rng, BernoulliProbability) {
  core::RngStream r(16);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ZipfRankZeroMostPopular) {
  core::RngStream r(17);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[r.zipf(10, 1.0)];
  // Monotone non-increasing popularity (allow small noise between neighbors).
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[5]);
  EXPECT_GT(counts[5], 0);
  // Zipf(s=1): P(0)/P(1) ~ 2.
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 2.0, 0.2);
}

TEST(Rng, ZipfCacheRebuildOnParamChange) {
  core::RngStream r(18);
  for (int i = 0; i < 100; ++i) EXPECT_LT(r.zipf(5, 1.0), 5u);
  for (int i = 0; i < 100; ++i) EXPECT_LT(r.zipf(50, 0.8), 50u);
  for (int i = 0; i < 100; ++i) EXPECT_LT(r.zipf(5, 1.0), 5u);
}

TEST(Rng, WeightedChoiceProportions) {
  core::RngStream r(19);
  std::vector<double> w{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.weighted_choice(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.015);
}

TEST(Rng, SplitMix64KnownValues) {
  // Reference values from the SplitMix64 reference implementation.
  std::uint64_t s = 0;
  const std::uint64_t v1 = core::splitmix64(s);
  const std::uint64_t v2 = core::splitmix64(s);
  EXPECT_NE(v1, v2);
  std::uint64_t s2 = 0;
  EXPECT_EQ(core::splitmix64(s2), v1);
}

TEST(Rng, Fnv1aStability) {
  EXPECT_EQ(core::fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(core::fnv1a("a"), core::fnv1a("a"));
  EXPECT_NE(core::fnv1a("a"), core::fnv1a("b"));
}
