// Taxonomy module: axis printers, the survey registry, and Table 1
// generation — cross-checked against the paper's prose claims.
#include <gtest/gtest.h>

#include "taxonomy/registry.hpp"
#include "taxonomy/taxonomy.hpp"

namespace tax = lsds::taxonomy;

namespace {

const tax::SimulatorProfile& find(const std::vector<tax::SimulatorProfile>& v,
                                  const std::string& name) {
  for (const auto& p : v) {
    if (p.name == name) return p;
  }
  static tax::SimulatorProfile none;
  ADD_FAILURE() << "profile not found: " << name;
  return none;
}

}  // namespace

TEST(Taxonomy, ScopePrinting) {
  const auto s = static_cast<tax::ScopeSet>(tax::Scope::kScheduling) |
                 static_cast<tax::ScopeSet>(tax::Scope::kEconomy);
  EXPECT_EQ(tax::scope_to_string(s), "scheduling+economy");
  EXPECT_EQ(tax::scope_to_string(0), "-");
}

TEST(Taxonomy, ComponentPrinting) {
  tax::Components c{true, true, false, true};
  EXPECT_EQ(tax::components_to_string(c), "HN-A");
}

TEST(Taxonomy, UiPrinting) {
  EXPECT_EQ(tax::ui_to_string({false, false, false}), "textual");
  EXPECT_EQ(tax::ui_to_string({true, false, true}), "visual:D-O");
}

TEST(Registry, SixSurveyedSimulatorsInPaperOrder) {
  const auto v = tax::surveyed_simulators();
  ASSERT_EQ(v.size(), 6u);
  EXPECT_EQ(v[0].name, "Bricks");
  EXPECT_EQ(v[1].name, "OptorSim");
  EXPECT_EQ(v[2].name, "SimGrid");
  EXPECT_EQ(v[3].name, "GridSim");
  EXPECT_EQ(v[4].name, "ChicagoSim");
  EXPECT_EQ(v[5].name, "MONARC 2");
}

// Each of the following encodes an explicit sentence of the paper.

TEST(Registry, BricksLacksDynamicComponents) {
  // "The vast majority of simulation tools provide this capability, but
  // there are also exceptions (Bricks for example)."
  const auto v = tax::surveyed_simulators();
  EXPECT_FALSE(find(v, "Bricks").dynamic_components);
  for (const auto& p : v) {
    if (p.name != "Bricks") {
      EXPECT_TRUE(p.dynamic_components) << p.name;
    }
  }
}

TEST(Registry, BricksUsesCentralModelMonarcTier) {
  const auto v = tax::surveyed_simulators();
  EXPECT_EQ(find(v, "Bricks").organization, "central model");
  EXPECT_EQ(find(v, "MONARC 2").organization, "tier model");
}

TEST(Registry, SimGridLacksMiddlewareSupport) {
  // "SimGrid does not provide any of the system support facilities as
  // discussed in the taxonomy."
  const auto v = tax::surveyed_simulators();
  EXPECT_FALSE(find(v, "SimGrid").components.middleware);
}

TEST(Registry, SimGridValidatedMathematically) {
  // "The validation consisted in comparing the results of the simulator
  // with the ones obtained analytically." (Casanova 2001)
  const auto v = tax::surveyed_simulators();
  EXPECT_EQ(find(v, "SimGrid").validation, tax::Validation::kMathematical);
}

TEST(Registry, OnlyBricksMonarcSimgridValidate) {
  // "To this date only a few simulators present validation studies
  // (e.g. Bricks, MONARC and SimGrid)."
  const auto v = tax::surveyed_simulators();
  for (const auto& p : v) {
    const bool validated = p.validation != tax::Validation::kNone;
    const bool expected =
        p.name == "Bricks" || p.name == "MONARC 2" || p.name == "SimGrid";
    EXPECT_EQ(validated, expected) << p.name;
  }
}

TEST(Registry, Monarc2AcceptsMonitoringInputChicagoSimOnlyGenerators) {
  // "MONARC 2 accepts both types of input … while ChicagoSim accepts only
  // input data generators."
  const auto v = tax::surveyed_simulators();
  EXPECT_EQ(find(v, "MONARC 2").input, tax::InputData::kBoth);
  EXPECT_EQ(find(v, "ChicagoSim").input, tax::InputData::kGenerators);
}

TEST(Registry, GridSimAndMonarcHaveVisualDesign) {
  // "Examples of simulators providing visual design interfaces are GridSim
  // and MONARC 2."
  const auto v = tax::surveyed_simulators();
  EXPECT_TRUE(find(v, "GridSim").ui.visual_design);
  EXPECT_TRUE(find(v, "MONARC 2").ui.visual_design);
  EXPECT_FALSE(find(v, "SimGrid").ui.visual_design);
}

TEST(Registry, ChicagoSimBuiltOnParsecLanguage) {
  // "built on top of the C-based simulation language Parsec"
  const auto v = tax::surveyed_simulators();
  EXPECT_EQ(find(v, "ChicagoSim").model_spec, tax::ModelSpec::kLanguage);
}

TEST(Registry, GridSimTargetsEconomy) {
  const auto v = tax::surveyed_simulators();
  EXPECT_TRUE(find(v, "GridSim").scope & static_cast<tax::ScopeSet>(tax::Scope::kEconomy));
}

TEST(Registry, OptorSimTargetsReplication) {
  const auto v = tax::surveyed_simulators();
  EXPECT_TRUE(find(v, "OptorSim").scope &
              static_cast<tax::ScopeSet>(tax::Scope::kDataReplication));
}

TEST(Registry, AllSurveyedAreCentralizedDES) {
  // "There are no pure distributed simulators for modeling large scale
  // distributed systems." All six are event-driven DES on one host.
  for (const auto& p : tax::surveyed_simulators()) {
    EXPECT_EQ(p.execution, tax::Execution::kCentralized) << p.name;
    EXPECT_EQ(p.mechanics, tax::Mechanics::kDiscreteEvent) << p.name;
    EXPECT_EQ(p.des_kind, tax::DesKind::kEventDriven) << p.name;
  }
}

TEST(Registry, LsdsProfileIsHonest) {
  const auto p = tax::lsds_profile();
  EXPECT_EQ(p.name, "LSDS-Sim");
  EXPECT_TRUE(p.components.hosts && p.components.network && p.components.middleware &&
              p.components.applications);
  EXPECT_EQ(p.execution, tax::Execution::kDistributed);  // threaded LP engine
  EXPECT_EQ(p.input, tax::InputData::kBoth);
  EXPECT_FALSE(p.ui.visual_design);  // no GUI: we do not overclaim
  EXPECT_EQ(p.validation, tax::Validation::kMathematical);
}

TEST(Table1, RendersAllSimulatorsAndAxes) {
  const auto t = tax::render_table1(true);
  for (const char* name :
       {"Bricks", "OptorSim", "SimGrid", "GridSim", "ChicagoSim", "MONARC 2", "LSDS-Sim"}) {
    EXPECT_NE(t.find(name), std::string::npos) << name;
  }
  for (const char* axis : {"scope", "organization", "components", "behavior", "mechanics",
                           "execution", "model spec", "input data", "validation"}) {
    EXPECT_NE(t.find(axis), std::string::npos) << axis;
  }
}

TEST(Table1, ExcludingLsdsDropsColumn) {
  const auto t = tax::render_table1(false);
  EXPECT_EQ(t.find("LSDS-Sim"), std::string::npos);
  EXPECT_NE(t.find("MONARC 2"), std::string::npos);
}
