// Cross-cutting property suites: conservation laws, adversarial
// pending-set patterns, and randomized whole-subsystem sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/engine.hpp"
#include "core/event_queue.hpp"
#include "hosts/cpu.hpp"
#include "net/flow.hpp"
#include "net/packet.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "net/transfer.hpp"

namespace core = lsds::core;
namespace hosts = lsds::hosts;
namespace net = lsds::net;

// --- adversarial pending-set patterns (all five structures) -----------------

class QueueAdversarial : public ::testing::TestWithParam<core::QueueKind> {
 protected:
  std::unique_ptr<core::EventQueue> make() { return core::make_event_queue(GetParam()); }
};

TEST_P(QueueAdversarial, AllSimultaneous) {
  auto q = make();
  for (core::EventId i = 1; i <= 5000; ++i) q->push({42.0, i, nullptr});
  for (core::EventId i = 1; i <= 5000; ++i) {
    auto ev = q->pop();
    ASSERT_EQ(ev.seq, i);
    ASSERT_DOUBLE_EQ(ev.time, 42.0);
  }
}

TEST_P(QueueAdversarial, HugeTimeJumps) {
  // Decades-apart clusters stress calendar year-walking and ladder epochs.
  auto q = make();
  core::RngStream rng(8);
  core::EventId seq = 1;
  double base = 0;
  for (int cluster = 0; cluster < 20; ++cluster) {
    for (int i = 0; i < 50; ++i) q->push({base + rng.uniform(0, 1e-3), seq++, nullptr});
    base += 1e9;  // jump ~30 years
  }
  double last = -1;
  while (!q->empty()) {
    auto ev = q->pop();
    ASSERT_GE(ev.time, last);
    last = ev.time;
  }
}

TEST_P(QueueAdversarial, DecreasingDensity) {
  // Geometric thinning: dense near zero, exponentially sparse later.
  auto q = make();
  core::EventId seq = 1;
  double t = 1e-6;
  for (int i = 0; i < 3000; ++i) {
    q->push({t, seq++, nullptr});
    t *= 1.01;
  }
  double last = -1;
  while (!q->empty()) {
    auto ev = q->pop();
    ASSERT_GE(ev.time, last);
    last = ev.time;
  }
}

TEST_P(QueueAdversarial, InterleavedNearAndFar) {
  // Hold loop that alternates +epsilon and +huge increments.
  auto q = make();
  core::EventId seq = 1;
  q->push({0.0, seq++, nullptr});
  double last = -1;
  for (int i = 0; i < 4000; ++i) {
    auto ev = q->pop();
    ASSERT_GE(ev.time, last);
    last = ev.time;
    q->push({ev.time + ((i % 2) ? 1e-9 : 1e6), seq++, nullptr});
  }
}

INSTANTIATE_TEST_SUITE_P(AllStructures, QueueAdversarial,
                         ::testing::ValuesIn(core::kAllQueueKinds),
                         [](const ::testing::TestParamInfo<core::QueueKind>& info) {
                           std::string n = core::to_string(info.param);
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

// --- conservation laws -------------------------------------------------

TEST(Conservation, FlowNetworkDeliversExactlyWhatWasSent) {
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 3});
  core::RngStream trng(9);
  auto topo = net::Topology::random_connected(10, 6, 1e6, 0.001, trng);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  auto& rng = eng.rng("flows");
  double total = 0;
  for (int i = 0; i < 60; ++i) {
    const auto s = static_cast<net::NodeId>(rng.uniform_int(0, 9));
    auto d = static_cast<net::NodeId>(rng.uniform_int(0, 8));
    if (d >= s) ++d;
    const double bytes = rng.uniform(1e4, 5e6);
    total += bytes;
    eng.schedule_at(rng.uniform(0, 20), [&fn, s, d, bytes] { fn.start_flow(s, d, bytes); });
  }
  eng.run();
  EXPECT_EQ(fn.flows_completed(), 60u);
  EXPECT_NEAR(fn.total_bytes_delivered(), total, total * 1e-9);
  EXPECT_EQ(fn.active_flows(), 0u);
}

TEST(Conservation, CpuDeliversExactlyRequestedOps) {
  for (auto policy : {hosts::SharingPolicy::kSpaceShared, hosts::SharingPolicy::kTimeShared}) {
    core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 4});
    hosts::CpuResource cpu(eng, "n", 3, 100.0, policy);
    auto& rng = eng.rng("jobs");
    double total = 0;
    for (int i = 1; i <= 50; ++i) {
      const double ops = rng.uniform(10, 2000);
      total += ops;
      eng.schedule_at(rng.uniform(0, 10), [&cpu, i, ops] {
        cpu.submit(static_cast<hosts::JobId>(i), ops, nullptr);
      });
    }
    eng.run();
    EXPECT_EQ(cpu.jobs_completed(), 50u) << to_string(policy);
    EXPECT_NEAR(cpu.busy_ops(), total, 1.0) << to_string(policy);
  }
}

TEST(Conservation, PacketAccountingBalances) {
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 5});
  auto topo = net::Topology::dumbbell(3, 3, 1e7, 0.0005, 1e6, 0.002);
  net::Routing routing(topo);
  net::PacketNetwork::Config cfg;
  cfg.queue_packets = 8;  // force drops
  net::PacketNetwork pn(eng, routing, cfg);
  int completed = 0;
  for (int i = 0; i < 3; ++i) {
    pn.start_transfer(static_cast<net::NodeId>(2 + i), static_cast<net::NodeId>(5 + i), 200000,
                      [&](net::TransferId) { ++completed; });
  }
  eng.run();
  const auto& s = pn.stats();
  EXPECT_EQ(completed, 3);
  // Every sent packet was either delivered or dropped...
  EXPECT_EQ(s.packets_sent, s.packets_delivered + s.packets_dropped);
  // ...every drop was eventually retransmitted...
  EXPECT_EQ(s.retransmits, s.packets_dropped);
  // ...and the payload arrived exactly once per packet slot.
  const auto expected_packets = 3u * static_cast<std::uint64_t>(std::ceil(200000.0 / 1500.0));
  EXPECT_EQ(s.packets_delivered, expected_packets);
}

// --- randomized packet-network sweeps ----------------------------------

class PacketSweep : public ::testing::TestWithParam<int> {};

TEST_P(PacketSweep, AllTransfersCompleteOnRandomTopologies) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = seed});
  core::RngStream trng(seed * 7 + 1);
  auto topo = net::Topology::random_connected(8, 4, 2e6, 0.002, trng);
  net::Routing routing(topo);
  net::PacketNetwork::Config cfg;
  cfg.queue_packets = 12;
  net::PacketNetwork pn(eng, routing, cfg);
  auto& rng = eng.rng("transfers");
  int completed = 0;
  const int n = 10;
  for (int i = 0; i < n; ++i) {
    const auto s = static_cast<net::NodeId>(rng.uniform_int(0, 7));
    auto d = static_cast<net::NodeId>(rng.uniform_int(0, 6));
    if (d >= s) ++d;
    eng.schedule_at(rng.uniform(0, 5), [&pn, s, d, &completed] {
      pn.start_transfer(s, d, 100000, [&completed](net::TransferId) { ++completed; });
    });
  }
  eng.run();
  EXPECT_EQ(completed, n);
  EXPECT_EQ(pn.active_transfers(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketSweep, ::testing::Range(1, 9));

// --- transfer service conservation -----------------------------------------

TEST(Conservation, TransferServiceCompletesEverySubmission) {
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 6});
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_link(a, b, 1e6, 0.001);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  net::TransferService::Config cfg;
  cfg.max_streams_per_pair = 2;
  net::TransferService svc(eng, fn, cfg);
  auto& rng = eng.rng("xfers");
  double total = 0;
  for (int i = 0; i < 40; ++i) {
    const double bytes = rng.uniform(1e3, 1e6);
    total += bytes;
    eng.schedule_at(rng.uniform(0, 10), [&svc, a, b, bytes] { svc.submit(a, b, bytes); });
  }
  eng.run();
  EXPECT_EQ(svc.completed(), 40u);
  EXPECT_EQ(svc.queued(), 0u);
  EXPECT_NEAR(svc.bytes_completed(), total, 1.0);
  // FIFO per pair: waits are finite and recorded for every transfer.
  EXPECT_EQ(svc.queue_waits().count(), 40u);
}

// --- engine determinism across queue structures on a full scenario ----------

class FullScenarioDeterminism : public ::testing::TestWithParam<core::QueueKind> {};

TEST_P(FullScenarioDeterminism, FlowScenarioIdenticalAcrossStructures) {
  auto run_with = [](core::QueueKind kind) {
    core::Engine eng({.queue = kind, .seed = 77});
    core::RngStream trng(123);
    auto topo = net::Topology::random_connected(12, 8, 1e6, 0.001, trng);
    net::Routing routing(topo);
    net::FlowNetwork fn(eng, routing);
    auto& rng = eng.rng("wl");
    std::vector<double> completions;
    for (int i = 0; i < 40; ++i) {
      const auto s = static_cast<net::NodeId>(rng.uniform_int(0, 11));
      auto d = static_cast<net::NodeId>(rng.uniform_int(0, 10));
      if (d >= s) ++d;
      eng.schedule_at(rng.uniform(0, 30), [&, s, d] {
        fn.start_flow(s, d, 1e6, [&](net::FlowId) { completions.push_back(eng.now()); });
      });
    }
    eng.run();
    return completions;
  };
  const auto ref = run_with(core::QueueKind::kBinaryHeap);
  const auto got = run_with(GetParam());
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_DOUBLE_EQ(got[i], ref[i]);
}

INSTANTIATE_TEST_SUITE_P(AllStructures, FullScenarioDeterminism,
                         ::testing::ValuesIn(core::kAllQueueKinds),
                         [](const ::testing::TestParamInfo<core::QueueKind>& info) {
                           std::string n = core::to_string(info.param);
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });
