#!/usr/bin/env python3
"""Validate a BENCH_zone.json emitted by bench_zone_scale.

Usage: check_zone_bench.py BENCH_zone.json

Checks:
  * the file parses as JSON with benchmark == "zone_scale" and a
    non-empty points list;
  * every point passed its self-check (determinism re-hash, plus flat
    Dijkstra byte-identity on at least one point);
  * host counts are strictly ascending and route hashes are non-zero
    and pairwise distinct (a constant hash would mean routes were not
    actually computed);
  * build + warm stays bounded on EVERY point — the acceptance gate is
    < 30 s and < 2048 MB RSS for the largest platform, and zone build
    cost must not grow with host count the way a flat graph would
    (every build_ms < 1000 regardless of size).

Exit code 0 on success, 1 otherwise. Stdlib only.
"""
import json
import math
import sys

MAX_TOTAL_MS = 30_000.0
MAX_RSS_MB = 2048.0
MAX_BUILD_MS = 1000.0


def fail(msg):
    print(f"check_zone_bench: FAIL: {msg}")
    return 1


def main(argv):
    if len(argv) != 2:
        print(__doc__)
        return 2
    try:
        with open(argv[1]) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return fail(f"cannot read {argv[1]}: {e}")

    if doc.get("benchmark") != "zone_scale":
        return fail(f"unexpected benchmark field: {doc.get('benchmark')!r}")
    points = doc.get("points")
    if not points:
        return fail("no points in document")

    prev_hosts = 0
    hashes = set()
    flat_checked_any = False
    for p in points:
        shape = p.get("shape", "?")
        hosts = p.get("hosts")
        if not isinstance(hosts, int) or hosts <= prev_hosts:
            return fail(f"{shape}: hosts not strictly ascending ({prev_hosts} -> {hosts!r})")
        prev_hosts = hosts

        for key in ("build_ms", "warm_ms", "rss_mb"):
            v = p.get(key)
            if not isinstance(v, (int, float)) or not math.isfinite(v) or v < 0:
                return fail(f"{shape}: bad {key}: {v!r}")

        if not p.get("ok", False):
            return fail(f"{shape}: self-check failed")
        flat_checked_any = flat_checked_any or p.get("flat_checked", False)

        h = p.get("route_hash", "0")
        if int(h, 16) == 0:
            return fail(f"{shape}: zero route hash — routes were not computed")
        if h in hashes:
            return fail(f"{shape}: duplicate route hash {h} across different shapes")
        hashes.add(h)

        if p["build_ms"] > MAX_BUILD_MS:
            return fail(f"{shape}: build_ms {p['build_ms']:.1f} > {MAX_BUILD_MS:.0f} "
                        "(zone build must not scale with host count)")

    if not flat_checked_any:
        return fail("no point was verified against flat Dijkstra")

    largest = points[-1]
    total_ms = largest["build_ms"] + largest["warm_ms"]
    if total_ms > MAX_TOTAL_MS:
        return fail(f"{largest['shape']}: build+warm {total_ms:.0f} ms > {MAX_TOTAL_MS:.0f} ms")
    if largest["rss_mb"] > MAX_RSS_MB:
        return fail(f"{largest['shape']}: rss {largest['rss_mb']:.0f} MB > {MAX_RSS_MB:.0f} MB")

    print(f"check_zone_bench: OK ({len(points)} points, up to {largest['hosts']} hosts, "
          f"largest build+warm {total_ms:.1f} ms, rss {largest['rss_mb']:.1f} MB)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
