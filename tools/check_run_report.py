#!/usr/bin/env python3
"""Validate a RunReport JSON file (schema lsds.run_report/1).

Usage: check_run_report.py RUN_*.json ...

Checks, per file:
  * the file parses as JSON and contains no NaN/Infinity literals;
  * schema == "lsds.run_report/1";
  * required sections exist: scenario{facade,seed,queue},
    result{jobs_done,makespan,bytes_moved}, metrics, profiler;
  * every number anywhere in the document is finite;
  * makespan >= 0 and jobs_done is a non-negative integer.

Exit code 0 when every file passes, 1 otherwise. Stdlib only.
"""
import json
import math
import sys


class NonFinite(Exception):
    pass


def reject_constant(name):
    raise NonFinite(f"non-finite literal {name!r} in document")


def walk_finite(node, path):
    if isinstance(node, float) and not math.isfinite(node):
        raise NonFinite(f"non-finite number at {path}")
    if isinstance(node, dict):
        for k, v in node.items():
            walk_finite(v, f"{path}.{k}")
    elif isinstance(node, list):
        for i, v in enumerate(node):
            walk_finite(v, f"{path}[{i}]")


def require(doc, path, types=None):
    node = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(f"missing required field '{path}'")
        node = node[part]
    if types is not None and not isinstance(node, types):
        raise TypeError(f"field '{path}' has type {type(node).__name__}")
    return node


def check(path):
    with open(path) as f:
        doc = json.load(f, parse_constant=reject_constant)
    if require(doc, "schema", str) != "lsds.run_report/1":
        raise ValueError(f"unexpected schema {doc['schema']!r}")
    require(doc, "scenario.facade", str)
    require(doc, "scenario.seed", int)
    require(doc, "scenario.queue", str)
    jobs_done = require(doc, "result.jobs_done", int)
    makespan = require(doc, "result.makespan", (int, float))
    require(doc, "result.bytes_moved", (int, float))
    require(doc, "metrics", dict)
    require(doc, "profiler", dict)
    walk_finite(doc, "$")
    if jobs_done < 0:
        raise ValueError(f"result.jobs_done is negative: {jobs_done}")
    if makespan < 0:
        raise ValueError(f"result.makespan is negative: {makespan}")
    return doc


def main(argv):
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = 0
    for path in argv:
        try:
            doc = check(path)
        except Exception as e:  # report every file, then fail
            print(f"FAIL {path}: {e}", file=sys.stderr)
            failed += 1
            continue
        r = doc["result"]
        print(f"ok   {path}: facade={doc['scenario']['facade']} "
              f"jobs_done={r['jobs_done']} makespan={r['makespan']}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
