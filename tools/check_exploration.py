#!/usr/bin/env python3
"""Validate an exploration RunReport (facade = explore).

Usage: check_exploration.py [--expect-verified | --expect-violation] RUN.json ...

On top of the generic RunReport shape (see check_run_report.py), checks the
explore-specific `result` section:

  * result.verified is a bool and equals the AND of per-policy `ok`;
  * result.policies is a non-empty list; each entry carries the exploration
    counters (non-negative ints), `complete`, `ok`, and a `violations` list;
  * counters are mutually consistent: hash_pruned <= states_hashed,
    executions >= 1, ok == (violations is empty);
  * every violation is a well-formed replayable counterexample: a non-empty
    minimized `schedule` (ints, trailing defaults trimmed so the last entry
    is non-zero), a non-empty `trace` of [time, event-id] pairs with
    non-decreasing finite times, and a finite violation `time` that appears
    within the trace's span.

Exit code 0 when every file passes, 1 otherwise. Stdlib only.
"""
import json
import math
import sys


def fail(path, msg):
    print(f"{path}: FAIL — {msg}")
    return False


def is_uint(x):
    return isinstance(x, int) and not isinstance(x, bool) and x >= 0


def check_violation(v, where):
    if not isinstance(v.get("invariant"), str) or not v["invariant"]:
        raise ValueError(f"{where}: missing invariant name")
    if not isinstance(v.get("message"), str) or not v["message"]:
        raise ValueError(f"{where}: missing violation message")
    t = v.get("time")
    if not isinstance(t, (int, float)) or not math.isfinite(t) or t < 0:
        raise ValueError(f"{where}: bad violation time {t!r}")
    if not is_uint(v.get("execution")) or v["execution"] < 1:
        raise ValueError(f"{where}: execution index must be >= 1")
    sched = v.get("schedule")
    if not isinstance(sched, list) or not sched:
        raise ValueError(f"{where}: empty counterexample schedule")
    if not all(is_uint(s) for s in sched):
        raise ValueError(f"{where}: schedule entries must be event ids")
    if sched[-1] == 0:
        raise ValueError(f"{where}: schedule not minimized (trailing default)")
    trace = v.get("trace")
    if not isinstance(trace, list) or not trace:
        raise ValueError(f"{where}: empty counterexample trace")
    prev = -math.inf
    for i, step in enumerate(trace):
        if (not isinstance(step, list) or len(step) != 2
                or not isinstance(step[0], (int, float)) or not math.isfinite(step[0])
                or not is_uint(step[1]) or step[1] == 0):
            raise ValueError(f"{where}: trace[{i}] is not a [time, event-id] pair")
        if step[0] < prev:
            raise ValueError(f"{where}: trace times decrease at [{i}]")
        prev = step[0]
    if not (trace[0][0] <= v["time"] <= trace[-1][0]):
        raise ValueError(f"{where}: violation time outside the trace span")


def check_policy(p, where):
    if not isinstance(p.get("policy"), str) or not p["policy"]:
        raise ValueError(f"{where}: missing policy name")
    for key in ("executions", "choice_points", "states_hashed", "hash_pruned",
                "sleep_pruned", "max_depth_seen"):
        if not is_uint(p.get(key)):
            raise ValueError(f"{where}: {key} must be a non-negative int")
    for key in ("complete", "ok"):
        if not isinstance(p.get(key), bool):
            raise ValueError(f"{where}: {key} must be a bool")
    if p["executions"] < 1:
        raise ValueError(f"{where}: explored zero executions")
    if p["hash_pruned"] > p["states_hashed"]:
        raise ValueError(f"{where}: hash_pruned exceeds states_hashed")
    violations = p.get("violations")
    if not isinstance(violations, list):
        raise ValueError(f"{where}: violations must be a list")
    if p["ok"] != (len(violations) == 0):
        raise ValueError(f"{where}: ok flag disagrees with the violations list")
    for i, v in enumerate(violations):
        check_violation(v, f"{where}.violations[{i}]")


def check(path):
    with open(path) as f:
        doc = json.load(f)
    facade = doc.get("scenario", {}).get("facade")
    if facade != "explore":
        raise ValueError(f"scenario.facade is {facade!r}, expected 'explore'")
    result = doc.get("result")
    if not isinstance(result, dict):
        raise ValueError("missing result section")
    verified = result.get("verified")
    if not isinstance(verified, bool):
        raise ValueError("result.verified must be a bool")
    policies = result.get("policies")
    if not isinstance(policies, list) or not policies:
        raise ValueError("result.policies must be a non-empty list")
    for i, p in enumerate(policies):
        check_policy(p, f"result.policies[{i}]")
    if verified != all(p["ok"] for p in policies):
        raise ValueError("result.verified disagrees with per-policy ok flags")
    return verified


def main(argv):
    expect = None
    files = []
    for arg in argv:
        if arg == "--expect-verified":
            expect = True
        elif arg == "--expect-violation":
            expect = False
        else:
            files.append(arg)
    if not files:
        print(__doc__.strip().splitlines()[2])
        return 1
    ok = True
    for path in files:
        try:
            verified = check(path)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
            ok = fail(path, str(e))
            continue
        if expect is not None and verified != expect:
            ok = fail(path, f"verified={verified}, expected {expect}")
            continue
        print(f"{path}: OK (verified={str(verified).lower()})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
