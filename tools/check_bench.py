#!/usr/bin/env python3
"""Validate a BENCH_flow.json emitted by bench_flow_scaling.

Usage: check_bench.py BENCH_flow.json

Checks:
  * the file parses as JSON with benchmark == "flow_scaling" and a
    non-empty points list;
  * every point's full and incremental solver hashes are identical
    (byte-identical final model state — the determinism contract);
  * on the LARGEST point, incremental wall-clock <= full wall-clock
    (guards against the incremental path silently regressing into
    overhead);
  * all wall-clock numbers are finite and positive.

Exit code 0 on success, 1 otherwise. Stdlib only.
"""
import json
import math
import sys


def fail(msg):
    print(f"check_bench: FAIL: {msg}")
    return 1


def main(argv):
    if len(argv) != 2:
        print(__doc__)
        return 2
    try:
        with open(argv[1]) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return fail(f"cannot read {argv[1]}: {e}")

    if doc.get("benchmark") != "flow_scaling":
        return fail(f"unexpected benchmark field: {doc.get('benchmark')!r}")
    points = doc.get("points")
    if not points:
        return fail("no points in document")

    for p in points:
        n = p.get("flows")
        full_ms = p.get("full_wall_ms")
        inc_ms = p.get("incremental_wall_ms")
        for label, v in (("full_wall_ms", full_ms), ("incremental_wall_ms", inc_ms)):
            if not isinstance(v, (int, float)) or not math.isfinite(v) or v <= 0:
                return fail(f"flows={n}: bad {label}: {v!r}")
        if not p.get("identical", False):
            return fail(f"flows={n}: solver hashes differ "
                        f"({p.get('full_hash')} vs {p.get('incremental_hash')})")

    largest = max(points, key=lambda p: p["flows"])
    n = largest["flows"]
    full_ms = largest["full_wall_ms"]
    inc_ms = largest["incremental_wall_ms"]
    if inc_ms > full_ms:
        return fail(f"flows={n}: incremental ({inc_ms:.1f} ms) slower than "
                    f"full ({full_ms:.1f} ms)")

    print(f"check_bench: OK: {len(points)} points, largest {n} flows: "
          f"incremental {inc_ms:.1f} ms vs full {full_ms:.1f} ms "
          f"({full_ms / inc_ms:.1f}x), all traces identical")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
