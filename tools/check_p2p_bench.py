#!/usr/bin/env python3
"""Validate a BENCH_p2p.json emitted by bench_p2p_churn.

Usage: check_p2p_bench.py BENCH_p2p.json

Checks (experiment E16 acceptance gates):
  * the file parses as JSON with benchmark == "p2p_churn";
  * ring key-resolution A/B: every point matched the std::map reference
    bit-for-bit, every speedup >= 2x, and at least one point at >= 100k
    peers reached >= 10x — the flat RingIndex vs std::map::lower_bound
    gate the rewrite rides on;
  * end-to-end overlay A/B: for every (overlay, peers) pair the flat and
    map implementations produced identical ok / hops / message counts
    (behavior identity), and the flat build is not slower than 0.9x the
    seed (no regression hiding behind the resolution win);
  * chord mean hops grow with population (O(log n) routing sanity);
  * the 512-peer differential scenario (protocol mode + kills + rebirths)
    produced byte-identical event traces for both implementations;
  * the protocol+churn+traffic stack hashed identically across all five
    event-queue kinds, with non-zero digests, and an identical-seed
    re-run reproduced the chord throughput run exactly;
  * the churn study has >= 4 lifetime points with sane failure rates,
    and shrinking lifetimes never *reduce* the failure rate below the
    no-churn baseline;
  * the million-peer point (full runs only): >= 1e6 peers and >= 1e6
    peak pending events in the ladder queue, with live peers remaining.

Exit code 0 on success, 1 otherwise. Stdlib only.
"""
import json
import math
import sys

MIN_RESOLVE_SPEEDUP_ANY = 10.0   # at >= 100k peers
MIN_RESOLVE_SPEEDUP_ALL = 2.0
MIN_THROUGHPUT_RATIO = 0.9       # flat ops/s vs map ops/s
MILLION_PEERS = 1_000_000
MILLION_PENDING = 1_000_000


def fail(msg):
    print(f"check_p2p_bench: FAIL: {msg}")
    return 1


def is_num(v):
    return isinstance(v, (int, float)) and math.isfinite(v)


def main(argv):
    if len(argv) != 2:
        print(__doc__)
        return 2
    try:
        with open(argv[1]) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return fail(f"cannot read {argv[1]}: {e}")

    if doc.get("benchmark") != "p2p_churn":
        return fail(f"unexpected benchmark field: {doc.get('benchmark')!r}")

    # --- ring key-resolution primitive ---------------------------------
    resolve = doc.get("resolve")
    if not resolve:
        return fail("no resolve points")
    best_at_scale = 0.0
    for r in resolve:
        peers, speedup = r.get("peers"), r.get("speedup")
        if not r.get("match", False):
            return fail(f"resolve @{peers}: flat/map successor answers diverged")
        if not is_num(speedup) or speedup < MIN_RESOLVE_SPEEDUP_ALL:
            return fail(f"resolve @{peers}: speedup {speedup!r} < "
                        f"{MIN_RESOLVE_SPEEDUP_ALL}x")
        if isinstance(peers, int) and peers >= 100_000:
            best_at_scale = max(best_at_scale, speedup)
    if best_at_scale < MIN_RESOLVE_SPEEDUP_ANY:
        return fail(f"no resolve point at >= 100k peers reached "
                    f"{MIN_RESOLVE_SPEEDUP_ANY}x (best {best_at_scale}x)")

    # --- end-to-end overlay A/B ----------------------------------------
    points = doc.get("throughput")
    if not points:
        return fail("no throughput points")
    pairs = {}
    for p in points:
        pairs.setdefault((p.get("overlay"), p.get("peers")), {})[p.get("impl")] = p
    chord_flat = []
    for (overlay, peers), by_impl in sorted(pairs.items(), key=lambda kv: (kv[0][0], kv[0][1])):
        flat = by_impl.get("flat")
        if flat is None:
            return fail(f"{overlay} @{peers}: missing flat implementation point")
        if not is_num(flat.get("ops_per_s")) or flat["ops_per_s"] <= 0:
            return fail(f"{overlay} @{peers}: bad flat ops_per_s")
        if overlay == "chord":
            chord_flat.append(flat)
        mapp = by_impl.get("map")
        if mapp is None:
            continue  # flat-only scale point (1M peers: the seed build is impractical)
        for key in ("ok", "hops_total", "messages", "ops"):
            if flat.get(key) != mapp.get(key):
                return fail(f"{overlay} @{peers}: {key} diverged "
                            f"(flat {flat.get(key)!r} vs map {mapp.get(key)!r})")
        if flat["ops_per_s"] < MIN_THROUGHPUT_RATIO * mapp["ops_per_s"]:
            return fail(f"{overlay} @{peers}: flat {flat['ops_per_s']:.0f} ops/s regressed "
                        f"below {MIN_THROUGHPUT_RATIO}x map ({mapp['ops_per_s']:.0f})")

    chord_flat.sort(key=lambda p: p["peers"])
    prev_hops = 0.0
    for p in chord_flat:
        ok = p.get("ok") or 0
        hops = (p.get("hops_total") or 0) / max(ok, 1)
        if hops < prev_hops:
            return fail(f"chord mean hops shrank with population "
                        f"({prev_hops:.2f} -> {hops:.2f} @{p['peers']} peers)")
        prev_hops = hops

    # --- seed-vs-rewrite differential trace ----------------------------
    diff = doc.get("diff_trace") or {}
    if not diff.get("identical", False):
        return fail(f"differential scenario traces diverged "
                    f"(flat {diff.get('trace_flat')}, map {diff.get('trace_map')})")
    if int(diff.get("trace_flat", "0"), 16) == 0 or not diff.get("executed"):
        return fail("differential scenario trace is empty")

    # --- cross-queue-kind determinism ----------------------------------
    hashes = doc.get("hash_points")
    if not hashes or len(hashes) != 5:
        return fail(f"expected 5 hash points (one per queue kind), got "
                    f"{len(hashes) if hashes else 0}")
    digests = {h.get("digest") for h in hashes}
    traces = {h.get("trace") for h in hashes}
    if len(digests) != 1 or len(traces) != 1:
        return fail(f"queue kinds disagree: digests {sorted(digests)}, traces {sorted(traces)}")
    if int(next(iter(digests)), 16) == 0:
        return fail("zero state digest — overlay state was not hashed")
    if not doc.get("hash_equal", False):
        return fail("hash_equal flag is false")
    if not doc.get("deterministic", False):
        return fail("identical-seed re-run did not reproduce the throughput run")

    # --- churn study ----------------------------------------------------
    churn = doc.get("churn")
    if not churn or len(churn) < 4:
        return fail(f"churn study needs >= 4 lifetime points, got "
                    f"{len(churn) if churn else 0}")
    for c in churn:
        rate = c.get("failure_rate")
        if not is_num(rate) or not 0.0 <= rate <= 1.0:
            return fail(f"churn life={c.get('mean_lifetime')}: bad failure_rate {rate!r}")
        if c.get("mean_lifetime", 0) > 0 and not c.get("deaths"):
            return fail(f"churn life={c.get('mean_lifetime')}: churn enabled but no deaths")
        if not is_num(c.get("events_per_s")) or c["events_per_s"] <= 0:
            return fail(f"churn life={c.get('mean_lifetime')}: bad events_per_s")
    if churn[-1]["failure_rate"] < churn[0]["failure_rate"]:
        return fail("heaviest churn point has a lower failure rate than the no-churn baseline")

    # --- million-peer point (omitted in --small runs) -------------------
    million = doc.get("million")
    if million is not None:
        if million.get("peers", 0) < MILLION_PEERS:
            return fail(f"million point ran {million.get('peers')} peers")
        if million.get("peak_pending", 0) < MILLION_PENDING:
            return fail(f"million point peaked at {million.get('peak_pending')} pending "
                        f"events (< {MILLION_PENDING})")
        if not million.get("live") or not million.get("events"):
            return fail("million point finished with no live peers or no events")

    n_res = len(resolve)
    print(f"check_p2p_bench: OK ({n_res} resolve points, best {best_at_scale:.1f}x at scale; "
          f"{len(pairs)} A/B pairs behavior-identical; 5 queue kinds agree; "
          f"{len(churn)} churn points"
          + (f"; 1M peers, peak {million['peak_pending']} pending" if million else "")
          + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
