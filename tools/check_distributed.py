#!/usr/bin/env python3
"""Validate the partial directory of a distributed campaign run.

Usage: check_distributed.py PARTIAL_DIR [--report CAMPAIGN.json]

Checks, over every partial_s*.json in PARTIAL_DIR:
  * each file parses as JSON with schema "lsds.campaign_partial/1";
  * each file's shard {id, begin, end} matches its own filename and
    len(slots) == end - begin;
  * every partial carries the same grid signature (a mixed directory means
    shards of two different campaigns were written into one place);
  * shard ranges are disjoint and, together, cover [0, N) with no holes —
    the merged grid the coordinator builds is complete;
  * every slot has rc == 0 and an empty error (a failed replication in a
    kept partial directory means the merged report threw);
  * every metric value is finite and metric names are consistent across
    slots (same set everywhere — facades emit a fixed report shape).

With --report, additionally validates the merged campaign report via
check_campaign.py (same directory) and cross-checks runs == the slot count
covered by the partials.

Exit code 0 when everything passes, 1 otherwise. Stdlib only.
"""
import json
import math
import re
import sys
from pathlib import Path

import check_campaign

PARTIAL_RE = re.compile(r"^partial_s(\d+)_(\d+)_(\d+)\.json$")
SCHEMA = "lsds.campaign_partial/1"


def check_partial(path):
    m = PARTIAL_RE.match(path.name)
    if not m:
        raise ValueError(f"{path.name}: not a canonical partial filename")
    fid, fbegin, fend = (int(g) for g in m.groups())

    with open(path) as f:
        doc = json.load(f, parse_constant=check_campaign.reject_constant)
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"{path.name}: schema {doc.get('schema')!r} != {SCHEMA!r}")
    signature = doc.get("signature")
    if not isinstance(signature, str) or not signature:
        raise ValueError(f"{path.name}: missing grid signature")

    shard = doc.get("shard", {})
    if (shard.get("id"), shard.get("begin"), shard.get("end")) != (fid, fbegin, fend):
        raise ValueError(f"{path.name}: shard header {shard} contradicts the filename")
    if fend <= fbegin:
        raise ValueError(f"{path.name}: empty shard range [{fbegin}, {fend})")

    slots = doc.get("slots")
    if not isinstance(slots, list) or len(slots) != fend - fbegin:
        n = len(slots) if isinstance(slots, list) else "missing"
        raise ValueError(f"{path.name}: {n} slots for range [{fbegin}, {fend})")

    names = None
    for i, slot in enumerate(slots):
        if slot.get("rc", None) != 0 or slot.get("error", ""):
            raise ValueError(
                f"{path.name}: slot {fbegin + i} failed "
                f"(rc={slot.get('rc')!r}, error={slot.get('error')!r})")
        metrics = slot.get("metrics")
        if not isinstance(metrics, list) or not metrics:
            raise ValueError(f"{path.name}: slot {fbegin + i} has no metrics")
        slot_names = []
        for pair in metrics:
            if (not isinstance(pair, list) or len(pair) != 2
                    or not isinstance(pair[0], str)
                    or not isinstance(pair[1], (int, float))):
                raise ValueError(f"{path.name}: slot {fbegin + i}: malformed metric {pair!r}")
            if not math.isfinite(pair[1]):
                raise ValueError(f"{path.name}: slot {fbegin + i}: non-finite {pair[0]}")
            slot_names.append(pair[0])
        if names is None:
            names = slot_names
        elif slot_names != names:
            raise ValueError(f"{path.name}: slot {fbegin + i}: metric names diverge")
    return signature, fbegin, fend


def main(argv):
    if not argv or argv[0].startswith("-"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    directory = Path(argv[0])
    report = None
    if len(argv) >= 3 and argv[1] == "--report":
        report = argv[2]

    partials = sorted(directory.glob("partial_s*.json"))
    if not partials:
        print(f"FAIL {directory}: no partial_s*.json files", file=sys.stderr)
        return 1

    failed = 0
    signatures = set()
    ranges = []
    for path in partials:
        try:
            signature, begin, end = check_partial(path)
        except Exception as e:
            print(f"FAIL {path}: {e}", file=sys.stderr)
            failed += 1
            continue
        signatures.add(signature)
        ranges.append((begin, end))

    if len(signatures) > 1:
        print(f"FAIL {directory}: {len(signatures)} distinct grid signatures "
              f"(partials of different campaigns)", file=sys.stderr)
        failed += 1

    ranges.sort()
    covered = 0
    for begin, end in ranges:
        if begin < covered:
            print(f"FAIL {directory}: shard ranges overlap at slot {begin}", file=sys.stderr)
            failed += 1
            break
        if begin > covered:
            print(f"FAIL {directory}: slots [{covered}, {begin}) are uncovered",
                  file=sys.stderr)
            failed += 1
            break
        covered = end

    if report is not None and not failed:
        try:
            doc = check_campaign.check(report)
        except Exception as e:
            print(f"FAIL {report}: {e}", file=sys.stderr)
            failed += 1
        else:
            runs = doc["campaign"]["runs"]
            if runs != covered:
                print(f"FAIL {report}: runs={runs}, partials cover {covered} slots",
                      file=sys.stderr)
                failed += 1

    if not failed:
        print(f"ok   {directory}: {len(partials)} partials, {covered} slots, "
              f"signature {next(iter(signatures))}"
              + (f", report {report} consistent" if report else ""))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
