#!/usr/bin/env python3
"""Validate a campaign report JSON file (schema lsds.campaign_report/1).

Usage: check_campaign.py CAMPAIGN_*.json ...

Checks, per file:
  * the file parses as JSON and contains no NaN/Infinity literals;
  * schema == "lsds.campaign_report/1";
  * campaign{facade,queue,base_seed,replications,warmup,confidence,points,
    runs,seeds} is present and self-consistent: len(seeds) == replications,
    seeds are distinct, runs == points x replications, warmup < replications;
  * the points array matches campaign.points and the sweep grid: point count
    equals the cross product of the sweep value lists, indices are 0..P-1 in
    order, and each point's params assign one declared value per axis in
    odometer order (first axis slowest);
  * every point carries makespan stats, every metric block has
    n == replications - warmup (n >= 1), mean within [min, max],
    stddev >= 0 and ci95_halfwidth >= 0 (0 when n < 2);
  * every number anywhere in the document is finite.

Exit code 0 when every file passes, 1 otherwise. Stdlib only.
"""
import itertools
import json
import math
import sys


class NonFinite(Exception):
    pass


def reject_constant(name):
    raise NonFinite(f"non-finite literal {name!r} in document")


def walk_finite(node, path):
    if isinstance(node, float) and not math.isfinite(node):
        raise NonFinite(f"non-finite number at {path}")
    if isinstance(node, dict):
        for k, v in node.items():
            walk_finite(v, f"{path}.{k}")
    elif isinstance(node, list):
        for i, v in enumerate(node):
            walk_finite(v, f"{path}[{i}]")


def require(doc, path, types=None):
    node = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(f"missing required field '{path}'")
        node = node[part]
    if types is not None and not isinstance(node, types):
        raise TypeError(f"field '{path}' has type {type(node).__name__}")
    return node


def check_metric(name, m, expect_n):
    n = require(m, "n", int)
    mean = require(m, "mean", (int, float))
    stddev = require(m, "stddev", (int, float))
    ci = require(m, "ci95_halfwidth", (int, float))
    lo = require(m, "min", (int, float))
    hi = require(m, "max", (int, float))
    if n != expect_n:
        raise ValueError(f"metric {name!r}: n={n}, expected {expect_n}")
    if n < 1:
        raise ValueError(f"metric {name!r}: empty sample")
    if stddev < 0 or ci < 0:
        raise ValueError(f"metric {name!r}: negative spread (stddev={stddev}, ci={ci})")
    if n < 2 and ci != 0:
        raise ValueError(f"metric {name!r}: ci95 without 2 samples")
    eps = 1e-9 * max(1.0, abs(lo), abs(hi))
    if not (lo - eps <= mean <= hi + eps):
        raise ValueError(f"metric {name!r}: mean {mean} outside [{lo}, {hi}]")


def check(path):
    with open(path) as f:
        doc = json.load(f, parse_constant=reject_constant)
    if require(doc, "schema", str) != "lsds.campaign_report/1":
        raise ValueError(f"unexpected schema {doc['schema']!r}")

    require(doc, "campaign.facade", str)
    require(doc, "campaign.queue", str)
    require(doc, "campaign.base_seed", int)
    reps = require(doc, "campaign.replications", int)
    warmup = require(doc, "campaign.warmup", int)
    confidence = require(doc, "campaign.confidence", (int, float))
    n_points = require(doc, "campaign.points", int)
    runs = require(doc, "campaign.runs", int)
    seeds = require(doc, "campaign.seeds", list)
    if reps < 1 or not 0 <= warmup < reps:
        raise ValueError(f"bad replications/warmup: {reps}/{warmup}")
    if confidence != 0.95:
        raise ValueError(f"unsupported confidence {confidence}")
    if len(seeds) != reps:
        raise ValueError(f"{len(seeds)} seeds for {reps} replications")
    if len(set(seeds)) != len(seeds):
        raise ValueError("replication seeds are not distinct")
    if runs != n_points * reps:
        raise ValueError(f"runs={runs}, expected points x replications = {n_points * reps}")

    sweep = require(doc, "sweep", dict)
    expected_grid = list(itertools.product(*sweep.values())) if sweep else [()]
    if n_points != len(expected_grid):
        raise ValueError(f"campaign.points={n_points}, sweep grid has {len(expected_grid)}")

    points = require(doc, "points", list)
    if len(points) != n_points:
        raise ValueError(f"{len(points)} point entries for campaign.points={n_points}")

    axis_names = list(sweep.keys())
    for i, point in enumerate(points):
        if require(point, "index", int) != i:
            raise ValueError(f"points[{i}] has index {point['index']}")
        params = require(point, "params", dict)
        expected = dict(zip(axis_names, expected_grid[i]))
        if params != expected:
            raise ValueError(f"points[{i}] params {params} != odometer-order {expected}")
        metrics = require(point, "metrics", dict)
        if "makespan" not in metrics:
            raise ValueError(f"points[{i}] is missing the makespan metric")
        for name, m in metrics.items():
            check_metric(f"points[{i}].{name}", m, reps - warmup)

    walk_finite(doc, "$")
    return doc


def main(argv):
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = 0
    for path in argv:
        try:
            doc = check(path)
        except Exception as e:  # report every file, then fail
            print(f"FAIL {path}: {e}", file=sys.stderr)
            failed += 1
            continue
        c = doc["campaign"]
        print(f"ok   {path}: facade={c['facade']} points={c['points']} "
              f"replications={c['replications']} runs={c['runs']}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
