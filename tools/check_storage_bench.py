#!/usr/bin/env python3
"""Validate a BENCH_storage.json emitted by bench_storage (E15).

Usage: check_storage_bench.py BENCH_storage.json

Checks:
  * the file parses as JSON with benchmark == "storage_staging" and a
    non-empty points list covering all three arms (fifo, maxmin-full,
    maxmin-incremental) at every stream count;
  * every point passed its in-binary self-check (determinism re-hash,
    full-vs-incremental differential, all streams delivered);
  * per stream count, the maxmin-full and maxmin-incremental state
    hashes are EQUAL (the incremental solver is byte-identical under
    disk+link joint constraints) and differ from the fifo hash (the
    sharing model actually changes the trace);
  * within each arm, makespan grows strictly with the stream count
    (contended staging scales, it does not flat-line);
  * the incremental solver never re-rates more flows than the full
    solver at the same point.

Exit code 0 on success, 1 otherwise. Stdlib only.
"""
import json
import math
import sys

ARMS = ("fifo", "maxmin-full", "maxmin-incremental")


def fail(msg):
    print(f"check_storage_bench: FAIL: {msg}")
    return 1


def main(argv):
    if len(argv) != 2:
        print(__doc__)
        return 2
    try:
        with open(argv[1]) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return fail(f"cannot read {argv[1]}: {e}")

    if doc.get("benchmark") != "storage_staging":
        return fail(f"unexpected benchmark field: {doc.get('benchmark')!r}")
    points = doc.get("points")
    if not points:
        return fail("no points in document")

    by_streams = {}
    for p in points:
        streams, arm = p.get("streams"), p.get("arm")
        if not isinstance(streams, int) or streams <= 0:
            return fail(f"bad streams field: {streams!r}")
        if arm not in ARMS:
            return fail(f"unknown arm: {arm!r}")
        for key in ("wall_ms", "makespan_s"):
            v = p.get(key)
            if not isinstance(v, (int, float)) or not math.isfinite(v) or v < 0:
                return fail(f"{arm}@{streams}: bad {key}: {v!r}")
        if not p.get("ok", False):
            return fail(f"{arm}@{streams}: self-check failed")
        if p.get("delivered") != streams:
            return fail(f"{arm}@{streams}: delivered {p.get('delivered')!r} != {streams}")
        if int(p.get("state_hash", "0"), 16) == 0:
            return fail(f"{arm}@{streams}: zero state hash")
        by_streams.setdefault(streams, {})[arm] = p

    for streams, arms in sorted(by_streams.items()):
        missing = [a for a in ARMS if a not in arms]
        if missing:
            return fail(f"streams={streams}: missing arms {missing}")
        full, inc = arms["maxmin-full"], arms["maxmin-incremental"]
        if full["state_hash"] != inc["state_hash"]:
            return fail(f"streams={streams}: maxmin solvers diverged "
                        f"({full['state_hash']} vs {inc['state_hash']})")
        if arms["fifo"]["state_hash"] == full["state_hash"]:
            return fail(f"streams={streams}: fifo and maxmin hashes equal — "
                        "the sharing model changed nothing")
        if inc["flows_rerated"] > full["flows_rerated"]:
            return fail(f"streams={streams}: incremental re-rated more flows "
                        f"({inc['flows_rerated']}) than full ({full['flows_rerated']})")

    for arm in ARMS:
        prev = 0.0
        for streams in sorted(by_streams):
            mk = by_streams[streams][arm]["makespan_s"]
            if mk <= prev:
                return fail(f"{arm}: makespan not growing at {streams} streams "
                            f"({prev:.1f} -> {mk:.1f})")
            prev = mk

    counts = sorted(by_streams)
    print(f"check_storage_bench: OK ({len(points)} points, streams {counts[0]}..{counts[-1]}, "
          f"maxmin solvers byte-identical at every point)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
