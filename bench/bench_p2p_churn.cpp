// Experiment E16 — million-peer P2P overlays under lifetime-model churn.
//
// The seed kept Chord's ring in a std::map<ChordId, PeerIndex>, per-peer
// state in AoS structs with per-peer heap vectors, and Gnutella's query
// state in a std::map + std::set + std::string stack — every lookup hop
// and flood message paid pointer-chasing and allocator traffic. The
// rewrite packs peer state into flat SoA arrays, replaces the ring map
// with a radix-bucketed RingIndex, recycles lookup/query slots through
// generation-counted pools, and keeps every hot-path event capture inside
// the engine's 48-byte inline EventFn buffer.
//
// This bench quantifies each layer against a faithful in-file transcription
// of the seed implementation (RefChord / RefGnutella):
//   * resolve[]    — key -> responsible-peer resolution (RingIndex
//                    successor vs map lower_bound), the data-structure
//                    primitive under every hop, join and finger refresh.
//                    This is where the map hurts: ~16x at 1M peers.
//   * throughput[] — end-to-end simulated lookup/search throughput, both
//                    impls under the same engine + ZoneTree routing. The
//                    shared event-queue + routing cost puts a floor under
//                    both, so the honest end-to-end gap is modest; the
//                    self-check is that hops/messages/results are
//                    IDENTICAL (the rewrite changes speed, not behavior).
//   * diff_trace   — a 512-peer protocol-mode churn scenario run on both
//                    impls with a trace hook hashing every executed
//                    (time, event-id) pair: byte-identical schedules.
//   * hash_points  — the same churn scenario across all five event-queue
//                    kinds: state digests and trace hashes must agree.
//   * churn[]      — the E16 study: failure rate / hop count / latency
//                    degradation as mean session lifetime shrinks.
//   * million      — 1M live peers in protocol mode under churn on the
//                    ladder queue, >= 1e6 pending events; --small skips it.
// Results go to BENCH_p2p.json for tools/check_p2p_bench.py. The bench
// exits non-zero if any self-check fails.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/process.hpp"
#include "core/rng.hpp"
#include "net/zone.hpp"
#include "p2p/churn.hpp"
#include "p2p/ring_index.hpp"
#include "util/strings.hpp"

namespace core = lsds::core;
namespace net = lsds::net;
namespace p2p = lsds::p2p;

namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

double rss_mb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // ru_maxrss is KiB on Linux
}

using Clock = std::chrono::steady_clock;
double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Deterministic draw stream (splitmix-style): identical keys and origins
// for both implementations without touching the engine's rng streams.
std::uint64_t splitmix(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4b96fULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// --- platform --------------------------------------------------------------

struct Platform {
  net::ZoneTree tree;
  std::unique_ptr<net::ZoneRouting> routing;
};

void build_platform(Platform& p, std::size_t peers, std::size_t sites) {
  const std::size_t base = peers / sites, extra = peers % sites;
  for (std::size_t s = 0; s < sites; ++s) {
    net::ClusterSpec spec;
    spec.hosts = base + (s < extra ? 1 : 0);
    spec.host_bandwidth = 1e8;
    spec.host_latency = 5e-3;
    spec.backbone_bandwidth = 1e10;
    spec.backbone_latency = 2e-2;
    p.tree.add_child(std::make_unique<net::ClusterZone>(spec), 1e10, 2e-2);
  }
  p.routing = std::make_unique<net::ZoneRouting>(p.tree);
}

// --- RefChord: faithful transcription of the seed implementation -----------
//
// std::map ring, AoS peers with per-peer finger vectors, std::function
// callbacks boxed into heap EventFn captures per hop, coroutine-based
// maintenance. Kept verbatim (plus the accessors the drivers need) so the
// A/B measures the data-structure change and nothing else.
class RefChord {
 public:
  using ChordId = p2p::ChordId;
  using PeerIndex = p2p::PeerIndex;

  RefChord(core::Engine& engine, net::RouteProvider& routing, std::uint32_t m = 32)
      : engine_(engine), routing_(routing), m_(m) {
    mask_ = (ChordId{1} << m_) - 1;
  }

  void reserve(std::size_t n) { peers_.reserve(n); }

  PeerIndex add_peer(net::NodeId node) {
    Peer p;
    p.node = node;
    const auto index = peers_.size();
    ChordId id = core::fnv1a(lsds::util::strformat("chord-peer-%zu", index)) & mask_;
    while (ring_.count(id)) id = (id + 1) & mask_;
    p.id = id;
    p.live = true;
    peers_.push_back(p);
    ring_[id] = index;
    ++live_count_;
    return index;
  }

  void remove_peer(PeerIndex peer) {
    peers_[peer].live = false;
    ring_.erase(peers_[peer].id);
    --live_count_;
  }

  void build() {
    auto successor_of = [&](ChordId key) -> PeerIndex {
      auto it = ring_.lower_bound(key);
      if (it == ring_.end()) it = ring_.begin();
      return it->second;
    };
    for (auto& [id, idx] : ring_) {
      Peer& p = peers_[idx];
      p.successor = successor_of((p.id + 1) & mask_);
      p.fingers.assign(m_, 0);
      for (std::uint32_t k = 0; k < m_; ++k) {
        const ChordId start = (p.id + (ChordId{1} << k)) & mask_;
        p.fingers[k] = successor_of(start);
      }
    }
  }

  void enable_protocol_mode(double stabilize_period, double horizon) {
    protocol_mode_ = true;
    stabilize_period_ = stabilize_period;
    horizon_ = horizon;
    for (auto& [id, idx] : ring_) refresh_succ_list(idx);
    for (auto& [id, idx] : ring_) peers_[peers_[idx].successor].predecessor = idx;
    for (auto& [id, idx] : ring_) maintenance_loop(engine_, idx, stabilize_period, horizon);
  }

  void fail_peer(PeerIndex peer) {
    peers_[peer].live = false;
    ring_.erase(peers_[peer].id);
    --live_count_;
  }

  PeerIndex join_via(net::NodeId node, PeerIndex bootstrap) {
    const PeerIndex newcomer = add_peer(node);
    Peer& p = peers_[newcomer];
    p.fingers.assign(m_, bootstrap);
    p.succ_list.clear();
    p.predecessor = kNoPeer;
    p.successor = bootstrap;
    ++messages_;
    lookup(bootstrap, (p.id + 1) & mask_, [this, newcomer](const LookupResult& r) {
      if (!r.ok) return;
      peers_[newcomer].successor = r.home;
      refresh_succ_list(newcomer);
    });
    if (protocol_mode_) maintenance_loop(engine_, newcomer, stabilize_period_, horizon_);
    return newcomer;
  }

  struct LookupResult {
    bool ok = false;
    PeerIndex home = 0;
    std::size_t hops = 0;
    double latency = 0;
  };
  using LookupFn = std::function<void(const LookupResult&)>;

  void lookup(PeerIndex origin, ChordId key, LookupFn done) {
    forward(origin, origin, key, 0, engine_.now(), std::move(done));
  }

  PeerIndex responsible_peer(ChordId key) const {
    auto it = ring_.lower_bound(key);
    if (it == ring_.end()) it = ring_.begin();
    return it->second;
  }

  PeerIndex random_live_peer(core::RngStream& rng) const {
    auto it = ring_.lower_bound(rng.next_u64() & mask_);
    if (it == ring_.end()) it = ring_.begin();
    return it->second;
  }

  std::size_t size() const { return live_count_; }
  net::NodeId node_of(PeerIndex peer) const { return peers_[peer].node; }
  ChordId id_mask() const { return mask_; }
  std::uint64_t messages_sent() const { return messages_; }
  std::uint64_t stabilize_rounds() const { return stabilize_rounds_; }

 private:
  struct Peer {
    net::NodeId node = net::kInvalidNode;
    ChordId id = 0;
    bool live = false;
    PeerIndex successor = 0;
    PeerIndex predecessor = kNoPeer;
    std::vector<PeerIndex> succ_list;
    std::vector<PeerIndex> fingers;
    std::uint32_t next_finger = 0;
  };
  static constexpr PeerIndex kNoPeer = static_cast<PeerIndex>(-1);

  bool in_arc(ChordId x, ChordId a, ChordId b) const {
    if (a == b) return true;
    if (a < b) return x > a && x <= b;
    return x > a || x <= b;
  }

  PeerIndex closest_preceding(PeerIndex from, ChordId key) const {
    const Peer& p = peers_[from];
    for (std::size_t k = p.fingers.size(); k-- > 0;) {
      const PeerIndex f = p.fingers[k];
      if (!peers_[f].live || f == from) continue;
      if (in_arc(peers_[f].id, p.id, (key - 1) & mask_) && peers_[f].id != key) return f;
    }
    return p.successor;
  }

  double link_latency(PeerIndex a, PeerIndex b) {
    if (a == b) return 0;
    const auto& route = routing_.route(peers_[a].node, peers_[b].node);
    return route.valid ? route.total_latency : 0.001;
  }

  void refresh_succ_list(PeerIndex self) {
    Peer& p = peers_[self];
    p.succ_list.clear();
    PeerIndex cur = p.successor;
    for (int i = 0; i < 3; ++i) {
      if (cur == self || !peers_[cur].live) break;
      p.succ_list.push_back(cur);
      cur = peers_[cur].successor;
    }
  }

  void stabilize(PeerIndex self) {
    Peer& p = peers_[self];
    ++stabilize_rounds_;
    if (!peers_[p.successor].live || p.successor == self) {
      PeerIndex replacement = self;
      for (PeerIndex s : p.succ_list) {
        if (peers_[s].live && s != self) {
          replacement = s;
          break;
        }
      }
      if (replacement == self) {
        for (PeerIndex f : p.fingers) {
          if (peers_[f].live && f != self) {
            replacement = f;
            break;
          }
        }
      }
      p.successor = replacement;
    }
    if (p.successor == self) return;
    Peer& succ = peers_[p.successor];
    const PeerIndex x = succ.predecessor;
    if (x != kNoPeer && peers_[x].live && x != self &&
        in_arc(peers_[x].id, p.id, (succ.id + mask_) & mask_)) {
      p.successor = x;
    }
    Peer& new_succ = peers_[p.successor];
    const PeerIndex cur_pred = new_succ.predecessor;
    if (cur_pred == kNoPeer || !peers_[cur_pred].live ||
        in_arc(p.id, peers_[cur_pred].id, (new_succ.id + mask_) & mask_)) {
      new_succ.predecessor = self;
    }
    refresh_succ_list(self);
    messages_ += 2;
  }

  void fix_one_finger(PeerIndex self) {
    Peer& p = peers_[self];
    const std::uint32_t k = p.next_finger;
    p.next_finger = (p.next_finger + 1) % m_;
    const ChordId start = (p.id + (ChordId{1} << k)) & mask_;
    lookup(self, start, [this, self, k](const LookupResult& r) {
      if (r.ok && peers_[self].live) peers_[self].fingers[k] = r.home;
    });
  }

  core::Process maintenance_loop(core::Engine& eng, PeerIndex self, double period,
                                 double horizon) {
    auto& rng = eng.rng("chord.maintenance");
    co_await core::delay(eng, rng.uniform(0, period));
    while (eng.now() < horizon && peers_[self].live) {
      co_await core::delay(eng, 2.0 * link_latency(self, peers_[self].successor));
      if (!peers_[self].live) co_return;
      stabilize(self);
      fix_one_finger(self);
      co_await core::delay(eng, period);
    }
  }

  void forward(PeerIndex origin, PeerIndex current, ChordId key, std::size_t hops,
               double started, LookupFn done) {
    if (!peers_[current].live) {
      LookupResult res;
      res.ok = false;
      res.hops = hops;
      res.latency = engine_.now() - started;
      done(res);
      return;
    }
    const Peer& p = peers_[current];
    const Peer& succ = peers_[p.successor];
    if (in_arc(key, p.id, succ.id)) {
      const double back = link_latency(current, origin);
      ++messages_;
      const PeerIndex home = p.successor;
      engine_.schedule_in(back, [this, done = std::move(done), home, hops, started] {
        LookupResult res;
        res.ok = true;
        res.home = home;
        res.hops = hops;
        res.latency = engine_.now() - started;
        done(res);
      });
      return;
    }
    if (in_arc(key, (p.id + mask_) & mask_, p.id) || p.id == key) {
      LookupResult res;
      res.ok = true;
      res.home = current;
      res.hops = hops;
      res.latency = engine_.now() - started;
      done(res);
      return;
    }
    const PeerIndex next = closest_preceding(current, key);
    const double lat = link_latency(current, next);
    ++messages_;
    engine_.schedule_in(lat, [this, origin, next, key, hops, started,
                              done = std::move(done)]() mutable {
      forward(origin, next, key, hops + 1, started, std::move(done));
    });
  }

  core::Engine& engine_;
  net::RouteProvider& routing_;
  std::uint32_t m_;
  ChordId mask_ = 0;
  std::vector<Peer> peers_;
  std::map<ChordId, PeerIndex> ring_;
  std::size_t live_count_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t stabilize_rounds_ = 0;
  bool protocol_mode_ = false;
  double stabilize_period_ = 1.0;
  double horizon_ = 0;
};

// --- RefGnutella: seed flooding search (map query table, set visit
// tracker, string object names) ---------------------------------------------
class RefGnutella {
 public:
  using PeerIndex = std::size_t;

  RefGnutella(core::Engine& engine, net::RouteProvider& routing)
      : engine_(engine), routing_(routing) {}

  void reserve(std::size_t n) { peers_.reserve(n); }

  PeerIndex add_peer(net::NodeId node) {
    peers_.push_back(Peer{node, {}, {}});
    return peers_.size() - 1;
  }

  void build_random_overlay(std::size_t degree, core::RngStream& rng) {
    const std::size_t n = peers_.size();
    degree = std::min(degree, n - 1);
    for (PeerIndex p = 0; p < n; ++p) {
      while (peers_[p].neighbors.size() < degree) {
        auto q = static_cast<PeerIndex>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
        if (q >= p) ++q;
        auto& np = peers_[p].neighbors;
        if (std::find(np.begin(), np.end(), q) != np.end()) continue;
        np.push_back(q);
        peers_[q].neighbors.push_back(p);
      }
    }
  }

  void place_object(PeerIndex peer, const std::string& name) { peers_[peer].objects.insert(name); }

  struct SearchResult {
    bool found = false;
    PeerIndex holder = 0;
    std::size_t hops = 0;
    std::size_t messages = 0;
    double latency = 0;
  };
  using SearchFn = std::function<void(const SearchResult&)>;

  void search(PeerIndex origin, const std::string& name, std::size_t ttl, SearchFn done) {
    const std::uint64_t qid = next_query_++;
    Query& q = queries_[qid];
    q.name = name;
    q.origin = origin;
    q.started = engine_.now();
    q.done = std::move(done);
    q.in_flight = 1;
    deliver(qid, origin, ttl, 0);
  }

 private:
  struct Peer {
    net::NodeId node;
    std::vector<PeerIndex> neighbors;
    std::set<std::string> objects;
  };
  struct Query {
    std::string name;
    PeerIndex origin = 0;
    double started = 0;
    SearchFn done;
    SearchResult result;
    std::set<PeerIndex> visited;
    std::size_t in_flight = 0;
  };

  double link_latency(PeerIndex a, PeerIndex b) {
    if (a == b) return 0;
    const auto& route = routing_.route(peers_[a].node, peers_[b].node);
    return route.valid ? route.total_latency : 0.001;
  }

  void deliver(std::uint64_t query_id, PeerIndex at, std::size_t ttl, std::size_t hops) {
    auto it = queries_.find(query_id);
    if (it == queries_.end()) return;
    Query& q = it->second;
    --q.in_flight;
    const bool first_visit = q.visited.insert(at).second;
    if (first_visit && peers_[at].objects.count(q.name) && !q.result.found) {
      q.result.found = true;
      q.result.holder = at;
      q.result.hops = hops;
      q.result.latency = (engine_.now() - q.started) + link_latency(at, q.origin);
    }
    if (first_visit && ttl > 0) {
      for (PeerIndex nb : peers_[at].neighbors) {
        if (q.visited.count(nb)) continue;
        ++q.result.messages;
        ++q.in_flight;
        const double lat = link_latency(at, nb);
        engine_.schedule_in(lat, [this, query_id, nb, ttl, hops] {
          deliver(query_id, nb, ttl - 1, hops + 1);
        });
      }
    }
    finish_if_drained(query_id);
  }

  void finish_if_drained(std::uint64_t query_id) {
    auto it = queries_.find(query_id);
    if (it == queries_.end() || it->second.in_flight > 0) return;
    Query q = std::move(it->second);
    queries_.erase(it);
    q.done(q.result);
  }

  core::Engine& engine_;
  net::RouteProvider& routing_;
  std::vector<Peer> peers_;
  std::map<std::uint64_t, Query> queries_;
  std::uint64_t next_query_ = 0;
};

// --- section: key resolution ------------------------------------------------

struct ResolvePoint {
  std::size_t peers = 0, queries = 0;
  double flat_ms = 0, map_ms = 0;
  bool match = false;
  double speedup() const { return flat_ms > 0 ? map_ms / flat_ms : 0; }
};

ResolvePoint run_resolve(std::size_t peers, std::size_t queries) {
  ResolvePoint pt;
  pt.peers = peers;
  pt.queries = queries;
  const std::uint64_t mask = (p2p::ChordId{1} << 32) - 1;

  // Seed id derivation: the same population lands in both structures.
  std::map<std::uint64_t, std::uint32_t> ring_map;
  p2p::RingIndex ring(32);
  for (std::size_t i = 0; i < peers; ++i) {
    std::uint64_t id = core::fnv1a(lsds::util::strformat("chord-peer-%zu", i)) & mask;
    while (ring_map.count(id)) id = (id + 1) & mask;
    ring_map[id] = static_cast<std::uint32_t>(i);
    ring.insert(id, static_cast<std::uint32_t>(i));
  }

  std::uint64_t s = 0x42, acc_flat = 0, acc_map = 0;
  auto t0 = Clock::now();
  for (std::size_t i = 0; i < queries; ++i) acc_flat += ring.successor(splitmix(s) & mask).slot;
  pt.flat_ms = ms_since(t0);

  s = 0x42;
  t0 = Clock::now();
  for (std::size_t i = 0; i < queries; ++i) {
    auto it = ring_map.lower_bound(splitmix(s) & mask);
    if (it == ring_map.end()) it = ring_map.begin();
    acc_map += it->second;
  }
  pt.map_ms = ms_since(t0);
  pt.match = acc_flat == acc_map;
  return pt;
}

// --- section: end-to-end throughput ----------------------------------------

struct ThroughputPoint {
  const char* overlay = "chord";
  const char* impl = "flat";
  std::size_t peers = 0, ops = 0;
  double build_ms = 0, wall_ms = 0;
  std::uint64_t ok = 0, hops_total = 0, messages = 0;
  std::uint64_t digest = 0;
  double ops_per_s() const { return wall_ms > 0 ? ops / (wall_ms / 1000.0) : 0; }
};

struct ChordTally {
  std::uint64_t ok = 0, fail = 0, hops = 0;
};

void chord_tally(void* user, std::uint64_t, const p2p::ChordNetwork::LookupResult& r) {
  auto* t = static_cast<ChordTally*>(user);
  if (r.ok) {
    ++t->ok;
    t->hops += r.hops;
  } else {
    ++t->fail;
  }
}

ThroughputPoint run_chord_flat(std::size_t peers, std::size_t lookups) {
  ThroughputPoint pt;
  pt.impl = "flat";
  pt.peers = peers;
  pt.ops = lookups;
  Platform plat;
  build_platform(plat, peers, 32);
  core::Engine eng({.queue = core::QueueKind::kLadderQueue, .seed = 11});
  auto t0 = Clock::now();
  p2p::ChordNetwork chord(eng, *plat.routing, 32);
  chord.reserve(peers);
  for (std::size_t i = 0; i < peers; ++i) chord.add_peer(plat.tree.host(i));
  chord.build();
  pt.build_ms = ms_since(t0);
  ChordTally tally;
  chord.set_lookup_handler(&chord_tally, &tally);
  std::uint64_t s = 0x1234;
  t0 = Clock::now();
  for (std::size_t i = 0; i < lookups; ++i) {
    const std::uint64_t u = splitmix(s);
    chord.lookup_tagged(u % peers, splitmix(s) & chord.id_mask(), i);
  }
  eng.run();
  pt.wall_ms = ms_since(t0);
  pt.ok = tally.ok;
  pt.hops_total = tally.hops;
  pt.messages = chord.messages_sent();
  pt.digest = chord.state_digest();
  return pt;
}

ThroughputPoint run_chord_map(std::size_t peers, std::size_t lookups) {
  ThroughputPoint pt;
  pt.impl = "map";
  pt.peers = peers;
  pt.ops = lookups;
  Platform plat;
  build_platform(plat, peers, 32);
  core::Engine eng({.queue = core::QueueKind::kLadderQueue, .seed = 11});
  auto t0 = Clock::now();
  RefChord chord(eng, *plat.routing, 32);
  chord.reserve(peers);
  for (std::size_t i = 0; i < peers; ++i) chord.add_peer(plat.tree.host(i));
  chord.build();
  pt.build_ms = ms_since(t0);
  ChordTally tally;
  std::uint64_t s = 0x1234;
  t0 = Clock::now();
  for (std::size_t i = 0; i < lookups; ++i) {
    const std::uint64_t u = splitmix(s);
    chord.lookup(u % peers, splitmix(s) & chord.id_mask(),
                 [&tally](const RefChord::LookupResult& r) {
                   if (r.ok) {
                     ++tally.ok;
                     tally.hops += r.hops;
                   } else {
                     ++tally.fail;
                   }
                 });
  }
  eng.run();
  pt.wall_ms = ms_since(t0);
  pt.ok = tally.ok;
  pt.hops_total = tally.hops;
  pt.messages = chord.messages_sent();
  return pt;
}

struct GnutellaTally {
  std::uint64_t found = 0, missed = 0, messages = 0, hops = 0;
};

void gnutella_tally(void* user, std::uint64_t, const p2p::GnutellaNetwork::SearchResult& r) {
  auto* t = static_cast<GnutellaTally*>(user);
  if (r.found) {
    ++t->found;
    t->hops += r.hops;
  } else {
    ++t->missed;
  }
  t->messages += r.messages;
}

constexpr std::size_t kGnutellaDegree = 6;
constexpr std::size_t kGnutellaTtl = 5;
constexpr std::size_t kGnutellaObjects = 512;

ThroughputPoint run_gnutella_flat(std::size_t peers, std::size_t searches) {
  ThroughputPoint pt;
  pt.overlay = "gnutella";
  pt.impl = "flat";
  pt.peers = peers;
  pt.ops = searches;
  Platform plat;
  build_platform(plat, peers, 32);
  core::Engine eng({.queue = core::QueueKind::kLadderQueue, .seed = 11});
  auto t0 = Clock::now();
  p2p::GnutellaNetwork gnet(eng, *plat.routing);
  gnet.reserve(peers);
  for (std::size_t i = 0; i < peers; ++i) gnet.add_peer(plat.tree.host(i));
  gnet.build_random_overlay(kGnutellaDegree, eng.rng("bench.overlay"));
  pt.build_ms = ms_since(t0);
  std::uint64_t s = 0x77;
  std::vector<std::uint64_t> catalog;
  for (std::size_t i = 0; i < kGnutellaObjects; ++i) {
    const std::string name = "obj-" + std::to_string(i);
    gnet.place_object(splitmix(s) % peers, name);
    catalog.push_back(p2p::GnutellaNetwork::hash_name(name));
  }
  GnutellaTally tally;
  gnet.set_search_handler(&gnutella_tally, &tally);
  t0 = Clock::now();
  for (std::size_t i = 0; i < searches; ++i) {
    const std::size_t origin = splitmix(s) % peers;
    gnet.search_tagged(origin, catalog[splitmix(s) % kGnutellaObjects], kGnutellaTtl, i);
  }
  eng.run();
  pt.wall_ms = ms_since(t0);
  pt.ok = tally.found;
  pt.hops_total = tally.hops;
  pt.messages = tally.messages;
  pt.digest = gnet.state_digest();
  return pt;
}

ThroughputPoint run_gnutella_map(std::size_t peers, std::size_t searches) {
  ThroughputPoint pt;
  pt.overlay = "gnutella";
  pt.impl = "map";
  pt.peers = peers;
  pt.ops = searches;
  Platform plat;
  build_platform(plat, peers, 32);
  core::Engine eng({.queue = core::QueueKind::kLadderQueue, .seed = 11});
  auto t0 = Clock::now();
  RefGnutella gnet(eng, *plat.routing);
  gnet.reserve(peers);
  for (std::size_t i = 0; i < peers; ++i) gnet.add_peer(plat.tree.host(i));
  gnet.build_random_overlay(kGnutellaDegree, eng.rng("bench.overlay"));
  pt.build_ms = ms_since(t0);
  std::uint64_t s = 0x77;
  std::vector<std::string> catalog;
  for (std::size_t i = 0; i < kGnutellaObjects; ++i) {
    const std::string name = "obj-" + std::to_string(i);
    gnet.place_object(splitmix(s) % peers, name);
    catalog.push_back(name);
  }
  GnutellaTally tally;
  t0 = Clock::now();
  for (std::size_t i = 0; i < searches; ++i) {
    const std::size_t origin = splitmix(s) % peers;
    gnet.search(origin, catalog[splitmix(s) % kGnutellaObjects], kGnutellaTtl,
                [&tally](const RefGnutella::SearchResult& r) {
                  if (r.found) {
                    ++tally.found;
                    tally.hops += r.hops;
                  } else {
                    ++tally.missed;
                  }
                  tally.messages += r.messages;
                });
  }
  eng.run();
  pt.wall_ms = ms_since(t0);
  pt.ok = tally.found;
  pt.hops_total = tally.hops;
  pt.messages = tally.messages;
  return pt;
}

// --- section: differential trace (seed vs rewrite, same scenario) ----------

struct DiffOut {
  std::uint64_t trace = 0, executed = 0, messages = 0, ok = 0, fail = 0;
  std::size_t live = 0;
};

// Protocol-mode churn + lookups, scripted only through API both impls
// share. Every rng draw happens in event order, so if the schedules are
// byte-identical the draws are too — the trace hash seals both.
template <class Net>
DiffOut run_diff_scenario(std::vector<std::pair<double, std::uint64_t>>* seq = nullptr) {
  constexpr std::size_t kPeers = 512;
  Platform plat;
  build_platform(plat, kPeers, 4);
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 77});
  DiffOut out;
  std::uint64_t trace = 1469598103934665603ULL;
  eng.set_trace_hook([&trace, seq](double t, core::EventId id) {
    trace = fnv1a(trace, bits(t));
    trace = fnv1a(trace, std::uint64_t{id});
    if (seq) seq->emplace_back(t, id);
  });

  Net net(eng, *plat.routing, 32);
  net.reserve(kPeers);
  for (std::size_t i = 0; i < kPeers; ++i) net.add_peer(plat.tree.host(i));
  net.build();
  net.enable_protocol_mode(2.0, 16.0);

  auto& arrival = eng.rng("bench.diff.arrival");
  auto& origin_rng = eng.rng("bench.diff.origin");
  auto& key_rng = eng.rng("bench.diff.key");
  double t = 0;
  for (int i = 0; i < 600; ++i) {
    t += arrival.exponential(0.02);
    if (t >= 16.0) break;
    eng.schedule_at(t, [&net, &origin_rng, &key_rng, &out] {
      const auto origin = net.random_live_peer(origin_rng);
      const auto key = key_rng.next_u64() & net.id_mask();
      net.lookup(origin, key, [&out](const typename Net::LookupResult& r) {
        if (r.ok) {
          ++out.ok;
        } else {
          ++out.fail;
        }
      });
    });
  }

  auto& churn_rng = eng.rng("bench.diff.churn");
  for (int j = 0; j < 48; ++j) {
    eng.schedule_at(1.0 + 0.25 * j, [&net, &eng, &churn_rng] {
      if (net.size() <= 8) return;
      const auto victim = net.random_live_peer(churn_rng);
      const auto node = net.node_of(victim);
      net.fail_peer(victim);
      eng.schedule_in(1.5, [&net, &churn_rng, node] {
        if (net.size() == 0) return;
        net.join_via(node, net.random_live_peer(churn_rng));
      });
    });
  }

  eng.run();
  out.trace = trace;
  out.executed = eng.stats().executed;
  out.messages = net.messages_sent();
  out.live = net.size();
  return out;
}

// --- section: cross-queue-kind hash equality --------------------------------

struct HashPoint {
  const char* queue = "";
  std::uint64_t digest = 0, trace = 0, issued = 0, deaths = 0;
};

HashPoint run_hash_point(core::QueueKind kind) {
  constexpr std::size_t kPeers = 2000;
  Platform plat;
  build_platform(plat, kPeers, 8);
  core::Engine eng({.queue = kind, .seed = 42});
  HashPoint pt;
  pt.queue = core::to_string(kind);
  std::uint64_t trace = 1469598103934665603ULL;
  eng.set_trace_hook([&trace](double t, core::EventId id) {
    trace = fnv1a(trace, bits(t));
    trace = fnv1a(trace, std::uint64_t{id});
  });

  p2p::ChordNetwork chord(eng, *plat.routing, 32);
  chord.reserve(kPeers);
  for (std::size_t i = 0; i < kPeers; ++i) chord.add_peer(plat.tree.host(i));
  chord.build();
  chord.enable_protocol_mode(5.0, 30.0);

  p2p::TrafficSpec tspec;
  tspec.rate = 200;
  tspec.horizon = 30;
  p2p::ChurnSpec cspec;
  cspec.lifetime_model = p2p::ChurnSpec::Lifetime::kExponential;
  cspec.mean_lifetime = 60;
  cspec.mean_downtime = 10;
  cspec.horizon = 30;

  p2p::ChordLookupTraffic gen(eng, chord, tspec);
  p2p::ChordChurn churner(eng, chord, cspec);
  churner.start();
  gen.start();
  eng.run();

  pt.digest = chord.state_digest();
  pt.trace = trace;
  pt.issued = gen.issued();
  pt.deaths = churner.deaths();
  return pt;
}

// --- section: churn study (E16) ---------------------------------------------

struct ChurnPoint {
  std::size_t peers = 0;
  double mean_lifetime = 0;  // 0 = no churn
  std::uint64_t issued = 0, ok = 0, deaths = 0, rebirths = 0, events = 0;
  double failure_rate = 0, mean_hops = 0, mean_latency = 0, wall_ms = 0;
  std::size_t live = 0, peak_pending = 0;
  double events_per_s() const {
    return wall_ms > 0 ? static_cast<double>(events) / (wall_ms / 1000.0) : 0;
  }
};

ChurnPoint run_churn_point(std::size_t peers, double mean_lifetime, double rate) {
  constexpr double kHorizon = 60.0, kPeriod = 10.0, kDowntime = 20.0;
  ChurnPoint pt;
  pt.peers = peers;
  pt.mean_lifetime = mean_lifetime;
  Platform plat;
  build_platform(plat, peers, 32);
  core::Engine eng({.queue = core::QueueKind::kLadderQueue, .seed = 7});

  p2p::ChordNetwork chord(eng, *plat.routing, 32);
  chord.reserve(peers);
  for (std::size_t i = 0; i < peers; ++i) chord.add_peer(plat.tree.host(i));
  chord.build();
  chord.enable_protocol_mode(kPeriod, kHorizon);

  p2p::TrafficSpec tspec;
  tspec.rate = rate;
  tspec.horizon = kHorizon;
  p2p::ChordLookupTraffic gen(eng, chord, tspec);
  std::unique_ptr<p2p::ChordChurn> churner;
  if (mean_lifetime > 0) {
    p2p::ChurnSpec cspec;
    cspec.lifetime_model = p2p::ChurnSpec::Lifetime::kExponential;
    cspec.mean_lifetime = mean_lifetime;
    cspec.mean_downtime = kDowntime;
    cspec.horizon = kHorizon;
    churner = std::make_unique<p2p::ChordChurn>(eng, chord, cspec);
    churner->start();
  }
  gen.start();
  auto t0 = Clock::now();
  eng.run();
  pt.wall_ms = ms_since(t0);

  pt.issued = gen.issued();
  pt.ok = gen.succeeded();
  pt.failure_rate = gen.failure_rate();
  pt.mean_hops = gen.hops().mean();
  pt.mean_latency = gen.latency().mean();
  pt.deaths = churner ? churner->deaths() : 0;
  pt.rebirths = churner ? churner->rebirths() : 0;
  pt.events = eng.stats().executed;
  pt.live = chord.size();
  pt.peak_pending = gen.peak_pending();
  return pt;
}

// --- section: the million-peer run ------------------------------------------

struct MillionOut {
  std::size_t peers = 0, live = 0, peak_pending = 0;
  std::uint64_t events = 0, issued = 0, deaths = 0, rebirths = 0;
  double build_ms = 0, wall_ms = 0, failure_rate = 0, mean_hops = 0, rss = 0;
  std::uint64_t digest = 0;
  double events_per_s() const {
    return wall_ms > 0 ? static_cast<double>(events) / (wall_ms / 1000.0) : 0;
  }
};

MillionOut run_million() {
  constexpr std::size_t kPeers = 1000000;
  constexpr double kHorizon = 30.0, kPeriod = 15.0;
  MillionOut out;
  out.peers = kPeers;
  Platform plat;
  build_platform(plat, kPeers, 64);
  core::Engine eng({.queue = core::QueueKind::kLadderQueue, .seed = 9});

  auto t0 = Clock::now();
  p2p::ChordNetwork chord(eng, *plat.routing, 32);
  chord.reserve(kPeers);
  for (std::size_t i = 0; i < kPeers; ++i) chord.add_peer(plat.tree.host(i));
  chord.build();
  chord.enable_protocol_mode(kPeriod, kHorizon);
  out.build_ms = ms_since(t0);

  p2p::TrafficSpec tspec;
  tspec.rate = 2000;
  tspec.horizon = kHorizon;
  p2p::ChurnSpec cspec;
  cspec.lifetime_model = p2p::ChurnSpec::Lifetime::kExponential;
  cspec.mean_lifetime = 600;
  cspec.mean_downtime = 30;
  cspec.horizon = kHorizon;

  p2p::ChordLookupTraffic gen(eng, chord, tspec);
  p2p::ChordChurn churner(eng, chord, cspec);
  churner.start();
  gen.start();
  // One maintenance timer and one death timer per live peer are already
  // queued, so the ladder carries >= 2e6 pending events before t=0.
  out.peak_pending = eng.pending();

  t0 = Clock::now();
  eng.run();
  out.wall_ms = ms_since(t0);

  out.peak_pending = std::max(out.peak_pending, gen.peak_pending());
  out.live = chord.size();
  out.events = eng.stats().executed;
  out.issued = gen.issued();
  out.deaths = churner.deaths();
  out.rebirths = churner.rebirths();
  out.failure_rate = gen.failure_rate();
  out.mean_hops = gen.hops().mean();
  out.digest = chord.state_digest();
  out.rss = rss_mb();
  return out;
}

// --- output -----------------------------------------------------------------

void emit_json(const char* path, bool small, const std::vector<ResolvePoint>& resolve,
               const std::vector<ThroughputPoint>& tp, const DiffOut& diff_flat,
               const DiffOut& diff_map, bool diff_identical,
               const std::vector<HashPoint>& hashes, bool hash_equal, bool deterministic,
               const std::vector<ChurnPoint>& churn, const MillionOut* million) {
  FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"p2p_churn\",\n  \"small\": %s,\n",
               small ? "true" : "false");

  std::fprintf(f, "  \"resolve\": [\n");
  for (std::size_t i = 0; i < resolve.size(); ++i) {
    const auto& r = resolve[i];
    std::fprintf(f,
                 "    {\"peers\": %zu, \"queries\": %zu, \"flat_ms\": %.3f, \"map_ms\": %.3f, "
                 "\"speedup\": %.2f, \"match\": %s}%s\n",
                 r.peers, r.queries, r.flat_ms, r.map_ms, r.speedup(),
                 r.match ? "true" : "false", i + 1 < resolve.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  std::fprintf(f, "  \"throughput\": [\n");
  for (std::size_t i = 0; i < tp.size(); ++i) {
    const auto& p = tp[i];
    std::fprintf(f,
                 "    {\"overlay\": \"%s\", \"impl\": \"%s\", \"peers\": %zu, \"ops\": %zu, "
                 "\"build_ms\": %.1f, \"wall_ms\": %.1f, \"ops_per_s\": %.1f, \"ok\": %" PRIu64
                 ", \"hops_total\": %" PRIu64 ", \"messages\": %" PRIu64 "}%s\n",
                 p.overlay, p.impl, p.peers, p.ops, p.build_ms, p.wall_ms, p.ops_per_s(), p.ok,
                 p.hops_total, p.messages, i + 1 < tp.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  std::fprintf(f,
               "  \"diff_trace\": {\"peers\": 512, \"trace_flat\": \"%016" PRIx64
               "\", \"trace_map\": \"%016" PRIx64 "\", \"executed\": %" PRIu64
               ", \"lookups_ok\": %" PRIu64 ", \"lookups_failed\": %" PRIu64
               ", \"identical\": %s},\n",
               diff_flat.trace, diff_map.trace, diff_flat.executed, diff_flat.ok, diff_flat.fail,
               diff_identical ? "true" : "false");

  std::fprintf(f, "  \"hash_points\": [\n");
  for (std::size_t i = 0; i < hashes.size(); ++i) {
    const auto& h = hashes[i];
    std::fprintf(f,
                 "    {\"queue\": \"%s\", \"digest\": \"%016" PRIx64 "\", \"trace\": \"%016" PRIx64
                 "\", \"issued\": %" PRIu64 ", \"deaths\": %" PRIu64 "}%s\n",
                 h.queue, h.digest, h.trace, h.issued, h.deaths,
                 i + 1 < hashes.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"hash_equal\": %s,\n  \"deterministic\": %s,\n",
               hash_equal ? "true" : "false", deterministic ? "true" : "false");

  std::fprintf(f, "  \"churn\": [\n");
  for (std::size_t i = 0; i < churn.size(); ++i) {
    const auto& c = churn[i];
    std::fprintf(f,
                 "    {\"peers\": %zu, \"mean_lifetime\": %.0f, \"issued\": %" PRIu64
                 ", \"failure_rate\": %.5f, \"mean_hops\": %.3f, \"mean_latency\": %.5f, "
                 "\"deaths\": %" PRIu64 ", \"rebirths\": %" PRIu64 ", \"live\": %zu, "
                 "\"events\": %" PRIu64 ", \"wall_ms\": %.1f, \"events_per_s\": %.0f, "
                 "\"peak_pending\": %zu}%s\n",
                 c.peers, c.mean_lifetime, c.issued, c.failure_rate, c.mean_hops, c.mean_latency,
                 c.deaths, c.rebirths, c.live, c.events, c.wall_ms, c.events_per_s(),
                 c.peak_pending, i + 1 < churn.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  if (million) {
    const auto& m = *million;
    std::fprintf(f,
                 "  \"million\": {\"peers\": %zu, \"live\": %zu, \"peak_pending\": %zu, "
                 "\"events\": %" PRIu64 ", \"issued\": %" PRIu64 ", \"deaths\": %" PRIu64
                 ", \"rebirths\": %" PRIu64 ", \"build_ms\": %.0f, \"wall_ms\": %.0f, "
                 "\"events_per_s\": %.0f, \"failure_rate\": %.5f, \"mean_hops\": %.3f, "
                 "\"digest\": \"%016" PRIx64 "\", \"rss_mb\": %.1f},\n",
                 m.peers, m.live, m.peak_pending, m.events, m.issued, m.deaths, m.rebirths,
                 m.build_ms, m.wall_ms, m.events_per_s(), m.failure_rate, m.mean_hops, m.digest,
                 m.rss);
  }
  std::fprintf(f, "  \"rss_mb\": %.1f\n}\n", rss_mb());
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false, diff_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) small = true;
    if (std::strcmp(argv[i], "--diff-only") == 0) diff_only = true;
  }
  if (diff_only) {
    // Debug aid: run just the differential scenario and report the first
    // point where the seed and rewrite schedules part ways.
    std::vector<std::pair<double, std::uint64_t>> sf, sm;
    const DiffOut a = run_diff_scenario<p2p::ChordNetwork>(&sf);
    const DiffOut b = run_diff_scenario<RefChord>(&sm);
    std::printf("flat: executed=%" PRIu64 " messages=%" PRIu64 " ok=%" PRIu64 " fail=%" PRIu64
                " live=%zu\n",
                a.executed, a.messages, a.ok, a.fail, a.live);
    std::printf("map:  executed=%" PRIu64 " messages=%" PRIu64 " ok=%" PRIu64 " fail=%" PRIu64
                " live=%zu\n",
                b.executed, b.messages, b.ok, b.fail, b.live);
    const std::size_t n = std::min(sf.size(), sm.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (sf[i] != sm[i]) {
        std::printf("first divergence at event %zu:\n", i);
        for (std::size_t j = i >= 3 ? i - 3 : 0; j < std::min(i + 4, n); ++j) {
          std::printf("  [%zu] flat t=%.9f id=%" PRIu64 "   map t=%.9f id=%" PRIu64 "\n", j,
                      sf[j].first, sf[j].second, sm[j].first, sm[j].second);
        }
        return 1;
      }
    }
    std::printf("prefixes agree for %zu events (sizes %zu vs %zu)\n", n, sf.size(), sm.size());
    return a.trace == b.trace ? 0 : 1;
  }
  bool ok = true;

  // 1. Key resolution: the primitive the ring rewrite targets.
  std::vector<ResolvePoint> resolve;
  for (std::size_t peers : {std::size_t{100000}, std::size_t{1000000}}) {
    resolve.push_back(run_resolve(peers, 2000000));
    const auto& r = resolve.back();
    std::printf("resolve %7zu peers: flat %.0f ms, map %.0f ms -> %.1fx%s\n", r.peers, r.flat_ms,
                r.map_ms, r.speedup(), r.match ? "" : "  [MISMATCH]");
    if (!r.match) {
      std::fprintf(stderr, "FAIL: resolve results differ at %zu peers\n", r.peers);
      ok = false;
    }
  }

  // 2. End-to-end throughput A/B. Behavior must be identical; speed is
  //    engine-bound, so the gate is "no regression", not a multiplier.
  std::vector<ThroughputPoint> tp;
  for (std::size_t peers : {std::size_t{10000}, std::size_t{100000}}) {
    const std::size_t lookups = 20000;
    tp.push_back(run_chord_flat(peers, lookups));
    tp.push_back(run_chord_map(peers, lookups));
    const auto& a = tp[tp.size() - 2];
    const auto& b = tp.back();
    std::printf("chord    %7zu peers: flat %.0f/s, map %.0f/s (%.2fx), hops %" PRIu64 "\n",
                peers, a.ops_per_s(), b.ops_per_s(), a.ops_per_s() / b.ops_per_s(),
                a.hops_total);
    if (a.ok != lookups || b.ok != lookups || a.hops_total != b.hops_total ||
        a.messages != b.messages) {
      std::fprintf(stderr, "FAIL: chord A/B behavior differs at %zu peers\n", peers);
      ok = false;
    }
  }
  if (!small) {
    tp.push_back(run_chord_flat(1000000, 20000));
    const auto& p = tp.back();
    std::printf("chord    %7zu peers: flat %.0f/s (map impl skipped at this scale)\n", p.peers,
                p.ops_per_s());
    if (p.ok != p.ops) {
      std::fprintf(stderr, "FAIL: chord 1M lookups lost (%" PRIu64 "/%zu ok)\n", p.ok, p.ops);
      ok = false;
    }
  }
  {
    const std::size_t peers = 100000, searches = small ? 100 : 200;
    tp.push_back(run_gnutella_flat(peers, searches));
    tp.push_back(run_gnutella_map(peers, searches));
    const auto& a = tp[tp.size() - 2];
    const auto& b = tp.back();
    std::printf("gnutella %7zu peers: flat %.1f/s, map %.1f/s (%.2fx), msgs %" PRIu64 "\n",
                peers, a.ops_per_s(), b.ops_per_s(), a.ops_per_s() / b.ops_per_s(), a.messages);
    if (a.ok != b.ok || a.hops_total != b.hops_total || a.messages != b.messages) {
      std::fprintf(stderr, "FAIL: gnutella A/B behavior differs at %zu peers\n", peers);
      ok = false;
    }
  }

  // Determinism: rerun the smallest chord point; all counters must repeat.
  bool deterministic = false;
  {
    const auto again = run_chord_flat(10000, 20000);
    for (const auto& p : tp) {
      if (p.peers == 10000 && std::strcmp(p.impl, "flat") == 0 &&
          std::strcmp(p.overlay, "chord") == 0) {
        deterministic = p.hops_total == again.hops_total && p.messages == again.messages &&
                        p.digest == again.digest;
      }
    }
    if (!deterministic) {
      std::fprintf(stderr, "FAIL: chord flat rerun diverged\n");
      ok = false;
    }
    std::printf("determinism re-pass: %s\n", deterministic ? "ok" : "DIVERGED");
  }

  // 3. Differential trace: seed impl vs rewrite, identical schedules.
  const DiffOut diff_flat = run_diff_scenario<p2p::ChordNetwork>();
  const DiffOut diff_map = run_diff_scenario<RefChord>();
  const bool diff_identical = diff_flat.trace == diff_map.trace &&
                              diff_flat.executed == diff_map.executed &&
                              diff_flat.messages == diff_map.messages &&
                              diff_flat.ok == diff_map.ok && diff_flat.fail == diff_map.fail &&
                              diff_flat.live == diff_map.live;
  std::printf("diff trace: flat %016" PRIx64 " map %016" PRIx64 " (%" PRIu64 " events) %s\n",
              diff_flat.trace, diff_map.trace, diff_flat.executed,
              diff_identical ? "identical" : "DIVERGED");
  if (!diff_identical) {
    std::fprintf(stderr, "FAIL: seed-vs-rewrite trace diverged\n");
    ok = false;
  }

  // 4. Cross-queue-kind hash equality on the churn stack.
  std::vector<HashPoint> hashes;
  bool hash_equal = true;
  for (const auto kind : core::kAllQueueKinds) {
    hashes.push_back(run_hash_point(kind));
    const auto& h = hashes.back();
    if (h.digest != hashes.front().digest || h.trace != hashes.front().trace) hash_equal = false;
    std::printf("hash %-9s digest %016" PRIx64 " trace %016" PRIx64 "\n", h.queue, h.digest,
                h.trace);
  }
  if (!hash_equal) {
    std::fprintf(stderr, "FAIL: digests differ across queue kinds\n");
    ok = false;
  }

  // 5. E16 churn study: lookup degradation vs mean session lifetime.
  std::vector<ChurnPoint> churn;
  const std::size_t churn_peers = small ? 10000 : 50000;
  const double churn_rate = small ? 100 : 500;
  for (double lifetime : {0.0, 600.0, 120.0, 30.0}) {
    churn.push_back(run_churn_point(churn_peers, lifetime, churn_rate));
    const auto& c = churn.back();
    std::printf("churn life=%4.0fs: fail %.4f, hops %.2f, latency %.4f, deaths %" PRIu64
                ", %.0f ev/s\n",
                c.mean_lifetime, c.failure_rate, c.mean_hops, c.mean_latency, c.deaths,
                c.events_per_s());
    if (c.failure_rate < 0 || c.failure_rate > 1 || c.issued == 0) {
      std::fprintf(stderr, "FAIL: churn point life=%.0f implausible\n", c.mean_lifetime);
      ok = false;
    }
  }
  if (churn.back().failure_rate < churn.front().failure_rate) {
    std::fprintf(stderr, "FAIL: heaviest churn did not raise the failure rate\n");
    ok = false;
  }

  // 6. The million-peer point (full runs only).
  MillionOut million;
  if (!small) {
    million = run_million();
    std::printf("million: %zu live of %zu, peak pending %zu, %" PRIu64
                " events in %.1f s (%.0f ev/s), fail %.4f, rss %.0f MB\n",
                million.live, million.peers, million.peak_pending, million.events,
                million.wall_ms / 1000.0, million.events_per_s(), million.failure_rate,
                million.rss);
    if (million.peak_pending < 1000000 || million.live == 0 || million.events == 0) {
      std::fprintf(stderr, "FAIL: million-peer run did not meet the E16 operating point\n");
      ok = false;
    }
  }

  emit_json("BENCH_p2p.json", small, resolve, tp, diff_flat, diff_map, diff_identical, hashes,
            hash_equal, deterministic, churn, small ? nullptr : &million);
  if (!ok) {
    std::fprintf(stderr, "bench_p2p_churn: SELF-CHECK FAILED\n");
    return 1;
  }
  std::printf("bench_p2p_churn: all self-checks passed\n");
  return 0;
}
