// Experiment E6 — replica optimization strategies (Section 4, OptorSim).
//
// "The objective of OptorSim is to investigate the stability and transient
// behavior of replication optimization methods … It provides a set of
// measurements which can be used to quantify the effectiveness of the
// optimization strategy under the considered conditions."
//
// Grid of 6 sites around a hub, all master files at a pinned storage
// element, 300 data-intensive jobs. Sweep: strategy x Zipf skew of file
// popularity. Reported: mean job time, local hit ratio, inter-site traffic,
// replications/evictions — the OptorSim result shape (caching strategies
// beat no-replication; with skewed access the economic model approaches LRU
// with far fewer replications).
#include <cstdio>

#include "core/engine.hpp"
#include "sim/optorsim/optorsim.hpp"
#include "stats/table.hpp"
#include "util/units.hpp"

namespace mw = lsds::middleware;

int main() {
  std::printf("== Experiment E6: OptorSim replication strategies ==\n");
  std::printf("6 sites, 300 jobs x 2 files, 60 x 50 MB dataset, caches hold 20%% of it\n\n");

  lsds::stats::AsciiTable t({"zipf", "strategy", "mean job time [s]", "hit ratio",
                             "network", "replications", "evictions"});
  for (double zipf : {0.0, 0.8, 1.2}) {
    for (auto policy : mw::kAllReplicationPolicies) {
      lsds::core::Engine eng({.queue = lsds::core::QueueKind::kBinaryHeap, .seed = 4242});
      lsds::sim::optorsim::Config cfg;
      cfg.num_sites = 6;
      cfg.cache_fraction = 0.2;
      cfg.policy = policy;
      cfg.workload.num_jobs = 300;
      cfg.workload.num_files = 60;
      cfg.workload.files_per_job = 2;
      cfg.workload.mean_interarrival = 1.5;
      cfg.workload.zipf_exponent = zipf;
      cfg.workload.file_bytes = {lsds::apps::SizeDist::kConstant, 50e6, 0};
      const auto r = lsds::sim::optorsim::run(eng, cfg);
      t.row()
          .cell(zipf)
          .cell(std::string(mw::to_string(policy)))
          .cell(r.mean_job_time())
          .cell(r.local_hit_ratio())
          .cell(lsds::util::format_size(r.network_bytes))
          .cell(r.replications)
          .cell(r.evictions);
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("claim check: any replication beats none on job time and traffic; under\n"
              "skewed (Zipf) access the economic optimizer replicates far more\n"
              "selectively while keeping most of the hit-ratio benefit.\n");
  return 0;
}
