// Experiment E2 — event-driven vs time-driven DES (Section 3).
//
// Paper claim: "An event-driven DES is more efficient than a time-driven
// DES since it does not step through regular time intervals when no event
// occurs."
//
// One M/M/1 queue (lambda=0.2/s, mu=0.25/s => sparse events) is simulated
// to a 100k-second horizon three ways: event-driven, and time-driven at
// tick sizes 1.0 and 0.1 s. Reported per mode: wall time, engine events,
// ticks stepped, empty ticks (pure waste), and the mean-wait estimate vs
// the analytic M/M/1 value — the time quantum also costs accuracy.
#include <chrono>
#include <cstdio>

#include "core/engine.hpp"
#include "core/time_driven.hpp"
#include "stats/analytical.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace core = lsds::core;
namespace stats = lsds::stats;

namespace {

constexpr double kLambda = 0.2;
constexpr double kMu = 0.25;
constexpr double kHorizon = 100000.0;

struct RunOutcome {
  double wall_ms = 0;
  std::uint64_t events = 0;
  std::uint64_t ticks = 0;
  std::uint64_t empty_ticks = 0;
  double mean_wait = 0;
};

// M/M/1 FCFS queue driven by plain engine events.
struct MM1Model {
  core::Engine& eng;
  stats::Accumulator waits;
  std::uint64_t in_system = 0;
  std::vector<double> arrivals;  // FIFO of arrival times

  void arrival() {
    arrivals.push_back(eng.now());
    if (++in_system == 1) schedule_departure();
    eng.schedule_in(eng.rng("arrivals").exponential(1.0 / kLambda), [this] { arrival(); });
  }
  void schedule_departure() {
    eng.schedule_in(eng.rng("service").exponential(1.0 / kMu), [this] { departure(); });
  }
  void departure() {
    waits.add(eng.now() - arrivals.front());
    arrivals.erase(arrivals.begin());
    if (--in_system > 0) schedule_departure();
  }
};

RunOutcome run_event_driven() {
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 7});
  MM1Model model{eng, {}, 0, {}};
  eng.schedule_at(0.0, [&] { model.arrival(); });
  const auto t0 = std::chrono::steady_clock::now();
  eng.run_until(kHorizon);
  const auto t1 = std::chrono::steady_clock::now();
  RunOutcome out;
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.events = eng.stats().executed;
  out.mean_wait = model.waits.mean();
  return out;
}

RunOutcome run_time_driven(double tick) {
  core::Engine::Config cfg;
  cfg.seed = 7;
  cfg.time_quantum = tick;  // timestamps quantized to the tick grid
  core::Engine eng(cfg);
  MM1Model model{eng, {}, 0, {}};
  eng.schedule_at(0.0, [&] { model.arrival(); });
  core::TimeDrivenRunner runner(eng, tick);
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = runner.run(kHorizon);
  const auto t1 = std::chrono::steady_clock::now();
  RunOutcome out;
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.events = res.events;
  out.ticks = res.ticks;
  out.empty_ticks = res.empty_ticks;
  out.mean_wait = model.waits.mean();
  return out;
}

}  // namespace

int main() {
  std::printf("== Experiment E2: event-driven vs time-driven DES ==\n");
  std::printf("model: M/M/1, lambda=%.2f mu=%.2f, horizon %.0f s\n\n", kLambda, kMu, kHorizon);

  const stats::MM1 theory{kLambda, kMu};
  stats::AsciiTable t({"mode", "wall [ms]", "events", "ticks", "empty ticks", "mean sojourn [s]",
                       "theory W [s]", "rel err"});

  auto add = [&](const char* name, const RunOutcome& r) {
    const double w = theory.mean_sojourn();
    t.row()
        .cell(std::string(name))
        .cell(r.wall_ms)
        .cell(r.events)
        .cell(r.ticks)
        .cell(r.empty_ticks)
        .cell(r.mean_wait)
        .cell(w)
        .cell(std::abs(r.mean_wait - w) / w);
  };

  add("event-driven", run_event_driven());
  add("time-driven dt=1.0", run_time_driven(1.0));
  add("time-driven dt=0.1", run_time_driven(0.1));

  std::printf("%s\n", t.render().c_str());
  std::printf("claim check: time-driven steps through empty ticks the event-driven\n"
              "run never visits; shrinking dt improves accuracy but multiplies ticks.\n");
  return 0;
}
