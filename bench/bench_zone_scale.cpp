// Experiment E14 — million-host platforms from hierarchical routing zones.
//
// The paper's scalability axis: flat Topology + Routing stores O(N) nodes,
// O(N * w) links and per-source Dijkstra caches that make million-host
// platforms unbuildable (the 1M-host flat graph alone would hold ~3M nodes
// and 12M links, and ONE warm source costs an O(N^2)-ish cache row). A
// FatTreeZone stores O(levels) integers and computes every route from the
// endpoint coordinates, so build cost is microseconds and memory is flat.
//
// Sweep: fat trees from 1k to 1M hosts. Per point we measure zone build
// time, then "warm" = kRoutesSampled deterministic route computations whose
// link ids and latencies are FNV-1a hashed. Self-checks:
//   * the smallest point's sampled routes are verified byte-identical
//     against flat Dijkstra over the materialized topology;
//   * every point's hash is recomputed in a second pass and must match
//     (route computation is deterministic and side-effect free);
// The bench exits non-zero on any mismatch. Results go to BENCH_zone.json
// for tools/check_zone_bench.py; --small caps the sweep at 100k hosts for
// CI, --large adds nothing (1M is already the top point).
#include <sys/resource.h>

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "net/routing.hpp"
#include "net/topology.hpp"
#include "net/zone.hpp"

namespace net = lsds::net;

namespace {

constexpr std::size_t kRoutesSampled = 20000;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

double rss_mb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // ru_maxrss is KiB on Linux
}

struct Shape {
  const char* name;
  std::vector<std::uint32_t> children, parents;
};

net::FatTreeSpec spec_of(const Shape& s) {
  net::FatTreeSpec spec;
  spec.children = s.children;
  spec.parents = s.parents;
  const std::size_t h = s.children.size();
  spec.bandwidth.assign(h, 0);
  spec.latency.assign(h, 0);
  for (std::size_t l = 0; l < h; ++l) {
    spec.bandwidth[l] = 1e9 * static_cast<double>(l + 1);
    spec.latency[l] = 1e-4 * static_cast<double>(l + 1);
  }
  return spec;
}

// Deterministic host-pair stream (splitmix-style) — no global RNG state, so
// the hash re-pass sees the exact same pairs.
struct PairStream {
  std::uint64_t state;
  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

// Hash kRoutesSampled routes: link ids in path order + total_latency bits.
std::uint64_t warm_hash(net::ZoneRouting& zr, std::size_t hosts) {
  PairStream ps{12345};
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < kRoutesSampled; ++i) {
    const auto src = static_cast<net::NodeId>(ps.next() % hosts);
    const auto dst = static_cast<net::NodeId>(ps.next() % hosts);
    const net::Route& r = zr.route(src, dst);
    h = fnv1a(h, r.links.size());
    for (net::LinkId l : r.links) h = fnv1a(h, l);
    h = fnv1a(h, bits(r.total_latency));
    h = fnv1a(h, bits(zr.bottleneck_bandwidth(src, dst)));
  }
  return h;
}

// Byte-identity spot check against flat Dijkstra (small shapes only).
bool flat_check(const net::FatTreeZone& zone, net::ZoneRouting& zr) {
  const net::Topology topo = zone.to_topology();
  net::Routing flat(topo);
  PairStream ps{777};
  for (std::size_t i = 0; i < 500; ++i) {
    const auto src = static_cast<net::NodeId>(ps.next() % zone.host_count());
    const auto dst = static_cast<net::NodeId>(ps.next() % zone.host_count());
    const net::Route zroute = zr.route(src, dst);  // copy out of scratch
    const net::Route& froute = flat.route(src, dst);
    if (zroute.links != froute.links) return false;
    if (bits(zroute.total_latency) != bits(froute.total_latency)) return false;
  }
  return true;
}

struct Point {
  std::string name;
  std::size_t hosts = 0, nodes = 0, links = 0;
  double build_ms = 0, warm_ms = 0, rss_mb = 0;
  std::uint64_t hash = 0;
  bool flat_checked = false;
  bool ok = false;
};

void emit_json(const std::vector<Point>& points, const char* path) {
  FILE* f = std::fopen(path, "w");
  if (!f) return;
  std::fprintf(f, "{\n  \"benchmark\": \"zone_scale\",\n");
  std::fprintf(f, "  \"routes_sampled\": %zu,\n  \"points\": [\n", kRoutesSampled);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(f,
                 "    {\"shape\": \"%s\", \"hosts\": %zu, \"nodes\": %zu, \"links\": %zu, "
                 "\"build_ms\": %.3f, \"warm_ms\": %.3f, \"rss_mb\": %.1f, "
                 "\"route_hash\": \"%016" PRIx64 "\", \"flat_checked\": %s, \"ok\": %s}%s\n",
                 p.name.c_str(), p.hosts, p.nodes, p.links, p.build_ms, p.warm_ms, p.rss_mb,
                 p.hash, p.flat_checked ? "true" : "false", p.ok ? "true" : "false",
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Shape> sweep = {
      {"xgft(2;32,32;1,4)", {32, 32}, {1, 4}},            // 1k hosts
      {"xgft(2;100,100;1,10)", {100, 100}, {1, 10}},      // 10k
      {"xgft(3;50,50,40;1,10,10)", {50, 50, 40}, {1, 10, 10}},   // 100k
      {"xgft(3;100,100,100;1,10,10)", {100, 100, 100}, {1, 10, 10}},  // 1M
  };
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--small") sweep.pop_back();  // cap at 100k for CI
  }

  std::printf("== Experiment E14: hierarchical zones at platform scale ==\n");
  std::printf("%zu routes sampled + hashed per point\n\n", kRoutesSampled);
  std::printf("%28s  %9s  %10s  %10s  %8s  %s\n", "shape", "hosts", "build [ms]", "warm [ms]",
              "rss [MB]", "self-check");

  std::vector<Point> points;
  bool ok = true;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    Point p;
    p.name = sweep[i].name;

    const auto t0 = std::chrono::steady_clock::now();
    const auto zone = std::make_unique<net::FatTreeZone>(spec_of(sweep[i]));
    net::ZoneRouting zr(*zone);
    const auto t1 = std::chrono::steady_clock::now();
    p.hash = warm_hash(zr, zone->host_count());
    const auto t2 = std::chrono::steady_clock::now();

    p.hosts = zone->host_count();
    p.nodes = zone->node_count();
    p.links = zone->link_count();
    p.build_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    p.warm_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
    p.rss_mb = rss_mb();
    // Determinism re-pass: same pair stream, same hash — always. Flat
    // Dijkstra byte-identity: first (smallest) point only; the flat graph
    // at 100k+ is exactly what this subsystem exists to avoid building.
    p.ok = warm_hash(zr, zone->host_count()) == p.hash;
    if (i == 0) {
      p.flat_checked = true;
      p.ok = p.ok && flat_check(*zone, zr);
    }
    ok = ok && p.ok;

    std::printf("%28s  %9zu  %10.2f  %10.1f  %8.1f  %s\n", p.name.c_str(), p.hosts, p.build_ms,
                p.warm_ms, p.rss_mb, p.ok ? (p.flat_checked ? "flat+hash" : "hash") : "FAILED");
    std::fflush(stdout);
    points.push_back(p);
  }
  emit_json(points, "BENCH_zone.json");
  std::printf("\nwrote BENCH_zone.json\n");
  if (!ok) {
    std::printf("FAIL: zone routing self-check failed\n");
    return 1;
  }
  return 0;
}
