// Experiment E3 — centralized vs distributed (threaded) execution
// (Section 3).
//
// Paper claims: "a pure serial simulation execution … can not be a reality
// when addressing the problem of simulating large scale distributed
// systems"; "Modern simulators make use of at least the threading
// mechanisms provided by the underlying operating system"; yet distributed
// simulation remains hard (Misra 1986, Fujimoto 1993).
//
// Workload: PHOLD — the standard parallel-DES benchmark. 16 LPs, 8
// messages per LP, exponential hop delays above the lookahead. The same
// model runs on the sequential Engine (centralized) and on the
// conservative ParallelEngine at 1, 2, 4 and 8 worker threads.
//
// NOTE: on a single-core host this measures synchronization *overhead*
// (the mechanics of the distributed tier), not speedup; the event counts
// demonstrate the decomposition is identical.
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>

#include "core/engine.hpp"
#include "core/parallel.hpp"
#include "stats/table.hpp"

namespace core = lsds::core;

namespace {

constexpr unsigned kLps = 16;
constexpr int kPopulationPerLp = 8;
constexpr double kLookahead = 1.0;
constexpr double kHorizon = 2000.0;

struct Outcome {
  double wall_ms = 0;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t cross = 0;
};

// Sequential reference: same PHOLD logic on the centralized engine.
Outcome run_centralized() {
  core::Engine eng(core::QueueKind::kBinaryHeap, 42);
  auto& rng = eng.rng("phold");
  std::function<void()> hop = [&] {
    const double dt = kLookahead + rng.exponential(0.5);
    eng.schedule_in(dt, hop);
  };
  for (unsigned i = 0; i < kLps * kPopulationPerLp; ++i) eng.schedule_at(0.0, hop);
  const auto t0 = std::chrono::steady_clock::now();
  eng.run_until(kHorizon);
  const auto t1 = std::chrono::steady_clock::now();
  Outcome o;
  o.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  o.events = eng.stats().executed;
  return o;
}

Outcome run_parallel(unsigned threads) {
  core::ParallelEngine::Config cfg;
  cfg.num_lps = kLps;
  cfg.num_threads = threads;
  cfg.lookahead = kLookahead;
  cfg.seed = 42;
  core::ParallelEngine eng(cfg);
  std::function<void(unsigned)> hop = [&](unsigned lp_idx) {
    auto& lp = eng.lp(lp_idx);
    const auto dst = static_cast<unsigned>(lp.rng().uniform_int(0, kLps - 1));
    const double t = lp.now() + kLookahead + lp.rng().exponential(0.5);
    if (dst == lp_idx) {
      lp.schedule_at(t, [&hop, dst] { hop(dst); });
    } else {
      lp.send(dst, t, [&hop, dst] { hop(dst); });
    }
  };
  for (unsigned i = 0; i < kLps; ++i) {
    for (int m = 0; m < kPopulationPerLp; ++m) {
      eng.lp(i).schedule_at(0.0, [&hop, i] { hop(i); });
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto stats = eng.run_until(kHorizon);
  const auto t1 = std::chrono::steady_clock::now();
  Outcome o;
  o.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  o.events = stats.events;
  o.windows = stats.windows;
  o.cross = stats.cross_messages;
  return o;
}

}  // namespace

int main() {
  std::printf("== Experiment E3: centralized vs threaded (conservative LP) execution ==\n");
  std::printf("PHOLD: %u LPs x %d messages, lookahead %.1f, horizon %.0f s\n", kLps,
              kPopulationPerLp, kLookahead, kHorizon);
  std::printf("host hardware threads: %u (single-core hosts show sync overhead, not speedup)\n\n",
              std::thread::hardware_concurrency());

  lsds::stats::AsciiTable t(
      {"engine", "threads", "wall [ms]", "events", "windows", "cross-LP msgs", "ev/ms"});
  {
    const auto o = run_centralized();
    t.row().cell(std::string("centralized")).cell(std::uint64_t{1}).cell(o.wall_ms)
        .cell(o.events).cell(std::string("-")).cell(std::string("-"))
        .cell(o.events / o.wall_ms);
  }
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const auto o = run_parallel(threads);
    t.row().cell(std::string("parallel LP")).cell(std::uint64_t{threads}).cell(o.wall_ms)
        .cell(o.events).cell(o.windows).cell(o.cross).cell(o.events / o.wall_ms);
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("determinism: parallel event totals are identical across thread counts\n"
              "(asserted in tests/core_modes_test.cpp), the property that makes the\n"
              "threaded tier usable for science.\n");
  return 0;
}
