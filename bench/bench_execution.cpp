// Experiment E3 — centralized vs distributed (threaded) execution
// (Section 3).
//
// Paper claims: "a pure serial simulation execution … can not be a reality
// when addressing the problem of simulating large scale distributed
// systems"; "Modern simulators make use of at least the threading
// mechanisms provided by the underlying operating system"; yet distributed
// simulation remains hard (Misra 1986, Fujimoto 1993).
//
// Workload: PHOLD — the standard parallel-DES benchmark. 16 LPs, 8
// messages per LP, exponential hop delays above the lookahead. The same
// model runs on the sequential Engine (centralized) and on the
// conservative ParallelEngine at 1, 2, 4 and 8 worker threads.
//
// NOTE: on a single-core host this measures synchronization *overhead*
// (the mechanics of the distributed tier), not speedup; the event counts
// demonstrate the decomposition is identical.
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/parallel.hpp"
#include "sim/parallel/tier_model.hpp"
#include "stats/table.hpp"

namespace core = lsds::core;

namespace {

constexpr unsigned kLps = 16;
constexpr int kPopulationPerLp = 8;
constexpr double kLookahead = 1.0;
constexpr double kHorizon = 2000.0;

struct Outcome {
  double wall_ms = 0;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t cross = 0;
};

// Sequential reference: same PHOLD logic on the centralized engine.
Outcome run_centralized() {
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 42});
  auto& rng = eng.rng("phold");
  std::function<void()> hop = [&] {
    const double dt = kLookahead + rng.exponential(0.5);
    eng.schedule_in(dt, hop);
  };
  for (unsigned i = 0; i < kLps * kPopulationPerLp; ++i) eng.schedule_at(0.0, hop);
  const auto t0 = std::chrono::steady_clock::now();
  eng.run_until(kHorizon);
  const auto t1 = std::chrono::steady_clock::now();
  Outcome o;
  o.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  o.events = eng.stats().executed;
  return o;
}

Outcome run_parallel(unsigned threads) {
  core::ParallelEngine::Config cfg;
  cfg.num_lps = kLps;
  cfg.num_threads = threads;
  cfg.lookahead = kLookahead;
  cfg.seed = 42;
  core::ParallelEngine eng(cfg);
  std::function<void(unsigned)> hop = [&](unsigned lp_idx) {
    auto& lp = eng.lp(lp_idx);
    const auto dst = static_cast<unsigned>(lp.rng().uniform_int(0, kLps - 1));
    const double t = lp.now() + kLookahead + lp.rng().exponential(0.5);
    if (dst == lp_idx) {
      lp.schedule_at(t, [&hop, dst] { hop(dst); });
    } else {
      lp.send(dst, t, [&hop, dst] { hop(dst); });
    }
  };
  for (unsigned i = 0; i < kLps; ++i) {
    for (int m = 0; m < kPopulationPerLp; ++m) {
      eng.lp(i).schedule_at(0.0, [&hop, i] { hop(i); });
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto stats = eng.run_until(kHorizon);
  const auto t1 = std::chrono::steady_clock::now();
  Outcome o;
  o.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  o.events = stats.events;
  o.windows = stats.windows;
  o.cross = stats.cross_messages;
  return o;
}

// --- model-level sweep: the LHC tier scenario on ParallelGrid ---------------
//
// Serial vs parallel execution of the MONARC-style tier model (sites x
// threads), the workload the parallel Grid tier exists for. Every parallel
// cell is differentially checked against its serial reference trace.

struct TierCell {
  std::size_t sites = 0;
  unsigned threads = 0;   // 0 = serial reference
  double wall_ms = 0;
  double speedup = 1.0;   // serial wall / this wall
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t cross = 0;
  double lookahead = 0;
  bool identical = true;  // trace matches the serial reference
};

lsds::sim::monarc::Config tier_config(std::size_t num_t1, std::size_t t2_per_t1) {
  lsds::sim::monarc::Config cfg;
  cfg.num_t1 = num_t1;
  cfg.t2_per_t1 = t2_per_t1;
  cfg.num_files = 300;
  cfg.file_bytes = 20e9;
  cfg.production_interval = 40;
  cfg.t0_t1_bandwidth = 10e9 / 8;
  cfg.t2_fraction = 0.3;
  cfg.archive_to_tape = true;
  return cfg;
}

std::vector<TierCell> run_tier_sweep(std::size_t num_t1, std::size_t t2_per_t1) {
  namespace par = lsds::sim::parallel;
  const auto cfg = tier_config(num_t1, t2_per_t1);
  const std::size_t sites = 1 + num_t1 + num_t1 * t2_per_t1;
  std::vector<TierCell> cells;

  const auto s0 = std::chrono::steady_clock::now();
  const auto serial = par::run_tier(cfg, {});
  const auto s1 = std::chrono::steady_clock::now();
  const double serial_ms = std::chrono::duration<double, std::milli>(s1 - s0).count();
  const std::string ref = serial.trace();
  cells.push_back({sites, 0, serial_ms, 1.0, serial.exec.engine.events, 0, 0, 0, true});

  for (unsigned threads : {1u, 2u, 4u}) {
    lsds::hosts::ExecutionSpec spec;
    spec.parallel = true;
    spec.threads = threads;
    spec.lps = 4;  // fixed decomposition: only the worker count varies
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = par::run_tier(cfg, spec);
    const auto t1 = std::chrono::steady_clock::now();
    TierCell c;
    c.sites = sites;
    c.threads = threads;
    c.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    c.speedup = serial_ms / c.wall_ms;
    c.events = r.exec.engine.events;
    c.windows = r.exec.engine.windows;
    c.cross = r.exec.engine.cross_messages;
    c.lookahead = r.exec.lookahead;
    c.identical = (r.trace() == ref);
    cells.push_back(c);
  }
  return cells;
}

void emit_json(const std::vector<TierCell>& cells, const char* path) {
  FILE* f = std::fopen(path, "w");
  if (!f) return;
  std::fprintf(f, "{\n  \"benchmark\": \"parallel_tier_sweep\",\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n  \"cells\": [\n",
               std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const TierCell& c = cells[i];
    std::fprintf(f,
                 "    {\"sites\": %zu, \"mode\": \"%s\", \"threads\": %u, "
                 "\"wall_ms\": %.3f, \"speedup\": %.3f, \"events\": %llu, "
                 "\"windows\": %llu, \"cross_messages\": %llu, \"lookahead_s\": %g, "
                 "\"identical_to_serial\": %s}%s\n",
                 c.sites, c.threads == 0 ? "serial" : "parallel",
                 c.threads == 0 ? 1 : c.threads, c.wall_ms, c.speedup,
                 static_cast<unsigned long long>(c.events),
                 static_cast<unsigned long long>(c.windows),
                 static_cast<unsigned long long>(c.cross), c.lookahead,
                 c.identical ? "true" : "false", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  std::printf("== Experiment E3: centralized vs threaded (conservative LP) execution ==\n");
  std::printf("PHOLD: %u LPs x %d messages, lookahead %.1f, horizon %.0f s\n", kLps,
              kPopulationPerLp, kLookahead, kHorizon);
  std::printf("host hardware threads: %u (single-core hosts show sync overhead, not speedup)\n\n",
              std::thread::hardware_concurrency());

  lsds::stats::AsciiTable t(
      {"engine", "threads", "wall [ms]", "events", "windows", "cross-LP msgs", "ev/ms"});
  {
    const auto o = run_centralized();
    t.row().cell(std::string("centralized")).cell(std::uint64_t{1}).cell(o.wall_ms)
        .cell(o.events).cell(std::string("-")).cell(std::string("-"))
        .cell(o.events / o.wall_ms);
  }
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const auto o = run_parallel(threads);
    t.row().cell(std::string("parallel LP")).cell(std::uint64_t{threads}).cell(o.wall_ms)
        .cell(o.events).cell(o.windows).cell(o.cross).cell(o.events / o.wall_ms);
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("determinism: parallel event totals are identical across thread counts\n"
              "(asserted in tests/core_modes_test.cpp), the property that makes the\n"
              "threaded tier usable for science.\n\n");

  std::printf("== Parallel Grid: LHC tier scenario, serial vs parallel (sites x threads) ==\n");
  std::printf("4 LPs, topology-derived lookahead; every parallel cell differentially\n"
              "checked against the serial reference trace.\n\n");
  lsds::stats::AsciiTable sweep({"sites", "mode", "threads", "wall [ms]", "speedup", "events",
                                 "windows", "cross msgs", "identical"});
  std::vector<TierCell> all;
  bool all_identical = true;
  for (const auto& [t1s, t2s] : std::vector<std::pair<std::size_t, std::size_t>>{
           {3, 4}, {9, 6}}) {  // 16-site and 64-site tiers
    for (const auto& c : run_tier_sweep(t1s, t2s)) {
      sweep.row()
          .cell(std::uint64_t{c.sites})
          .cell(std::string(c.threads == 0 ? "serial" : "parallel"))
          .cell(std::uint64_t{c.threads == 0 ? 1 : c.threads})
          .cell(c.wall_ms)
          .cell(c.speedup)
          .cell(c.events)
          .cell(c.threads == 0 ? std::string("-") : std::to_string(c.windows))
          .cell(c.threads == 0 ? std::string("-") : std::to_string(c.cross))
          .cell(std::string(c.identical ? "yes" : "NO"));
      all_identical = all_identical && c.identical;
      all.push_back(c);
    }
  }
  std::printf("%s\n", sweep.render().c_str());
  emit_json(all, "BENCH_parallel.json");
  std::printf("wrote BENCH_parallel.json\n");
  std::printf("NOTE: on a single-core host the parallel rows measure windowed-run\n"
              "synchronization overhead, not speedup — the barrier per window and the\n"
              "thread pool handoff are the cost of the distributed tier. The `identical`\n"
              "column is the point: the decomposition changes wall time only.\n");
  return all_identical ? 0 : 1;
}
