// Experiment E15 — storage as a shared resource: tape -> disk -> WAN staging.
//
// The sweep drives an LHC-style staging pipeline: N streams arrive at a
// fixed cadence at a source site; each mounts + reads its file off tape,
// then ships it over a WAN link to one of four destination sites. Three
// arms per point:
//   * fifo                — the busy-until head model: tape accesses
//     serialize, network transfers see links only;
//   * maxmin-full         — heads are solver capacity resources (mounts
//     overlap, heads max-min share; each WAN transfer is jointly
//     constrained by source disk read + link + destination disk write),
//     solved by the full reference solver;
//   * maxmin-incremental  — same model on the dirty-component incremental
//     solver.
//
// Self-checks (the bench exits non-zero on any failure):
//   * every arm re-runs and must reproduce its FNV-1a state hash bit for
//     bit (completion times + delivered bytes are deterministic);
//   * per stream count, maxmin-full and maxmin-incremental hashes must be
//     EQUAL — the incremental solver is byte-identical under disk+link
//     joint constraints;
//   * per arm, makespan must grow with the stream count (staging contention
//     scales, it does not saturate away).
// Results go to BENCH_storage.json for tools/check_storage_bench.py;
// --small caps the sweep for CI, --large adds a 4096-stream point.
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "hosts/site.hpp"
#include "hosts/storage.hpp"
#include "net/flow.hpp"

namespace core = lsds::core;
namespace net = lsds::net;
namespace hosts = lsds::hosts;

namespace {

constexpr double kFileBytes = 1e8;    // 100 MB per staged file
constexpr double kCadence = 0.5;      // stream arrivals, seconds apart
constexpr std::size_t kDestinations = 4;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

struct ArmResult {
  std::uint64_t hash = 0;
  double makespan = 0;
  double wall_ms = 0;
  std::uint64_t flows_rerated = 0;
  std::uint64_t delivered = 0;
};

ArmResult run_arm(std::size_t streams, hosts::StorageSharing sharing, bool incremental) {
  core::Engine eng;
  hosts::Grid grid(eng);

  hosts::SiteSpec src_spec;
  src_spec.name = "T0";
  src_spec.has_mass_storage = true;
  src_spec.tape_bandwidth = 3e7;     // 30 MB/s robot
  src_spec.tape_mount_latency = 5.0;
  src_spec.disk_read_bw = 2e8;
  src_spec.disk_write_bw = 2e8;
  src_spec.disk_latency = 0.001;
  src_spec.storage_sharing = sharing;
  auto& src = grid.add_site(src_spec);

  std::vector<hosts::Site*> dsts;
  for (std::size_t k = 0; k < kDestinations; ++k) {
    hosts::SiteSpec d;
    d.name = "T1_" + std::to_string(k);
    d.disk_read_bw = 2e8;
    d.disk_write_bw = 1e8;
    d.disk_latency = 0.001;
    d.storage_sharing = sharing;
    auto& site = grid.add_site(d);
    grid.topology().add_link(src.node(), site.node(), 1e8, 0.02);
    dsts.push_back(&site);
  }
  grid.finalize(net::FlowNetwork::Config{incremental});

  for (std::size_t j = 0; j < streams; ++j)
    src.tape().store("f" + std::to_string(j), kFileBytes);

  ArmResult res;
  res.hash = 1469598103934665603ULL;
  std::uint64_t done = 0;
  for (std::size_t j = 0; j < streams; ++j) {
    eng.schedule_at(kCadence * static_cast<double>(j), [&, j] {
      src.tape().read("f" + std::to_string(j), [&, j] {
        grid.net().start_flow(src.node(), dsts[j % kDestinations]->node(), kFileBytes,
                              [&, j](net::FlowId) {
                                res.hash = fnv1a(res.hash, j);
                                res.hash = fnv1a(res.hash, bits(eng.now()));
                                res.makespan = eng.now();
                                ++done;
                              });
      });
    });
  }

  const auto w0 = std::chrono::steady_clock::now();
  eng.run();
  res.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - w0).count();
  res.hash = fnv1a(res.hash, bits(grid.net().total_bytes_delivered()));
  res.hash = fnv1a(res.hash, done);
  res.flows_rerated = grid.net().flows_rerated();
  res.delivered = done;
  return res;
}

struct Point {
  std::size_t streams = 0;
  std::string arm;
  ArmResult r;
  bool ok = false;
};

void emit_json(const std::vector<Point>& points, const char* path) {
  FILE* f = std::fopen(path, "w");
  if (!f) return;
  std::fprintf(f, "{\n  \"benchmark\": \"storage_staging\",\n");
  std::fprintf(f, "  \"file_bytes\": %.0f,\n  \"destinations\": %zu,\n  \"points\": [\n",
               kFileBytes, kDestinations);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(f,
                 "    {\"streams\": %zu, \"arm\": \"%s\", \"wall_ms\": %.1f, "
                 "\"makespan_s\": %.3f, \"delivered\": %" PRIu64 ", \"flows_rerated\": %" PRIu64
                 ", \"state_hash\": \"%016" PRIx64 "\", \"ok\": %s}%s\n",
                 p.streams, p.arm.c_str(), p.r.wall_ms, p.r.makespan, p.r.delivered,
                 p.r.flows_rerated, p.r.hash, p.ok ? "true" : "false",
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> sweep = {64, 256, 1024};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--small") sweep = {32, 128};
    if (std::string(argv[i]) == "--large") sweep.push_back(4096);
  }

  struct Arm {
    const char* name;
    hosts::StorageSharing sharing;
    bool incremental;
  };
  const Arm arms[] = {
      {"fifo", hosts::StorageSharing::kFifo, true},
      {"maxmin-full", hosts::StorageSharing::kMaxMin, false},
      {"maxmin-incremental", hosts::StorageSharing::kMaxMin, true},
  };

  std::printf("== Experiment E15: tape -> disk -> WAN staging under contention ==\n");
  std::printf("%.0f MB files, %zu destination sites, one arrival per %.1fs\n\n", kFileBytes / 1e6,
              kDestinations, kCadence);
  std::printf("%8s  %20s  %12s  %10s  %12s  %s\n", "streams", "arm", "makespan [s]", "wall [ms]",
              "rerated", "self-check");

  std::vector<Point> points;
  bool ok = true;
  for (std::size_t streams : sweep) {
    std::uint64_t maxmin_hash = 0;
    bool have_maxmin = false;
    for (const Arm& arm : arms) {
      Point p;
      p.streams = streams;
      p.arm = arm.name;
      p.r = run_arm(streams, arm.sharing, arm.incremental);
      // Determinism re-pass: an identical run must reproduce the hash.
      const ArmResult again = run_arm(streams, arm.sharing, arm.incremental);
      p.ok = again.hash == p.r.hash && p.r.delivered == streams;
      // Differential: both maxmin solvers must agree bit for bit.
      if (arm.sharing == hosts::StorageSharing::kMaxMin) {
        if (have_maxmin) p.ok = p.ok && p.r.hash == maxmin_hash;
        maxmin_hash = p.r.hash;
        have_maxmin = true;
      }
      ok = ok && p.ok;
      std::printf("%8zu  %20s  %12.1f  %10.1f  %12" PRIu64 "  %s\n", streams, arm.name,
                  p.r.makespan, p.r.wall_ms, p.r.flows_rerated, p.ok ? "hash" : "FAILED");
      std::fflush(stdout);
      points.push_back(p);
    }
  }

  // Scaling check: within each arm, makespan grows with the stream count.
  for (const Arm& arm : arms) {
    double prev = 0;
    for (const Point& p : points) {
      if (p.arm != arm.name) continue;
      if (p.r.makespan <= prev) {
        std::printf("FAIL: %s makespan did not grow at %zu streams\n", arm.name, p.streams);
        ok = false;
      }
      prev = p.r.makespan;
    }
  }

  emit_json(points, "BENCH_storage.json");
  std::printf("\nwrote BENCH_storage.json\n");
  if (!ok) {
    std::printf("FAIL: storage staging self-check failed\n");
    return 1;
  }
  return 0;
}
