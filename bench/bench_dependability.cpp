// Dependability experiment — recovery policies under fail-stop chaos.
//
// A 1000-job bag on an 8-host farm, swept over MTBF (relative to the ~2 s
// mean job length) x recovery policy. For each cell: makespan, mean
// availability delivered by the injector, wasted + overhead work, and
// goodput as a fraction of raw throughput. Expected shape:
//
//   - Gentle chaos (MTBF >> job): policies are within noise of each other;
//     replication pays its duplicate-work tax for nothing.
//   - MTBF ~ job length: retry-in-place thrashes (whole attempts lost),
//     checkpointing bounds the loss per kill, resubmit-elsewhere wins when
//     another host is likely up, replication trades ~2x raw work for the
//     shortest makespans.
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "hosts/cpu.hpp"
#include "middleware/failures.hpp"
#include "middleware/recovery.hpp"
#include "stats/table.hpp"

namespace core = lsds::core;
namespace hosts = lsds::hosts;
namespace mw = lsds::middleware;

namespace {

constexpr std::size_t kHosts = 8;
constexpr double kSpeed = 1000.0;
constexpr double kMeanOps = 2000.0;  // ~2 s mean job
constexpr std::size_t kJobs = 1000;

struct Outcome {
  double makespan = 0;
  std::uint64_t kills = 0;
  double availability = 0;
  double wasted = 0;
  double overhead = 0;
  double goodput_ratio = 0;  // goodput / raw throughput
  double mean_attempts = 0;
};

Outcome run_cell(mw::RecoveryPolicyKind policy, double mtbf, std::uint64_t seed) {
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = seed});
  std::vector<std::unique_ptr<hosts::CpuResource>> farm;
  std::vector<hosts::CpuResource*> cpus;
  for (std::size_t i = 0; i < kHosts; ++i) {
    farm.push_back(std::make_unique<hosts::CpuResource>(
        eng, "h" + std::to_string(i), 1, kSpeed, hosts::SharingPolicy::kSpaceShared));
    cpus.push_back(farm.back().get());
  }

  mw::FailureInjector chaos(eng);
  for (auto* cpu : cpus) chaos.add_cpu(*cpu);
  chaos.start(mtbf, /*mttr=*/0.5, /*t_end=*/1e7);

  mw::RecoveryConfig cfg;
  cfg.policy = policy;
  cfg.backoff_base = 0.25;
  cfg.checkpoint_interval_ops = kMeanOps / 4;
  cfg.checkpoint_overhead_ops = kMeanOps / 50;
  cfg.replicas = 2;
  mw::FaultTolerantScheduler sched(eng, cpus, mw::Heuristic::kSjf, cfg);

  auto& rng = eng.rng("bag");
  for (std::size_t j = 0; j < kJobs; ++j) {
    hosts::Job job;
    job.id = j + 1;
    job.ops = rng.exponential(kMeanOps);
    sched.submit(std::move(job));
  }
  std::size_t settled = 0;
  const auto on_settled = [&](const hosts::Job&) {
    if (++settled == kJobs) eng.stop();
  };
  sched.run(on_settled, on_settled);
  eng.run();

  Outcome out;
  out.makespan = sched.makespan();
  out.kills = sched.kills();
  sched.finalize_availability(out.makespan);
  const auto& dep = sched.dependability();
  out.availability = dep.mean_availability();
  out.wasted = dep.wasted_ops();
  out.overhead = dep.overhead_ops();
  out.goodput_ratio = dep.goodput(out.makespan) / dep.raw_throughput(out.makespan);
  out.mean_attempts = dep.attempts().mean();
  return out;
}

}  // namespace

int main() {
  std::printf("Dependability: %zu jobs (~%.0f ops) on %zu hosts, fail-stop, MTTR 0.5 s\n\n",
              kJobs, kMeanOps, kHosts);

  const double kMtbfs[] = {2.0, 10.0, 50.0};  // ~1x, 5x, 25x the mean job
  for (double mtbf : kMtbfs) {
    std::printf("MTBF %.0f s (%.0fx mean job length):\n", mtbf, mtbf / (kMeanOps / kSpeed));
    lsds::stats::AsciiTable t({"policy", "makespan (s)", "kills", "avail", "wasted ops",
                               "overhead ops", "goodput/raw", "attempts"});
    for (auto policy : mw::kAllRecoveryPolicies) {
      const Outcome o = run_cell(policy, mtbf, 4242);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3f", o.availability);
      std::string avail = buf;
      std::snprintf(buf, sizeof buf, "%.3f", o.goodput_ratio);
      std::string ratio = buf;
      std::snprintf(buf, sizeof buf, "%.2f", o.mean_attempts);
      t.row()
          .cell(mw::to_string(policy))
          .cell(o.makespan)
          .cell(o.kills)
          .cell(avail)
          .cell(o.wasted)
          .cell(o.overhead)
          .cell(ratio)
          .cell(std::string(buf));
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Reading: goodput/raw is the share of delivered CPU work that served a\n"
      "completed job; the rest was killed progress, duplicate replicas, or\n"
      "checkpoint writes.\n");
  return 0;
}
