// Experiment E1 — pending-event-set structures (Section 3).
//
// Paper claims under test:
//   "A system using an O(1) structure for the event list will behave better
//    than another one using an O(log n) queuing structure."
//   "There is not a single unanimity accepted queuing structure that
//    performs best … they all tend to behave different depending on various
//    parameters."
//
// Workloads:
//   * hold model (pop one, push one) at pending-set sizes 1e2..1e5, with
//     exponential increments — the classic DES steady state;
//   * skewed (Pareto) increments — stresses calendar bucket tuning;
//   * ramp (pure push then pure pop) — insertion-heavy phase behavior.
//
// google-benchmark reports ns per operation pair; bench also prints an
// ASCII summary table at exit via a plain main wrapper.
#include <benchmark/benchmark.h>

#include "core/event_queue.hpp"
#include "core/rng.hpp"

namespace core = lsds::core;

namespace {

core::QueueKind kind_of(int idx) { return core::kAllQueueKinds[idx]; }

void bench_hold(benchmark::State& state, bool skewed) {
  const auto kind = kind_of(static_cast<int>(state.range(0)));
  const auto size = static_cast<std::size_t>(state.range(1));
  if (kind == core::QueueKind::kSortedList && size > 10000) {
    state.SkipWithError("O(n) structure unusable at this size");
    return;
  }
  auto q = core::make_event_queue(kind);
  core::RngStream rng(1234);
  auto increment = [&] { return skewed ? rng.pareto(0.01, 1.1) : rng.exponential(1.0); };
  core::EventId seq = 1;
  // Initial fill in ascending time order: O(1) tail inserts even for the
  // sorted list, so setup cost never pollutes the measurement.
  double fill_t = 0;
  for (std::size_t i = 0; i < size; ++i) {
    fill_t += increment() * 0.01;
    q->push({fill_t, seq++, nullptr});
  }
  for (auto _ : state) {
    auto ev = q->pop();
    q->push({ev.time + increment(), seq++, nullptr});
    benchmark::DoNotOptimize(q);
  }
  state.SetLabel(core::to_string(kind));
  state.counters["pending"] = static_cast<double>(size);
}

void bench_hold_exp(benchmark::State& state) { bench_hold(state, false); }
void bench_hold_pareto(benchmark::State& state) { bench_hold(state, true); }

void bench_ramp(benchmark::State& state) {
  const auto kind = kind_of(static_cast<int>(state.range(0)));
  const auto size = static_cast<std::size_t>(state.range(1));
  if (kind == core::QueueKind::kSortedList && size > 10000) {
    state.SkipWithError("O(n) structure unusable at this size");
    return;
  }
  core::RngStream rng(99);
  for (auto _ : state) {
    state.PauseTiming();
    auto q = core::make_event_queue(kind);
    state.ResumeTiming();
    core::EventId seq = 1;
    for (std::size_t i = 0; i < size; ++i) q->push({rng.uniform(0, 1e6), seq++, nullptr});
    while (!q->empty()) benchmark::DoNotOptimize(q->pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size) * 2);
  state.SetLabel(core::to_string(kind));
}

void args_for_all(benchmark::internal::Benchmark* b) {
  for (int k = 0; k < 5; ++k) {
    for (std::int64_t n : {100, 1000, 10000, 100000}) b->Args({k, n});
  }
  // E16 operating point: the ladder queue carrying a million pending events
  // (the million-peer churn workload of bench_p2p_churn holds one
  // maintenance timer per live peer).
  b->Args({4, 1000000});
}

void ramp_args(benchmark::internal::Benchmark* b) {
  for (int k = 0; k < 5; ++k) {
    for (std::int64_t n : {1000, 50000}) b->Args({k, n});
  }
}

BENCHMARK(bench_hold_exp)->Apply(args_for_all)->ArgNames({"queue", "pending"});
BENCHMARK(bench_hold_pareto)->Apply(args_for_all)->ArgNames({"queue", "pending"});
BENCHMARK(bench_ramp)->Apply(ramp_args)->ArgNames({"queue", "n"});

}  // namespace

BENCHMARK_MAIN();
