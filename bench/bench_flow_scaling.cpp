// Experiment E11 — incremental vs full bandwidth-sharing at scale.
//
// The paper's Section 5 scaling claims require the flow-level network model
// to survive tens of thousands of concurrent transfers. The full reference
// solver re-rates EVERY sharing flow on EVERY membership change — O(N) per
// event, O(N^2) for a ramp to N flows. The incremental solver re-solves only
// the connected component of the constraint graph the change touched.
//
// Topology: kClusters disjoint star clusters (hub + kLeaves sources + one
// sink). Every flow goes source leaf -> sink, so each cluster has a single
// bottleneck (the sink's access link) and the constraint graph has exactly
// kClusters components. Workload per point: ramp to N standing flows
// (staggered starts), then a churn phase of kChurnOps cancel/replace
// operations, then stop at a horizon (flows are effectively infinite, so
// event count is workload-controlled, not rate-controlled).
//
// Both solvers run the identical script; the final model state (every flow's
// rate, bit-for-bit, plus delivered bytes) is FNV-1a hashed and must match —
// the bench is self-checking and exits non-zero on divergence. Wall-clock,
// solver work counters and the speedup go to BENCH_flow.json for
// tools/check_bench.py.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "net/flow.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"

namespace core = lsds::core;
namespace net = lsds::net;

namespace {

constexpr std::size_t kClusters = 100;
constexpr std::size_t kLeaves = 20;       // source leaves per cluster
constexpr double kAccessBw = 1e8;
constexpr double kAccessLat = 0.001;
constexpr std::size_t kChurnOps = 2000;   // cancel/replace pairs
constexpr double kFlowBytes = 1e15;       // never completes inside the horizon
constexpr double kStagger = 1e-4;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

struct Outcome {
  double wall_ms = 0;
  std::uint64_t hash = 0;
  std::uint64_t events = 0;
  std::uint64_t solves = 0;
  std::uint64_t rerated = 0;
  std::size_t sharing = 0;
};

// One cluster: hub, kLeaves sources, one sink. Disjoint from all others.
net::Topology build_topology() {
  net::Topology topo;
  for (std::size_t c = 0; c < kClusters; ++c) {
    const auto hub = topo.add_node("hub" + std::to_string(c), net::NodeKind::kRouter);
    const auto sink = topo.add_node("sink" + std::to_string(c));
    topo.add_link(sink, hub, kAccessBw, kAccessLat);
    for (std::size_t s = 0; s < kLeaves; ++s) {
      const auto n = topo.add_node("src" + std::to_string(c) + "_" + std::to_string(s));
      topo.add_link(n, hub, kAccessBw, kAccessLat);
    }
  }
  return topo;
}

// Node ids follow construction order: cluster c occupies a block of
// 2 + kLeaves nodes — [hub, sink, src0..srcN).
net::NodeId sink_of(std::size_t c) { return static_cast<net::NodeId>(c * (2 + kLeaves) + 1); }
net::NodeId src_of(std::size_t c, std::size_t s) {
  return static_cast<net::NodeId>(c * (2 + kLeaves) + 2 + s);
}

Outcome run_point(const net::Topology& topo, std::size_t n_flows, bool incremental) {
  core::Engine eng(core::Engine::Config{core::QueueKind::kBinaryHeap, 42, 0, 0});
  net::Routing routing(topo);
  net::FlowNetwork fnet(eng, routing, net::FlowNetwork::Config{incremental});

  std::vector<net::FlowId> live;
  live.reserve(n_flows);
  auto start_one = [&fnet, &live](std::size_t k) {
    const std::size_t c = k % kClusters;
    const std::size_t s = (k / kClusters) % kLeaves;
    live.push_back(fnet.start_flow_weighted(src_of(c, s), sink_of(c), kFlowBytes,
                                            1.0 + static_cast<double>(k % 4)));
  };

  // Ramp: one start per kStagger tick.
  for (std::size_t k = 0; k < n_flows; ++k) {
    eng.schedule_at(static_cast<double>(k) * kStagger, [&start_one, k] { start_one(k); });
  }
  // Churn: deterministic cancel + replacement, spread across clusters.
  const double churn_t0 = static_cast<double>(n_flows) * kStagger + 1.0;
  for (std::size_t k = 0; k < kChurnOps; ++k) {
    eng.schedule_at(churn_t0 + static_cast<double>(k) * 1e-3, [&fnet, &live, &start_one, k] {
      const std::size_t v = (k * 7919 + 13) % live.size();
      fnet.cancel(live[v]);
      live[v] = live.back();
      live.pop_back();
      start_one(k * 31 + 7);
    });
  }
  const double horizon = churn_t0 + static_cast<double>(kChurnOps) * 1e-3 + 1.0;

  const auto t0 = std::chrono::steady_clock::now();
  eng.run_until(horizon);
  const auto t1 = std::chrono::steady_clock::now();

  Outcome o;
  o.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  o.events = eng.stats().executed;
  o.solves = fnet.solves();
  o.rerated = fnet.flows_rerated();
  o.sharing = fnet.sharing_flows();
  // Bitwise final-state fingerprint: every live flow's rate in id order,
  // then the delivered-byte total.
  std::uint64_t h = 1469598103934665603ULL;
  std::vector<net::FlowId> ids = live;
  std::sort(ids.begin(), ids.end());
  for (net::FlowId id : ids) {
    h = fnv1a(h, id);
    h = fnv1a(h, bits(fnet.flow_rate(id)));
  }
  h = fnv1a(h, bits(fnet.total_bytes_delivered()));
  o.hash = h;
  return o;
}

struct Point {
  std::size_t flows;
  Outcome full;
  Outcome inc;
  bool identical = false;
};

void emit_json(const std::vector<Point>& points, const char* path) {
  FILE* f = std::fopen(path, "w");
  if (!f) return;
  std::fprintf(f, "{\n  \"benchmark\": \"flow_scaling\",\n");
  std::fprintf(f, "  \"clusters\": %zu,\n  \"churn_ops\": %zu,\n  \"points\": [\n", kClusters,
               kChurnOps);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(f,
                 "    {\"flows\": %zu, \"full_wall_ms\": %.3f, \"incremental_wall_ms\": %.3f, "
                 "\"speedup\": %.3f, \"full_hash\": \"%016" PRIx64 "\", "
                 "\"incremental_hash\": \"%016" PRIx64 "\", \"identical\": %s, "
                 "\"full_solves\": %llu, \"incremental_solves\": %llu, "
                 "\"full_rerated\": %llu, \"incremental_rerated\": %llu, "
                 "\"events\": %llu}%s\n",
                 p.flows, p.full.wall_ms, p.inc.wall_ms,
                 p.inc.wall_ms > 0 ? p.full.wall_ms / p.inc.wall_ms : 0.0, p.full.hash,
                 p.inc.hash, p.identical ? "true" : "false",
                 static_cast<unsigned long long>(p.full.solves),
                 static_cast<unsigned long long>(p.inc.solves),
                 static_cast<unsigned long long>(p.full.rerated),
                 static_cast<unsigned long long>(p.inc.rerated),
                 static_cast<unsigned long long>(p.inc.events),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> sweep = {100, 1000, 10000};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--small") sweep = {100, 1000, 4000};
    if (std::string(argv[i]) == "--large") sweep = {100, 1000, 10000, 50000};
  }

  std::printf("== Experiment E11: incremental vs full bandwidth sharing ==\n");
  std::printf("%zu disjoint clusters, %zu churn ops per point\n\n", kClusters, kChurnOps);
  std::printf("%10s  %12s  %12s  %8s  %10s  %s\n", "flows", "full [ms]", "incr [ms]", "speedup",
              "rerated", "identical");

  const auto topo = build_topology();
  std::vector<Point> points;
  bool ok = true;
  for (std::size_t n : sweep) {
    Point p;
    p.flows = n;
    p.full = run_point(topo, n, false);
    p.inc = run_point(topo, n, true);
    p.identical = p.full.hash == p.inc.hash;
    ok = ok && p.identical;
    std::printf("%10zu  %12.1f  %12.1f  %7.1fx  %4llu/%-5llu  %s\n", n, p.full.wall_ms,
                p.inc.wall_ms, p.inc.wall_ms > 0 ? p.full.wall_ms / p.inc.wall_ms : 0.0,
                static_cast<unsigned long long>(p.full.rerated / 1000),
                static_cast<unsigned long long>(p.inc.rerated / 1000),
                p.identical ? "yes" : "NO  <-- DIVERGENCE");
    std::fflush(stdout);
    points.push_back(p);
  }
  emit_json(points, "BENCH_flow.json");
  std::printf("\nwrote BENCH_flow.json\n");
  if (!ok) {
    std::printf("FAIL: full and incremental solvers diverged\n");
    return 1;
  }
  return 0;
}
