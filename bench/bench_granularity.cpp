// Experiment E4 — network simulation granularity (Section 3).
//
// Paper claim: "The simulation of the network can model in detail the flow
// of each packet through the network, a time consuming operation that leads
// to better output results, or it can model only the flows of packets going
// from one end to another."
//
// Scenario: dumbbell, n concurrent 1.5 MB transfers through a shared
// bottleneck, at n = 1, 4, 8, 16. Each run executes at both granularities;
// we report wall time, engine events, and the per-transfer completion-time
// deviation between the models. Expected shape: packet-level costs orders
// of magnitude more events; the models agree within ~20% uncongested and
// drift further as congestion (drops, retransmits) grows.
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "net/flow.hpp"
#include "net/packet.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace core = lsds::core;
namespace net = lsds::net;
namespace u = lsds::util;

namespace {

constexpr double kBytes = 1.5e6;

struct Outcome {
  double wall_ms = 0;
  std::uint64_t events = 0;
  std::vector<double> completions;
  std::uint64_t drops = 0;
};

net::Topology make_topo(std::size_t n) {
  return net::Topology::dumbbell(n, n, u::mbps(100), 0.0005, u::mbps(20), 0.005);
}

Outcome run_flow(std::size_t n) {
  core::Engine eng;
  auto topo = make_topo(n);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  Outcome o;
  o.completions.resize(n);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    fn.start_flow(static_cast<net::NodeId>(2 + i), static_cast<net::NodeId>(2 + n + i), kBytes,
                  [&o, i, &eng](net::FlowId) { o.completions[i] = eng.now(); });
  }
  eng.run();
  const auto t1 = std::chrono::steady_clock::now();
  o.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  o.events = eng.stats().executed;
  return o;
}

Outcome run_packet(std::size_t n) {
  core::Engine eng;
  auto topo = make_topo(n);
  net::Routing routing(topo);
  net::PacketNetwork pn(eng, routing);
  Outcome o;
  o.completions.resize(n);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    pn.start_transfer(static_cast<net::NodeId>(2 + i), static_cast<net::NodeId>(2 + n + i),
                      kBytes, [&o, i, &eng](net::TransferId) { o.completions[i] = eng.now(); });
  }
  eng.run();
  const auto t1 = std::chrono::steady_clock::now();
  o.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  o.events = eng.stats().executed;
  o.drops = pn.stats().packets_dropped;
  return o;
}

}  // namespace

int main() {
  std::printf("== Experiment E4: flow-level vs packet-level network simulation ==\n");
  std::printf("dumbbell, %d MB transfers, 100 Mbps access / 20 Mbps bottleneck\n\n",
              static_cast<int>(kBytes / 1e6));

  lsds::stats::AsciiTable t({"flows", "model", "wall [ms]", "events", "drops",
                             "mean completion [s]", "event ratio", "time deviation"});
  for (std::size_t n : {1u, 4u, 8u, 16u}) {
    const auto f = run_flow(n);
    const auto p = run_packet(n);
    lsds::stats::Accumulator fa, pa, dev;
    for (std::size_t i = 0; i < n; ++i) {
      fa.add(f.completions[i]);
      pa.add(p.completions[i]);
      dev.add(std::abs(p.completions[i] - f.completions[i]) / f.completions[i]);
    }
    t.row().cell(std::uint64_t{n}).cell(std::string("flow")).cell(f.wall_ms).cell(f.events)
        .cell(std::uint64_t{0}).cell(fa.mean()).cell(std::string("1x")).cell(std::string("-"));
    t.row().cell(std::uint64_t{n}).cell(std::string("packet")).cell(p.wall_ms).cell(p.events)
        .cell(p.drops).cell(pa.mean())
        .cell(lsds::util::strformat("%.0fx", static_cast<double>(p.events) /
                                                 static_cast<double>(f.events)))
        .cell(lsds::util::strformat("%.1f%%", dev.mean() * 100));
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("claim check: per-packet simulation pays 2-4 orders of magnitude more\n"
              "events for per-packet detail (drops, window dynamics) the flow model\n"
              "cannot see; completion times agree closely while uncongested.\n");
  return 0;
}
