// Experiment T1 — regenerate Table 1, "Design comparison of surveyed Grid
// simulation projects" (Section 4).
//
// The table is generated from the machine-readable taxonomy registry
// (taxonomy/registry.cpp), whose entries encode the paper's prose; a
// smoke-run of every facade confirms each surveyed simulation model is
// actually implemented and runnable in this repository, so the table
// documents living code, not claims.
#include <cstdio>

#include "core/engine.hpp"
#include "sim/bricks/bricks.hpp"
#include "sim/chicsim/chicsim.hpp"
#include "sim/gridsim/gridsim.hpp"
#include "sim/monarc/monarc.hpp"
#include "sim/optorsim/optorsim.hpp"
#include "sim/simg/simg.hpp"
#include "stats/table.hpp"
#include "taxonomy/registry.hpp"

namespace {

using lsds::core::Engine;

// Tiny smoke scenarios: one run per facade, reporting jobs completed.
lsds::stats::AsciiTable smoke_runs() {
  lsds::stats::AsciiTable t({"facade", "scenario", "work completed", "sim makespan [s]"});

  {
    Engine eng;
    lsds::sim::bricks::Config cfg;
    cfg.num_clients = 4;
    cfg.jobs_per_client = 5;
    const auto r = lsds::sim::bricks::run(eng, cfg);
    t.row().cell(std::string("Bricks")).cell(std::string("central model, 4 clients"))
        .cell(r.jobs).cell(r.makespan);
  }
  {
    Engine eng;
    lsds::sim::optorsim::Config cfg;
    cfg.workload.num_jobs = 40;
    const auto r = lsds::sim::optorsim::run(eng, cfg);
    t.row().cell(std::string("OptorSim")).cell(std::string("data grid, LRU pull"))
        .cell(r.jobs).cell(r.makespan);
  }
  {
    Engine eng;
    lsds::sim::simg::Config cfg;
    cfg.num_tasks = 32;
    const auto r = lsds::sim::simg::run(eng, cfg);
    t.row().cell(std::string("SimGrid")).cell(std::string("agents/channels, runtime sched"))
        .cell(r.tasks).cell(r.makespan);
  }
  {
    Engine eng;
    lsds::sim::gridsim::Config cfg;
    cfg.num_jobs = 30;
    const auto r = lsds::sim::gridsim::run(eng, cfg);
    t.row().cell(std::string("GridSim")).cell(std::string("economy broker, cost-opt"))
        .cell(r.completed).cell(r.makespan);
  }
  {
    Engine eng;
    lsds::sim::chicsim::Config cfg;
    cfg.workload.num_jobs = 60;
    const auto r = lsds::sim::chicsim::run(eng, cfg);
    t.row().cell(std::string("ChicagoSim")).cell(std::string("data-present sched, cache"))
        .cell(r.jobs).cell(r.makespan);
  }
  {
    Engine eng;
    lsds::sim::monarc::Config cfg;
    cfg.num_files = 10;
    cfg.num_t1 = 2;
    const auto r = lsds::sim::monarc::run(eng, cfg);
    t.row().cell(std::string("MONARC 2")).cell(std::string("tier model, T0->T1 agent"))
        .cell(r.replicas_delivered).cell(r.makespan);
  }
  return t;
}

}  // namespace

int main() {
  std::printf("== Experiment T1: Table 1 — design comparison of surveyed simulators ==\n\n");
  std::printf("%s\n", lsds::taxonomy::render_table1(true).c_str());
  std::printf("components legend: H=hosts N=network M=middleware A=applications\n");
  std::printf("ui legend: D=visual design E=visual execution O=visual output\n\n");

  std::printf("Facade smoke runs (each surveyed model re-implemented on the LSDS core):\n\n");
  std::printf("%s\n", smoke_runs().render().c_str());
  return 0;
}
