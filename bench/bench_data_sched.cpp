// Experiment E7 — scheduling in conjunction with data location
// (Section 4, ChicagoSim), including push vs pull replication.
//
// "ChicagoSim … is designed to investigate scheduling strategies in
// conjunction with data location … It also allows for data replication but
// with a 'push' model … rather than the 'pull' model used in OptorSim."
//
// Part 1: the Ranganathan-Foster style grid — 4 external-scheduler policies
// x 3 data policies on one workload; mean response, locality, traffic.
// Part 2: pull vs push head-to-head at increasing popularity skew.
#include <cstdio>

#include "core/engine.hpp"
#include "sim/chicsim/chicsim.hpp"
#include "stats/table.hpp"
#include "util/units.hpp"

namespace chic = lsds::sim::chicsim;

namespace {

chic::Config base_config() {
  chic::Config cfg;
  cfg.num_sites = 6;
  cfg.processors_per_site = 3;
  cfg.storage_fraction = 0.3;
  cfg.workload.num_jobs = 400;
  cfg.workload.num_files = 48;
  cfg.workload.files_per_job = 1;
  cfg.workload.mean_interarrival = 0.8;
  cfg.workload.zipf_exponent = 0.9;
  cfg.workload.file_bytes = {lsds::apps::SizeDist::kConstant, 40e6, 0};
  return cfg;
}

chic::Result run_cfg(const chic::Config& cfg) {
  lsds::core::Engine eng({.queue = lsds::core::QueueKind::kBinaryHeap, .seed = 777});
  return chic::run(eng, cfg);
}

}  // namespace

int main() {
  std::printf("== Experiment E7: ChicagoSim scheduler x data-placement grid ==\n");
  std::printf("6 sites x 3 procs, 400 jobs, 48 x 40 MB files, zipf 0.9\n\n");

  lsds::stats::AsciiTable t({"job policy", "data policy", "mean response [s]", "locality",
                             "network", "replications", "pushes"});
  for (auto jp : chic::kAllJobPolicies) {
    for (auto dp : chic::kAllDataPolicies) {
      auto cfg = base_config();
      cfg.job_policy = jp;
      cfg.data_policy = dp;
      const auto r = run_cfg(cfg);
      t.row()
          .cell(std::string(to_string(jp)))
          .cell(std::string(to_string(dp)))
          .cell(r.response_times.mean())
          .cell(r.locality())
          .cell(lsds::util::format_size(r.network_bytes))
          .cell(r.replications)
          .cell(r.pushes);
    }
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("Pull (OptorSim-style cache) vs push (ChicagoSim) across skew:\n\n");
  lsds::stats::AsciiTable h({"zipf", "model", "mean response [s]", "locality", "network"});
  for (double zipf : {0.0, 0.6, 1.2}) {
    for (auto dp : {chic::DataPolicy::kCache, chic::DataPolicy::kPush}) {
      auto cfg = base_config();
      cfg.job_policy = chic::JobPolicy::kRandom;  // isolate the data policy
      cfg.data_policy = dp;
      cfg.workload.zipf_exponent = zipf;
      const auto r = run_cfg(cfg);
      h.row()
          .cell(zipf)
          .cell(std::string(dp == chic::DataPolicy::kCache ? "pull (cache)" : "push"))
          .cell(r.response_times.mean())
          .cell(r.locality())
          .cell(lsds::util::format_size(r.network_bytes));
    }
  }
  std::printf("%s\n", h.render().c_str());
  std::printf("claim check: data-aware job placement wins without any replication;\n"
              "push replication pays off as popularity skew grows (hot files are\n"
              "worth broadcasting), while pull adapts at first-use cost.\n");
  return 0;
}
