// Experiment E5 — validation against queueing theory (Sections 3 and 5).
//
// Paper claims: "Validation … represents a measure of the reliability
// offered to the end-user"; "the formalism provided by the queuing models
// is important for the definition and validation of the simulation
// stochastic models"; only Bricks, MONARC and SimGrid present validation
// studies, SimGrid's being a comparison "with the ones obtained
// analytically on a mathematically tractable … problem" (Casanova 2001).
//
// Five sim-vs-closed-form comparisons:
//   1. M/M/1 FCFS mean sojourn       (space-shared CPU, 1 core)
//   2. M/M/c FCFS mean wait          (space-shared CPU, c cores, Erlang C)
//   3. M/M/1-PS mean sojourn         (time-shared CPU — processor sharing)
//   4. M/D/1 FCFS mean wait          (deterministic service, Pollaczek-Khinchine)
//   5. max-min dumbbell completion   (flow network vs n*S/C)
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "hosts/cpu.hpp"
#include "net/flow.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "stats/analytical.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "util/strings.hpp"

namespace core = lsds::core;
namespace hosts = lsds::hosts;
namespace net = lsds::net;
namespace stats = lsds::stats;

namespace {

constexpr int kJobs = 60000;

// Generic M/G/c queue simulation on a CpuResource. `deterministic_service`
// switches the service law from Exp(1/mu) to the constant 1/mu.
double sim_queue_metric(unsigned cores, hosts::SharingPolicy policy, double lambda, double mu,
                        bool wait_only, std::uint64_t seed,
                        bool deterministic_service = false) {
  core::Engine eng({.queue = core::QueueKind::kCalendarQueue, .seed = seed});
  hosts::CpuResource cpu(eng, "srv", cores, 1.0, policy);
  auto& arrivals = eng.rng("arrivals");
  auto& sizes = eng.rng("sizes");
  stats::Accumulator metric;
  double t = 0;
  auto submit_times = std::make_shared<std::vector<double>>(kJobs + 1, 0.0);
  auto services = std::make_shared<std::vector<double>>(kJobs + 1, 0.0);
  for (int i = 1; i <= kJobs; ++i) {
    t += arrivals.exponential(1.0 / lambda);
    const double ops = deterministic_service ? 1.0 / mu : sizes.exponential(1.0 / mu);
    (*services)[i] = ops;
    const auto id = static_cast<hosts::JobId>(i);
    eng.schedule_at(t, [&, id, ops] {
      (*submit_times)[id] = eng.now();
      cpu.submit(id, ops, [&, id](hosts::JobId) {
        const double sojourn = eng.now() - (*submit_times)[id];
        metric.add(wait_only ? sojourn - (*services)[id] : sojourn);
      });
    });
  }
  eng.run();
  return metric.mean();
}

double sim_dumbbell(std::size_t n) {
  core::Engine eng;
  auto topo = net::Topology::dumbbell(n, n, 1e9, 0, 1e6, 0);
  net::Routing routing(topo);
  net::FlowNetwork fn(eng, routing);
  double last = 0;
  for (std::size_t i = 0; i < n; ++i) {
    fn.start_flow(static_cast<net::NodeId>(2 + i), static_cast<net::NodeId>(2 + n + i), 1e6,
                  [&](net::FlowId) { last = eng.now(); });
  }
  eng.run();
  return last;
}

}  // namespace

int main() {
  std::printf("== Experiment E5: simulation vs analytical queueing models ==\n");
  std::printf("%d jobs per queueing run\n\n", kJobs);

  stats::AsciiTable t({"system", "metric", "simulated", "analytic", "rel err"});
  auto add = [&](const char* sys, const char* metric, double sim, double exact) {
    t.row().cell(std::string(sys)).cell(std::string(metric)).cell(sim).cell(exact)
        .cell(std::abs(sim - exact) / exact);
  };

  {
    const stats::MM1 q{0.7, 1.0};
    const double sim =
        sim_queue_metric(1, hosts::SharingPolicy::kSpaceShared, q.lambda, q.mu, false, 11);
    add("M/M/1 FCFS (rho=0.7)", "mean sojourn", sim, q.mean_sojourn());
  }
  {
    const stats::MMc q{2.4, 1.0, 4};
    const double sim =
        sim_queue_metric(4, hosts::SharingPolicy::kSpaceShared, q.lambda, q.mu, true, 12);
    add("M/M/4 FCFS (rho=0.6)", "mean wait", sim, q.mean_wait());
  }
  {
    const stats::MM1PS q{0.6, 1.0};
    const double sim =
        sim_queue_metric(1, hosts::SharingPolicy::kTimeShared, q.lambda, q.mu, false, 13);
    add("M/M/1-PS (rho=0.6)", "mean sojourn", sim, q.mean_sojourn());
  }
  {
    // Deterministic service: Pollaczek-Khinchine says exactly half the
    // M/M/1 wait at equal rho.
    const stats::MG1 q{0.7, 1.0, 1.0};
    const double sim = sim_queue_metric(1, hosts::SharingPolicy::kSpaceShared, q.lambda, 1.0,
                                        true, 14, /*deterministic_service=*/true);
    add("M/D/1 FCFS (rho=0.7, PK)", "mean wait", sim, q.mean_wait());
  }
  for (std::size_t n : {2u, 8u, 32u}) {
    add(lsds::util::strformat("dumbbell %zu flows", n).c_str(), "last completion",
        sim_dumbbell(n), stats::maxmin_equal_share_completion(1e6, 1e6, n));
  }

  std::printf("%s\n", t.render().c_str());
  std::printf("claim check: every subsystem matches its closed form within sampling\n"
              "error — the validation style the paper credits SimGrid with and asks\n"
              "of future simulators.\n");
  return 0;
}
