// Ablation — engine design choices called out in DESIGN.md.
//
// The taxonomy's engine-implementation axis covers "the mapping of the
// simulation jobs on physical threads or processes" and "optimizations
// adopted in the design of the simulation engine". Two LSDS-Sim choices are
// ablated here (the pending-set structure, the third such choice, has its
// own experiments E1/E10):
//
// A. Modeling-layer cost — the same ping workload (a token bounced through
//    a chain of N stations, hop delay 1s) expressed three ways:
//      raw events      — schedule_in closures, no abstraction;
//      entities        — Entity::send/on_message dispatch (Message objects);
//      coroutines      — one Process per station blocked on a Channel
//                        (MONARC's active-object mapping: thousands of
//                        virtual threads in one OS thread).
//    Measures events/sec, i.e. what each abstraction layer costs.
//
// B. Cancellation strategy — O(1) tombstoning means a cancel is cheap but
//    the corpse still flows through the queue. Workload: schedule K events,
//    cancel a fraction; measures cost per scheduled event as the cancel
//    ratio grows (the alternative — eager removal — would make cancel
//    O(n) in most structures).
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "core/entity.hpp"
#include "core/process.hpp"
#include "stats/table.hpp"
#include "util/strings.hpp"

namespace core = lsds::core;

namespace {

constexpr std::size_t kStations = 64;
constexpr std::uint64_t kHops = 400000;

struct Outcome {
  double wall_ms;
  std::uint64_t events;
};

template <typename SetupFn>
Outcome run_timed(SetupFn&& setup) {
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 7});
  setup(eng);
  const auto t0 = std::chrono::steady_clock::now();
  eng.run();
  const auto t1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double, std::milli>(t1 - t0).count(), eng.stats().executed};
}

// A. raw closures.
Outcome run_raw() {
  return run_timed([](core::Engine& eng) {
    auto hops = std::make_shared<std::uint64_t>(0);
    auto hop = std::make_shared<std::function<void(std::size_t)>>();
    *hop = [&eng, hops, hop](std::size_t station) {
      if (++*hops >= kHops) return;
      const std::size_t next = (station + 1) % kStations;
      eng.schedule_in(1.0, [hop, next] { (*hop)(next); });
    };
    eng.schedule_at(0.0, [hop] { (*hop)(0); });
  });
}

// A. entity messaging.
class Station final : public core::Entity {
 public:
  Station(core::Engine& eng, std::string name, std::uint64_t* hops)
      : core::Entity(eng, std::move(name)), hops_(hops) {}
  core::EntityId next = 0;
  void on_message(core::Message& msg) override {
    if (++*hops_ >= kHops) return;
    core::Message fwd;
    fwd.kind = msg.kind;
    send(next, fwd, 1.0);
  }

 private:
  std::uint64_t* hops_;
};

Outcome run_entities() {
  auto hops = std::make_unique<std::uint64_t>(0);
  std::vector<std::unique_ptr<Station>> stations;
  const auto out = run_timed([&](core::Engine& eng) {
    for (std::size_t i = 0; i < kStations; ++i) {
      stations.push_back(std::make_unique<Station>(eng, "s" + std::to_string(i), hops.get()));
    }
    for (std::size_t i = 0; i < kStations; ++i) {
      stations[i]->next = stations[(i + 1) % kStations]->id();
    }
    core::Message kick;
    stations.back()->send(stations.front()->id(), kick, 1.0);
  });
  return out;
}

// A. coroutine processes blocked on channels.
core::Process station_proc(core::Engine& eng, core::Channel<int>& in, core::Channel<int>& out,
                           std::uint64_t& hops) {
  for (;;) {
    const int token = co_await in.receive();
    if (++hops >= kHops) co_return;
    co_await core::delay(eng, 1.0);
    out.send(token);
  }
}

Outcome run_coroutines() {
  std::uint64_t hops = 0;
  std::vector<std::unique_ptr<core::Channel<int>>> channels;
  const auto out = run_timed([&](core::Engine& eng) {
    for (std::size_t i = 0; i < kStations; ++i) {
      channels.push_back(std::make_unique<core::Channel<int>>(eng));
    }
    for (std::size_t i = 0; i < kStations; ++i) {
      station_proc(eng, *channels[i], *channels[(i + 1) % kStations], hops);
    }
    channels[0]->send(1);
  });
  return out;
}

// B. cancellation ratio sweep.
Outcome run_cancels(double cancel_fraction) {
  return run_timed([cancel_fraction](core::Engine& eng) {
    auto& rng = eng.rng("cancel");
    std::vector<core::EventHandle> handles;
    handles.reserve(500000);
    for (int i = 0; i < 500000; ++i) {
      handles.push_back(eng.schedule_at(rng.uniform(0, 1e6), [] {}));
    }
    for (const auto& h : handles) {
      if (rng.bernoulli(cancel_fraction)) eng.cancel(h);
    }
  });
}

}  // namespace

int main() {
  std::printf("== Ablation: engine design choices (DESIGN.md) ==\n\n");

  std::printf("A. Modeling-layer cost — %zu-station ping ring, %llu hops:\n\n", kStations,
              static_cast<unsigned long long>(kHops));
  lsds::stats::AsciiTable ta({"layer", "wall [ms]", "events", "events/ms", "vs raw"});
  const auto raw = run_raw();
  const auto ent = run_entities();
  const auto coro = run_coroutines();
  auto row = [&](const char* name, const Outcome& o) {
    ta.row()
        .cell(std::string(name))
        .cell(o.wall_ms)
        .cell(o.events)
        .cell(static_cast<double>(o.events) / o.wall_ms)
        .cell(lsds::util::strformat("%.2fx", o.wall_ms / raw.wall_ms));
  };
  row("raw events", raw);
  row("entities", ent);
  row("coroutines", coro);
  std::printf("%s\n", ta.render().c_str());

  std::printf("B. O(1) tombstone cancellation — 500k scheduled events:\n\n");
  lsds::stats::AsciiTable tb({"cancel ratio", "wall [ms]", "executed", "ns per scheduled"});
  for (double frac : {0.0, 0.25, 0.5, 0.9}) {
    const auto o = run_cancels(frac);
    tb.row()
        .cell(frac)
        .cell(o.wall_ms)
        .cell(o.events)
        .cell(o.wall_ms * 1e6 / 500000.0);
  }
  std::printf("%s\n", tb.render().c_str());
  std::printf("takeaway: the process-oriented (active-object) layer costs a ~2x\n"
              "constant factor over raw events — the price MONARC 2 paid for its\n"
              "natural modeling style. Tombstoning makes the cancel call itself O(1),\n"
              "but corpses still traverse the queue and every pop pays a tombstone\n"
              "lookup, so heavy cancellation costs ~2x per scheduled event — still\n"
              "far better than eager removal, which is O(n) per cancel in most\n"
              "structures and would dominate at these rates.\n");
  return 0;
}
