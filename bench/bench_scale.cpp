// Experiment E10 — engine scalability (Section 5).
//
// Paper claim: "Many of today's simulators lack the capability to simulate
// large distributed systems because their simulation engines are limited to
// the physical resources of the workstations … The simulation engine can be
// optimized … by using advanced priority queuing structures for the
// simulation events."
//
// Workload: a closed message-population model ("entities" exchanging timed
// self-events) scaled from 1e2 to 1e6 concurrent pending events, executing
// 2e6 events per run. Reported per (structure, population): wall time,
// events/second and approximate RSS delta — showing how the O(1)
// structures keep per-event cost flat as the pending set grows while the
// O(n) baseline collapses (it is skipped beyond 1e4).
#include <chrono>
#include <cstdio>
#include <functional>

#include <sys/resource.h>

#include "core/engine.hpp"
#include "stats/table.hpp"
#include "util/strings.hpp"

namespace core = lsds::core;

namespace {

long rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

struct Outcome {
  double wall_s = 0;
  double events_per_sec = 0;
};

Outcome run_population(core::QueueKind kind, std::size_t population, std::uint64_t budget) {
  core::Engine eng({.queue = kind, .seed = 7});
  auto& rng = eng.rng("pop");
  std::function<void()> tick = [&] { eng.schedule_in(rng.exponential(1.0), tick); };
  for (std::size_t i = 0; i < population; ++i) eng.schedule_at(rng.uniform(0, 1.0), tick);

  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t executed = 0;
  while (executed < budget && eng.step()) ++executed;
  const auto t1 = std::chrono::steady_clock::now();
  Outcome o;
  o.wall_s = std::chrono::duration<double>(t1 - t0).count();
  o.events_per_sec = static_cast<double>(executed) / o.wall_s;
  return o;
}

}  // namespace

int main() {
  std::printf("== Experiment E10: engine scalability vs pending-set size ==\n");
  std::printf("closed population model, 2e6 events executed per cell\n\n");

  constexpr std::uint64_t kBudget = 2000000;
  lsds::stats::AsciiTable t(
      {"structure", "pending 1e2", "pending 1e4", "pending 1e5", "pending 1e6"});
  const long rss_before = rss_kb();
  for (auto kind : core::kAllQueueKinds) {
    std::vector<std::string> cells{core::to_string(kind)};
    for (std::size_t pop : {100ul, 10000ul, 100000ul, 1000000ul}) {
      if (kind == core::QueueKind::kSortedList && pop > 10000) {
        cells.push_back("skipped (O(n))");
        continue;
      }
      const auto o = run_population(kind, pop, kBudget);
      cells.push_back(lsds::util::strformat("%.2f Mev/s", o.events_per_sec / 1e6));
    }
    t.add_row(std::move(cells));
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("peak RSS grew by ~%ld MB across the sweep (1e6-event pending sets are\n"
              "memory-, not algorithm-, limited).\n", (rss_kb() - rss_before) / 1024);
  std::printf("claim check: O(1) structures (calendar/ladder) hold their event rate as\n"
              "the pending set grows 10^4x; the O(log n) heap decays gently; the O(n)\n"
              "list is unusable at scale.\n");
  return 0;
}
