// Experiment E9 — the MONARC 2 LHC T0/T1 replication study (Section 5).
//
// "MONARC 2 was already used to evaluate the specific behavior of the LHC
// experiments (Legrand et al. 2005) … The obtained results indicated the
// role of using a data replication agent for the intelligent transferring
// of the produced data. The obtained results also showed that the existing
// capacity of 2.5 Gbps was not sufficient and, in fact, not far afterwards
// the link was upgraded to a current 30 Gbps."
//
// Tier model: T0 production pushes every raw file to 4 T1s through per-T1
// links; T1 analysis consumes replicas. Sweep the T0-T1 link capacity over
// the historical range 0.622-40 Gbps under a CMS/ATLAS-like offered rate
// of 4 Gbps per link. Reported per capacity: link utilization, peak and
// end-of-production backlog, replication lag, post-production drain time,
// analysis delay and the sustainability verdict.
//
// Expected shape (the paper's story): 2.5 Gbps diverges — backlog grows for
// the whole run; the crossover sits at the offered rate; 10-40 Gbps keep
// up with shrinking lag, with ample headroom at 30-40 Gbps.
#include <cstdio>

#include "core/engine.hpp"
#include "sim/monarc/monarc.hpp"
#include "stats/table.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace u = lsds::util;

int main() {
  std::printf("== Experiment E9: MONARC LHC T0/T1 replication vs link capacity ==\n");
  std::printf("4 T1s, 60 x 20 GB raw files, one every 40 s => offered 4 Gbps per link\n");
  std::printf("analysis jobs at each T1 wait for their local replica\n\n");

  lsds::stats::AsciiTable t({"link", "util", "peak backlog", "backlog @prod end", "mean lag [s]",
                             "drain [s]", "analysis delay [s]", "verdict"});
  for (double gbps : {0.622, 1.0, 2.5, 5.0, 10.0, 20.0, 30.0, 40.0}) {
    lsds::core::Engine eng({.queue = lsds::core::QueueKind::kBinaryHeap, .seed = 2005});
    lsds::sim::monarc::Config cfg;
    cfg.num_t1 = 4;
    cfg.num_files = 60;
    cfg.file_bytes = 20e9;
    cfg.production_interval = 40.0;
    cfg.t0_t1_bandwidth = u::gbps(gbps);
    cfg.run_analysis = true;
    const auto r = lsds::sim::monarc::run(eng, cfg);
    t.row()
        .cell(u::format_rate(cfg.t0_t1_bandwidth))
        .cell(r.link_utilization)
        .cell(u::format_size(r.peak_backlog_bytes))
        .cell(u::format_size(r.backlog_at_production_end))
        .cell(r.replication_lag.mean())
        .cell(r.drain_time)
        .cell(r.analysis_delays.mean())
        .cell(std::string(r.sustainable() ? "keeps up" : "DIVERGES"));
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("claim check: at 2.5 Gbps the replication agent falls behind production\n"
              "for the entire run (the paper's 'not sufficient'); capacities past the\n"
              "offered rate keep up, and 30-40 Gbps (the deployed upgrade) leave the\n"
              "links mostly idle with near-zero replica lag.\n");
  return 0;
}
