// Experiment E8 — scheduling heuristics and the GridSim economy broker
// (Section 4, SimGrid + GridSim).
//
// Part 1 (SimGrid scope): bag-of-tasks mapping heuristics on pools of
// increasing heterogeneity — makespan per heuristic. Expected shape: the
// ECT-based heuristics (min-min/max-min/sufferage) and self-scheduling beat
// speed-blind round-robin, and the gap widens with heterogeneity.
//
// Part 2 (SimGrid modes): compile-time vs runtime scheduling as task-length
// estimates degrade.
//
// Part 3 (GridSim scope): deadline-and-budget-constrained brokering —
// budget sweep for both DBC strategies: accepted jobs, makespan, spend.
// Part 4 (SimGrid scope, task graphs): HEFT list scheduling vs round-robin
// on random layered workflows with data edges over a real network.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "hosts/cpu.hpp"
#include "middleware/dag.hpp"
#include "middleware/scheduler.hpp"
#include "net/flow.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "sim/gridsim/gridsim.hpp"
#include "sim/simg/simg.hpp"
#include "stats/table.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace core = lsds::core;
namespace hosts = lsds::hosts;
namespace mw = lsds::middleware;
namespace net = lsds::net;

namespace {

double run_heuristic(mw::Heuristic h, double speed_ratio, std::uint64_t seed) {
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = seed});
  // 4 resources, speeds spread linearly up to speed_ratio x.
  std::vector<std::unique_ptr<hosts::CpuResource>> pool;
  std::vector<hosts::CpuResource*> ptrs;
  for (int r = 0; r < 4; ++r) {
    const double speed = 100.0 * (1.0 + (speed_ratio - 1.0) * r / 3.0);
    pool.push_back(std::make_unique<hosts::CpuResource>(
        eng, "r" + std::to_string(r), 2, speed, hosts::SharingPolicy::kSpaceShared));
    ptrs.push_back(pool.back().get());
  }
  mw::BagScheduler sched(eng, ptrs, h);
  auto& rng = eng.rng("bag");
  for (hosts::JobId i = 1; i <= 200; ++i) {
    hosts::Job j;
    j.id = i;
    j.ops = rng.exponential(1000);
    sched.submit(std::move(j));
  }
  sched.run();
  eng.run();
  return sched.makespan();
}

struct DagOutcome {
  double makespan;
  std::uint64_t transfers;
  double bytes;
};

DagOutcome run_dag(mw::DagAlgorithm algo, double comm_bytes, std::uint64_t seed) {
  core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = seed});
  net::Topology topo;
  std::vector<mw::DagScheduler::Resource> resources;
  std::vector<std::unique_ptr<hosts::CpuResource>> cpus;
  const double speeds[] = {100, 200, 400, 800};
  for (int i = 0; i < 4; ++i) topo.add_node("h" + std::to_string(i));
  const auto hub = topo.add_node("hub", net::NodeKind::kRouter);
  for (int i = 0; i < 4; ++i) {
    topo.add_link(static_cast<net::NodeId>(i), hub, lsds::util::mbps(100), 0.002);
  }
  net::Routing routing(topo);
  net::FlowNetwork fnet(eng, routing);
  for (int i = 0; i < 4; ++i) {
    cpus.push_back(std::make_unique<hosts::CpuResource>(
        eng, "c" + std::to_string(i), 1, speeds[i], hosts::SharingPolicy::kSpaceShared));
    resources.push_back({cpus.back().get(), static_cast<net::NodeId>(i)});
  }
  core::RngStream drng(seed * 3 + 1);
  const auto dag = mw::Dag::random_layered(6, 6, 0.35, 1500, comm_bytes, drng);
  mw::DagScheduler sched(eng, dag, resources, &fnet, algo);
  sched.start();
  eng.run();
  return {sched.result().makespan, sched.result().transfers, sched.result().bytes_moved};
}

}  // namespace

int main() {
  std::printf("== Experiment E8: scheduling heuristics and economy brokering ==\n\n");

  std::printf("Part 1 — bag-of-tasks makespan [s], 200 jobs on 4x2-core resources:\n\n");
  lsds::stats::AsciiTable t1({"heuristic", "homogeneous (1x)", "moderate (4x)", "extreme (20x)"});
  for (auto h : mw::kAllHeuristics) {
    t1.row()
        .cell(std::string(mw::to_string(h)))
        .cell(run_heuristic(h, 1.0, 5))
        .cell(run_heuristic(h, 4.0, 5))
        .cell(run_heuristic(h, 20.0, 5));
  }
  std::printf("%s\n", t1.render().c_str());

  std::printf("Part 2 — SimGrid compile-time vs runtime scheduling, makespan [s]\n"
              "(100 tasks, 4 workers 4x heterogeneity) vs estimate error:\n\n");
  lsds::stats::AsciiTable t2({"estimate error", "compile-time", "runtime"});
  for (double err : {0.0, 0.3, 0.6, 0.9}) {
    double ct = 0, rt = 0;
    for (std::uint64_t s = 1; s <= 3; ++s) {  // average 3 seeds
      lsds::sim::simg::Config cfg;
      cfg.num_tasks = 100;
      cfg.estimate_error = err;
      cfg.mode = lsds::sim::simg::SchedulingMode::kCompileTime;
      core::Engine a({.queue = core::QueueKind::kBinaryHeap, .seed = s});
      ct += lsds::sim::simg::run(a, cfg).makespan;
      cfg.mode = lsds::sim::simg::SchedulingMode::kRuntime;
      core::Engine b({.queue = core::QueueKind::kBinaryHeap, .seed = s});
      rt += lsds::sim::simg::run(b, cfg).makespan;
    }
    t2.row().cell(err).cell(ct / 3).cell(rt / 3);
  }
  std::printf("%s\n", t2.render().c_str());

  std::printf("Part 3 — GridSim DBC broker, 60 jobs, budget sweep:\n\n");
  lsds::stats::AsciiTable t3(
      {"strategy", "budget", "accepted", "rejected", "spent", "makespan [s]"});
  for (auto strat : {mw::DbcStrategy::kCostOptimization, mw::DbcStrategy::kTimeOptimization}) {
    for (double budget : {100.0, 300.0, 1000.0, 1e9}) {
      lsds::sim::gridsim::Config cfg;
      cfg.strategy = strat;
      cfg.budget = budget;
      core::Engine eng({.queue = core::QueueKind::kBinaryHeap, .seed = 8});
      const auto r = lsds::sim::gridsim::run(eng, cfg);
      t3.row()
          .cell(std::string(mw::to_string(strat)))
          .cell(budget >= 1e9 ? std::string("unbounded") : lsds::util::strformat("%.0f", budget))
          .cell(r.accepted)
          .cell(r.rejected)
          .cell(r.cost)
          .cell(r.makespan);
    }
  }
  std::printf("%s\n", t3.render().c_str());

  std::printf("Part 4 — workflow (DAG) scheduling: 36-task random layered graphs on a\n"
              "4-resource 8x-heterogeneous pool over a 100 Mbps star:\n\n");
  lsds::stats::AsciiTable t4(
      {"edge data", "algorithm", "makespan [s]", "cross-resource edges", "bytes moved"});
  for (double comm : {1e4, 1e6, 2e7}) {
    for (auto algo : {mw::DagAlgorithm::kHeft, mw::DagAlgorithm::kRoundRobin}) {
      double makespan = 0, transfers = 0, bytes = 0;
      for (std::uint64_t s = 1; s <= 3; ++s) {
        const auto o = run_dag(algo, comm, s);
        makespan += o.makespan;
        transfers += static_cast<double>(o.transfers);
        bytes += o.bytes;
      }
      t4.row()
          .cell(lsds::util::format_size(comm))
          .cell(std::string(mw::to_string(algo)))
          .cell(makespan / 3)
          .cell(transfers / 3)
          .cell(lsds::util::format_size(bytes / 3));
    }
  }
  std::printf("%s\n", t4.render().c_str());
  std::printf("claim check: ECT heuristics' advantage grows with heterogeneity;\n"
              "compile-time scheduling degrades as estimates rot while runtime\n"
              "self-scheduling holds; cost-opt spends less, time-opt finishes sooner,\n"
              "and tight budgets force rejections.\n");
  return 0;
}
